#!/usr/bin/env bash
# Bench smoke: build the bench tooling, take a fresh quick-grid wall-time
# snapshot, schema-validate it and the committed snapshots, and compare
# against the committed baseline.
#
#   scripts/bench_smoke.sh              full run (fresh snapshot + compare)
#   scripts/bench_smoke.sh --validate   only schema-check the committed files
#
# Performance is advisory here: regressions beyond the tolerance print
# warnings but never fail the job (CI machines are too noisy to gate
# on); only a missing/invalid snapshot or a broken bench build fails.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release --offline -p spb-bench

# Every committed snapshot must exist — a silently dropped file would
# turn the regression comparison into a no-op.
for snap in BENCH_BASELINE.json BENCH_EVENTKERNEL.json BENCH_PR8.json BENCH_PR9.json; do
  if [[ ! -s "$snap" ]]; then
    echo "bench_smoke: FAIL — expected committed snapshot $snap is missing or empty." >&2
    echo "  Regenerate it with: ./target/release/bench_snapshot --kernel event --out $snap" >&2
    exit 1
  fi
done

# The committed snapshots must always parse against the current schema.
# --compare schema-validates both sides before diffing.
run ./target/release/bench_snapshot --compare BENCH_BASELINE.json BENCH_EVENTKERNEL.json
run ./target/release/bench_snapshot --compare BENCH_BASELINE.json BENCH_PR8.json
run ./target/release/bench_snapshot --compare BENCH_PR8.json BENCH_PR9.json

if [[ "${1:-}" == "--validate" ]]; then
  echo "bench_smoke: OK (validate only)"
  exit 0
fi

# Fresh snapshot with the current binary; warn (non-blocking) if it
# regressed more than the tolerance against the committed baseline.
fresh="$(mktemp -t bench_fresh.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT
run ./target/release/bench_snapshot --kernel event --out "$fresh" --samples "${SPB_BENCH_SAMPLES:-3}"
run ./target/release/bench_snapshot --compare BENCH_BASELINE.json "$fresh"

# The benches themselves must still run (and their built-in cycle-count
# assertions must hold).
run cargo bench -p spb-bench --offline --bench kernels
echo "bench_smoke: OK"

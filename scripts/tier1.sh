#!/usr/bin/env bash
# Tier-1 verification: everything CI gates on, runnable offline.
#
#   scripts/tier1.sh          full check (build, tests, clippy)
#   scripts/tier1.sh --fast   skip the release build
#
# The workspace has no external dependencies (everything external is
# shimmed under crates/), so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() {
  echo "==> $*"
  "$@"
}

if [[ "$FAST" == 0 ]]; then
  run cargo build --release --offline
fi
run cargo test -q --workspace --offline
run cargo clippy --all-targets --offline -- -D warnings
echo "tier1: OK"

#!/usr/bin/env bash
# Squash-storm gate: the wrong-path speculation model's CI check.
#
#   scripts/squash_smoke.sh
#
# Runs the squash_smoke binary: a quick squash sweep at rates
# 0 / 0.05 / 0.2 across all three kernels (bit-identical counters,
# zero invariant violations), the flat leak oracle on every cell,
# the rate-0 golden-grid byte-identity check, and a squash-enabled
# fuzzer batch including the forget-to-untag negative control.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo run --release --offline -p spb-verify --bin squash_smoke
echo "squash_smoke: wrapper OK"

#!/usr/bin/env bash
# Bench gate: the blocking perf-regression check CI runs on every PR.
#
#   scripts/bench_compare.sh                    gate against BENCH_PR9.json
#   scripts/bench_compare.sh BENCH_OTHER.json   gate against another snapshot
#
# Takes a fresh wheel-kernel snapshot of the quick SPEC grid and runs
# `bench_snapshot --gate` against the committed baseline. The gate
# compares per-bench MINIMA and calibrates by the snapshot-wide median
# ratio, so a uniformly slower CI runner passes while any bench that
# regressed >10% relative to its peers fails the job. This is the
# blocking counterpart of scripts/bench_smoke.sh (which stays advisory).
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_PR9.json}"

run() {
  echo "==> $*"
  "$@"
}

if [[ ! -s "$baseline" ]]; then
  echo "bench_compare: FAIL — committed baseline $baseline is missing or empty." >&2
  echo "  Regenerate it with: ./target/release/bench_snapshot --kernel wheel --out $baseline" >&2
  exit 1
fi

run cargo build --release --offline -p spb-bench

fresh="$(mktemp -t bench_gate.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT
run ./target/release/bench_snapshot --kernel wheel --out "$fresh" --samples "${SPB_BENCH_SAMPLES:-3}"
run ./target/release/bench_snapshot --gate "$baseline" "$fresh"
echo "bench_compare: OK"

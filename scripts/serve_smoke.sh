#!/usr/bin/env bash
# Chaos smoke for the fault-tolerant sweep service (DESIGN.md §10).
#
# Builds `spbsim` + `serve_smoke` and runs the kill -9 scenario: two
# overlapping quick-grid clients, SIGKILL mid-sweep, restart on the
# same state directory, journal recovery with only the missing cells
# recomputed, and a final 230-record grid bit-identical to the golden
# results/sweep-grid-quick.json. See crates/cli/src/bin/serve_smoke.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p spb-cli --bin spbsim --bin serve_smoke
exec ./target/release/serve_smoke "${1:-results/sweep-grid-quick.json}"

#!/usr/bin/env bash
# Determinism smoke for the design-space autotuner (DESIGN.md §11).
#
# Runs the same ~60-point seeded tune twice against one cache
# directory and asserts the whole reproducibility contract:
#
#   1. the second run computes nothing — every cell is a cache hit;
#   2. the two reports are byte-identical (the report deliberately
#      excludes wall clock and cache traffic, so cached == computed);
#   3. the frontier is non-trivial (>= 3 non-dominated points).
#
# A tiny per-cell budget keeps this to CI scale; determinism does not
# depend on the budget.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release --offline -p spb-cli --bin spbsim

state="$(mktemp -d -t tune_smoke.XXXXXX)"
trap 'rm -rf "$state"' EXIT

tune() {
  ./target/release/spbsim tune \
    --strategy halving --seed 7 --points 60 \
    --apps bwaves,x264,roms --warmup 2000 --uops 20000 \
    --cache "$state/cache" --out "$state/out$1" --name tune-smoke \
    --jobs "${SPB_JOBS:-2}"
}

echo "==> tune run 1 (cold cache)"
tune 1 | tee "$state/log1"
echo "==> tune run 2 (warm cache)"
tune 2 | tee "$state/log2"

# Run 2 must be served entirely from cache.
grep -Eq 'cache: [1-9][0-9]* hit\(s\), 0 computed' "$state/log2" || {
  echo "tune_smoke: FAIL — second run recomputed cells:" >&2
  grep '^cache:' "$state/log2" >&2
  exit 1
}

# Byte-identical reports, cold vs warm.
cmp "$state/out1/tune-smoke.json" "$state/out2/tune-smoke.json" || {
  echo "tune_smoke: FAIL — reports differ between cold and warm runs" >&2
  exit 1
}

# A real multi-objective frontier.
frontier=$(grep -Eo 'Pareto frontier \([0-9]+' "$state/log1" | grep -Eo '[0-9]+')
if [[ "${frontier:-0}" -lt 3 ]]; then
  echo "tune_smoke: FAIL — frontier has only ${frontier:-0} point(s)" >&2
  exit 1
fi

echo "tune_smoke: OK (frontier of $frontier, second run fully cached, reports byte-identical)"

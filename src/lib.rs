//! # store-prefetch-burst
//!
//! A from-scratch Rust reproduction of **"Boosting Store Buffer
//! Efficiency with Store-Prefetch Bursts"** (Cebrián, Kaxiras, Ros —
//! MICRO 2020): a cycle-level out-of-order CPU and memory-hierarchy
//! simulator with the paper's 67-bit SPB store prefetcher, the
//! at-execute / at-commit baselines, and synthetic SPEC CPU 2017 /
//! PARSEC workload stand-ins.
//!
//! This crate is a façade re-exporting the workspace's public API:
//!
//! - [`trace`]: µop IR, workload generators, application profiles.
//! - [`mem`]: caches, MSHRs, MESI directory, DRAM, prefetchers.
//! - [`cpu`]: the out-of-order core model and baseline store policies.
//! - [`spb`]: the paper's contribution — detector and SPB policy.
//! - [`energy`]: the event-based (McPAT-lite) energy model.
//! - [`sim`]: system assembly, Table I/II configurations, run driver.
//! - [`stats`]: counters, Top-Down stall attribution, result tables.
//!
//! # Quickstart
//!
//! Run a store-bursty application at a small SB with and without SPB:
//!
//! ```
//! use store_prefetch_burst::sim::{PolicyKind, SimConfig, Simulation};
//! use store_prefetch_burst::trace::profile::AppProfile;
//!
//! let app = AppProfile::by_name("x264").expect("suite app");
//! let cfg = SimConfig::quick().with_sb(14);
//! let baseline = Simulation::with_config(&app, &cfg).run_or_panic();
//! let spb = Simulation::with_config(&app, &cfg)
//!     .policy(PolicyKind::spb_default())
//!     .run_or_panic();
//! assert!(spb.cycles < baseline.cycles, "SPB speeds up store bursts");
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `spb-experiments` crate for the regenerators of every table and
//! figure in the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spb_cpu as cpu;
pub use spb_energy as energy;
pub use spb_mem as mem;
pub use spb_sim as sim;
pub use spb_stats as stats;
pub use spb_trace as trace;

/// The paper's contribution: the SPB detector and policy
/// (re-export of the `spb-core` crate).
pub mod spb {
    pub use spb_core::*;
}

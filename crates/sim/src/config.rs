//! Run configuration: policy selection and simulation budgets.

use spb_core::detector::SpbConfig;
use spb_core::policy::{SpbDynamicPolicy, SpbPolicy};
use spb_cpu::policy::{AtCommitPolicy, AtExecutePolicy, NoPolicy};
use spb_cpu::{CoreConfig, StorePrefetchPolicy};
use spb_mem::MemoryConfig;

/// The SB entry count used for the "ideal" configuration (the paper
/// normalizes to a 1024-entry SB).
pub const IDEAL_SB_ENTRIES: usize = 1024;

/// Which execution kernel drives the cores and the memory system.
///
/// Both kernels produce bit-identical [`crate::RunResult`]s (pinned by
/// the golden quick grid and the `spb-verify` kernel-equivalence
/// property); they differ only in wall-clock time. The tick kernel is
/// kept for one release as the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Legacy lock-step kernel: tick every component every cycle.
    Tick,
    /// Discrete-event skip-ahead kernel: when every core is stalled
    /// with no same-cycle work, jump `now` to the earliest
    /// `next_event_at` horizon and replay the skipped span's
    /// accounting in bulk.
    #[default]
    Event,
}

impl KernelMode {
    /// Parses the CLI spelling (`tick` / `event`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "tick" => Ok(KernelMode::Tick),
            "event" => Ok(KernelMode::Event),
            other => Err(format!(
                "unknown kernel '{other}' (valid: tick, event)"
            )),
        }
    }

    /// Display label (`tick` / `event`).
    pub fn label(&self) -> &'static str {
        match self {
            KernelMode::Tick => "tick",
            KernelMode::Event => "event",
        }
    }
}

/// Which store-prefetch strategy a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No store prefetching (gem5 out of the box).
    None,
    /// At-execute (Gharachorloo et al.).
    AtExecute,
    /// At-commit (Intel's documented policy; the paper's baseline).
    AtCommit,
    /// Store-Prefetch Bursts with window `n`.
    Spb {
        /// Detector window (paper default 48).
        n: u32,
        /// Suppress duplicate bursts per page.
        dedupe: bool,
    },
    /// The §IV-C dynamic-store-size variant.
    SpbDynamic {
        /// Detector window.
        n: u32,
    },
    /// The ideal SB: a 1024-entry SB with at-commit prefetching; no
    /// SB-capacity stalls in practice.
    IdealSb,
}

impl PolicyKind {
    /// The paper's SPB configuration.
    pub fn spb_default() -> Self {
        PolicyKind::Spb {
            n: 48,
            dedupe: true,
        }
    }

    /// Builds a fresh policy instance for one core.
    pub fn build(&self) -> Box<dyn StorePrefetchPolicy + Send> {
        match *self {
            PolicyKind::None => Box::new(NoPolicy::new()),
            PolicyKind::AtExecute => Box::new(AtExecutePolicy::new()),
            PolicyKind::AtCommit | PolicyKind::IdealSb => Box::new(AtCommitPolicy::new()),
            PolicyKind::Spb { n, dedupe } => Box::new(SpbPolicy::new(SpbConfig { n, dedupe })),
            PolicyKind::SpbDynamic { n } => {
                Box::new(SpbDynamicPolicy::new(SpbConfig { n, dedupe: true }))
            }
        }
    }

    /// SB size this policy forces, if any (the ideal SB overrides the
    /// configured size).
    pub fn sb_override(&self) -> Option<usize> {
        matches!(self, PolicyKind::IdealSb).then_some(IDEAL_SB_ENTRIES)
    }

    /// Parses the CLI/wire spelling of a policy. Accepts the same names
    /// `spbsim` always has (`none`, `at-execute`/`exe`,
    /// `at-commit`/`commit`, `spb`, `spb-dynamic`, `ideal`), so job
    /// specs sent to the sweep service round-trip through
    /// [`PolicyKind::label`] for the standard variants.
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "none" => PolicyKind::None,
            "at-execute" | "exe" => PolicyKind::AtExecute,
            "at-commit" | "commit" => PolicyKind::AtCommit,
            "spb" => PolicyKind::spb_default(),
            "spb-dynamic" => PolicyKind::SpbDynamic { n: 48 },
            "ideal" => PolicyKind::IdealSb,
            other => {
                return Err(format!(
                    "unknown policy {other:?} (expected none | at-execute | at-commit | spb | spb-dynamic | ideal)"
                ))
            }
        })
    }

    /// Display label used in experiment tables.
    pub fn label(&self) -> String {
        match *self {
            PolicyKind::None => "none".into(),
            PolicyKind::AtExecute => "at-execute".into(),
            PolicyKind::AtCommit => "at-commit".into(),
            PolicyKind::Spb {
                n: 48,
                dedupe: true,
            } => "spb".into(),
            PolicyKind::Spb { n, dedupe } => format!("spb(n={n},dedupe={dedupe})"),
            PolicyKind::SpbDynamic { n } => format!("spb-dynamic(n={n})"),
            PolicyKind::IdealSb => "ideal".into(),
        }
    }
}

/// Everything one run needs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Core microarchitecture (Table I / II).
    pub core: CoreConfig,
    /// Memory hierarchy (Table I).
    pub mem: MemoryConfig,
    /// Store-prefetch strategy.
    pub policy: PolicyKind,
    /// µops per core to run before measurement starts (cache warm-up,
    /// the paper's "100 million cycles within the ROI" in miniature).
    pub warmup_uops: u64,
    /// µops per core measured (the paper's 2 billion in miniature).
    pub measure_uops: u64,
    /// Workload seed.
    pub seed: u64,
    /// Forward-progress watchdog: abort the run with a structured
    /// diagnostic if no core commits a µop for this many consecutive
    /// cycles (0 disables — the run may then hang on a livelocked
    /// memory request).
    pub watchdog_cycles: u64,
    /// Which execution kernel to use (bit-identical results either way).
    pub kernel: KernelMode,
}

impl SimConfig {
    /// The paper's default configuration: Skylake core, Table I
    /// hierarchy, at-commit prefetching.
    pub fn paper_default() -> Self {
        Self {
            core: CoreConfig::skylake(),
            mem: MemoryConfig::default(),
            policy: PolicyKind::AtCommit,
            warmup_uops: 150_000,
            measure_uops: 600_000,
            seed: 42,
            watchdog_cycles: 2_000_000,
            kernel: KernelMode::Event,
        }
    }

    /// A faster configuration for tests and smoke runs.
    ///
    /// Still covers multiple full iterations of every application's
    /// phase list (the longest iteration is ~120k µops).
    pub fn quick() -> Self {
        Self {
            warmup_uops: 40_000,
            measure_uops: 300_000,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different SB size.
    #[must_use]
    pub fn with_sb(mut self, sb_entries: usize) -> Self {
        self.core.sb_entries = sb_entries;
        self
    }

    /// Returns a copy with a different policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different execution kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// The effective SB size after any policy override.
    pub fn effective_sb(&self) -> usize {
        self.policy.sb_override().unwrap_or(self.core.sb_entries)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_overrides_sb_size() {
        let cfg = SimConfig::paper_default()
            .with_sb(14)
            .with_policy(PolicyKind::IdealSb);
        assert_eq!(cfg.effective_sb(), IDEAL_SB_ENTRIES);
        let cfg2 = SimConfig::paper_default().with_sb(14);
        assert_eq!(cfg2.effective_sb(), 14);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicyKind::spb_default().label(), "spb");
        assert_eq!(PolicyKind::AtCommit.label(), "at-commit");
        assert_eq!(
            PolicyKind::Spb {
                n: 24,
                dedupe: true
            }
            .label(),
            "spb(n=24,dedupe=true)"
        );
    }

    #[test]
    fn build_produces_matching_policy_names() {
        assert_eq!(PolicyKind::None.build().name(), "none");
        assert_eq!(PolicyKind::AtExecute.build().name(), "at-execute");
        assert_eq!(PolicyKind::AtCommit.build().name(), "at-commit");
        assert_eq!(PolicyKind::spb_default().build().name(), "spb");
        assert_eq!(
            PolicyKind::SpbDynamic { n: 48 }.build().name(),
            "spb-dynamic"
        );
        assert_eq!(PolicyKind::IdealSb.build().name(), "at-commit");
    }

    #[test]
    fn parse_round_trips_standard_labels() {
        for name in ["none", "at-execute", "at-commit", "spb", "ideal"] {
            let p = PolicyKind::parse(name).unwrap();
            assert_eq!(p.label(), name, "label/parse round trip for {name}");
        }
        assert_eq!(
            PolicyKind::parse("spb-dynamic").unwrap(),
            PolicyKind::SpbDynamic { n: 48 }
        );
        assert!(PolicyKind::parse("magic").unwrap_err().contains("magic"));
    }

    #[test]
    fn quick_is_smaller_than_paper_default() {
        assert!(SimConfig::quick().measure_uops < SimConfig::paper_default().measure_uops);
    }

    #[test]
    fn kernel_mode_parses_and_defaults_to_event() {
        assert_eq!(SimConfig::paper_default().kernel, KernelMode::Event);
        assert_eq!(KernelMode::parse("tick"), Ok(KernelMode::Tick));
        assert_eq!(KernelMode::parse("event"), Ok(KernelMode::Event));
        assert!(KernelMode::parse("warp").unwrap_err().contains("tick"));
        assert_eq!(KernelMode::Tick.label(), "tick");
    }
}

//! Run configuration: policy selection and simulation budgets.

use spb_core::detector::SpbConfig;
use spb_core::params::{SpbParams, KEYS_HELP, N_RANGE};
use spb_core::policy::{ExtendedSpbPolicy, FeedbackSpbPolicy, SpbDynamicPolicy, SpbPolicy};
use spb_cpu::policy::{AtCommitPolicy, AtExecutePolicy, NoPolicy};
use spb_cpu::{CoreConfig, StorePrefetchPolicy};
use spb_mem::MemoryConfig;
use spb_trace::SquashConfig;
use std::fmt;

/// The SB entry count used for the "ideal" configuration (the paper
/// normalizes to a 1024-entry SB).
pub const IDEAL_SB_ENTRIES: usize = 1024;

/// Which execution kernel drives the cores and the memory system.
///
/// All kernels produce bit-identical [`crate::RunResult`]s (pinned by
/// the golden quick grid and the `spb-verify` kernel-equivalence
/// property); they differ only in wall-clock time. The tick kernel is
/// the permanent reference implementation, and the probe-polling event
/// kernel is kept as a second verification point between it and the
/// default timing-wheel kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Legacy lock-step kernel: tick every component every cycle.
    Tick,
    /// Discrete-event skip-ahead kernel: when every core is stalled
    /// with no same-cycle work, jump `now` to the earliest
    /// `next_event_at` horizon and replay the skipped span's
    /// accounting in bulk.
    Event,
    /// Push-based timing-wheel kernel (DESIGN.md §12): components
    /// register wakeups with a hierarchical timing wheel when their
    /// state settles instead of being probed every cycle, the memory
    /// system is ticked only on cycles where it has observable work,
    /// and quiescent spans are replayed in bulk as under `Event`.
    #[default]
    Wheel,
}

impl KernelMode {
    /// Parses the CLI spelling (`tick` / `event` / `wheel`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "tick" => Ok(KernelMode::Tick),
            "event" => Ok(KernelMode::Event),
            "wheel" => Ok(KernelMode::Wheel),
            other => Err(format!(
                "unknown kernel '{other}' (valid: tick, event, wheel)"
            )),
        }
    }

    /// Display label (`tick` / `event` / `wheel`).
    pub fn label(&self) -> &'static str {
        match self {
            KernelMode::Tick => "tick",
            KernelMode::Event => "event",
            KernelMode::Wheel => "wheel",
        }
    }
}

/// Which store-prefetch strategy a run uses.
///
/// The SPB family is fully parameterized: `Spb` carries the complete
/// [`SpbParams`] knob vector, and [`PolicyKind::parse`] /
/// [`PolicyKind::label`] round-trip a `key=value` grammar
/// (`spb:n=32,dedupe=off,burst=3,frac=0.5`). The six classic spellings
/// (`none`, `at-execute`, `at-commit`, `spb`, `spb-dynamic`, `ideal`)
/// remain exact aliases of their old meanings, so existing scripts,
/// golden files, and cache keys for default configurations are
/// unchanged.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No store prefetching (gem5 out of the box).
    None,
    /// At-execute (Gharachorloo et al.).
    AtExecute,
    /// At-commit (Intel's documented policy; the paper's baseline).
    AtCommit,
    /// Store-Prefetch Bursts over the full parameter space.
    Spb {
        /// The complete knob vector (window, dedupe, threshold, page
        /// fraction, backward, cross-page).
        params: SpbParams,
    },
    /// The §IV-C dynamic-store-size variant.
    SpbDynamic {
        /// Detector window.
        n: u32,
    },
    /// Feedback-directed SPB: burst size adapts to measured burst
    /// accuracy (Srinath-style FDP over the page fraction).
    SpbFeedback {
        /// Detector window.
        n: u32,
    },
    /// The ideal SB: a 1024-entry SB with at-commit prefetching; no
    /// SB-capacity stalls in practice.
    IdealSb,
}

/// The `Debug` rendering feeds the content-addressed result cache
/// ([`spb-serve`] hashes `format!("{cfg:?}")`), so it is part of the
/// storage format. Base-only `Spb` points render exactly like the
/// pre-parameterization enum (`Spb { n: 48, dedupe: true }`) to keep
/// every existing cache entry valid; points using extended knobs render
/// the full parameter vector, so any knob difference — including burst
/// threshold alone — yields a distinct key.
impl fmt::Debug for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::None => f.write_str("None"),
            PolicyKind::AtExecute => f.write_str("AtExecute"),
            PolicyKind::AtCommit => f.write_str("AtCommit"),
            PolicyKind::Spb { params } if params.is_base_only() => f
                .debug_struct("Spb")
                .field("n", &params.n)
                .field("dedupe", &params.dedupe)
                .finish(),
            PolicyKind::Spb { params } => {
                f.debug_struct("Spb").field("params", params).finish()
            }
            PolicyKind::SpbDynamic { n } => {
                f.debug_struct("SpbDynamic").field("n", n).finish()
            }
            PolicyKind::SpbFeedback { n } => {
                f.debug_struct("SpbFeedback").field("n", n).finish()
            }
            PolicyKind::IdealSb => f.write_str("IdealSb"),
        }
    }
}

impl PolicyKind {
    /// The paper's SPB configuration.
    pub fn spb_default() -> Self {
        PolicyKind::Spb {
            params: SpbParams::default(),
        }
    }

    /// A base-detector SPB point (window + dedupe, extended knobs at
    /// their defaults).
    pub fn spb(n: u32, dedupe: bool) -> Self {
        PolicyKind::Spb {
            params: SpbParams::base(n, dedupe),
        }
    }

    /// Builds a fresh policy instance for one core.
    pub fn build(&self) -> Box<dyn StorePrefetchPolicy + Send> {
        match *self {
            PolicyKind::None => Box::new(NoPolicy::new()),
            PolicyKind::AtExecute => Box::new(AtExecutePolicy::new()),
            PolicyKind::AtCommit | PolicyKind::IdealSb => Box::new(AtCommitPolicy::new()),
            // Base-only points build the classic policy so default
            // configurations stay bit-identical to the seed.
            PolicyKind::Spb { params } if params.is_base_only() => {
                Box::new(SpbPolicy::new(params.base_config()))
            }
            PolicyKind::Spb { params } => Box::new(ExtendedSpbPolicy::new(params.ext_config())),
            PolicyKind::SpbDynamic { n } => {
                Box::new(SpbDynamicPolicy::new(SpbConfig { n, dedupe: true }))
            }
            PolicyKind::SpbFeedback { n } => {
                Box::new(FeedbackSpbPolicy::new(SpbConfig { n, dedupe: true }))
            }
        }
    }

    /// SB size this policy forces, if any (the ideal SB overrides the
    /// configured size).
    pub fn sb_override(&self) -> Option<usize> {
        matches!(self, PolicyKind::IdealSb).then_some(IDEAL_SB_ENTRIES)
    }

    /// Parses the CLI/wire spelling of a policy.
    ///
    /// The six classic names (`none`, `at-execute`/`exe`,
    /// `at-commit`/`commit`, `spb`, `spb-dynamic`, `ideal`) parse
    /// exactly as they always have. The SPB family additionally takes a
    /// `key=value` list after a colon:
    ///
    /// - `spb:n=32,dedupe=off,burst=3,frac=0.5,backward=on,cross=1`
    /// - `spb-dynamic:n=24`, `spb-feedback:n=24` (window only)
    ///
    /// Every spelling round-trips through [`PolicyKind::label`], so job
    /// specs sent to the sweep service and tuner provenance survive the
    /// wire.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, args) = match s.split_once(':') {
            Some((head, args)) => (head, Some(args)),
            None => (s, None),
        };
        let fixed = |kind: PolicyKind| match args {
            None => Ok(kind),
            Some(_) => Err(format!("policy {head:?} takes no parameters")),
        };
        match head {
            "none" => fixed(PolicyKind::None),
            "at-execute" | "exe" => fixed(PolicyKind::AtExecute),
            "at-commit" | "commit" => fixed(PolicyKind::AtCommit),
            "ideal" => fixed(PolicyKind::IdealSb),
            "spb" => Ok(PolicyKind::Spb {
                params: match args {
                    None => SpbParams::default(),
                    Some(args) => SpbParams::parse_args(args)?,
                },
            }),
            "spb-dynamic" => Ok(PolicyKind::SpbDynamic {
                n: parse_window_only(head, args)?,
            }),
            "spb-feedback" => Ok(PolicyKind::SpbFeedback {
                n: parse_window_only(head, args)?,
            }),
            other => Err(format!(
                "unknown policy {other:?} (expected none | at-execute | at-commit | spb[:{KEYS_HELP}] | spb-dynamic[:n=1..1024] | spb-feedback[:n=1..1024] | ideal)"
            )),
        }
    }

    /// Display label used in experiment tables, sweep records, and the
    /// wire spec. Default configurations keep their classic spellings;
    /// non-default points print only their non-default keys in
    /// canonical order, and always satisfy `parse(label()) == self`.
    pub fn label(&self) -> String {
        match *self {
            PolicyKind::None => "none".into(),
            PolicyKind::AtExecute => "at-execute".into(),
            PolicyKind::AtCommit => "at-commit".into(),
            PolicyKind::Spb { params } => match params.label_suffix() {
                None => "spb".into(),
                Some(suffix) => format!("spb:{suffix}"),
            },
            PolicyKind::SpbDynamic { n: 48 } => "spb-dynamic".into(),
            PolicyKind::SpbDynamic { n } => format!("spb-dynamic:n={n}"),
            PolicyKind::SpbFeedback { n: 48 } => "spb-feedback".into(),
            PolicyKind::SpbFeedback { n } => format!("spb-feedback:n={n}"),
            PolicyKind::IdealSb => "ideal".into(),
        }
    }
}

/// Parses the `n=N` parameter list of the single-knob SPB variants.
fn parse_window_only(head: &str, args: Option<&str>) -> Result<u32, String> {
    let Some(args) = args else { return Ok(48) };
    let err = || {
        format!("policy {head:?} takes only n=1..1024, got {args:?} (e.g. {head}:n=24)")
    };
    let value = args.strip_prefix("n=").ok_or_else(err)?;
    let n: u32 = value.parse().map_err(|_| err())?;
    if n < N_RANGE.0 || n > N_RANGE.1 {
        return Err(err());
    }
    Ok(n)
}

/// Everything one run needs.
#[derive(Clone)]
pub struct SimConfig {
    /// Core microarchitecture (Table I / II).
    pub core: CoreConfig,
    /// Memory hierarchy (Table I).
    pub mem: MemoryConfig,
    /// Store-prefetch strategy.
    pub policy: PolicyKind,
    /// µops per core to run before measurement starts (cache warm-up,
    /// the paper's "100 million cycles within the ROI" in miniature).
    pub warmup_uops: u64,
    /// µops per core measured (the paper's 2 billion in miniature).
    pub measure_uops: u64,
    /// Workload seed.
    pub seed: u64,
    /// Forward-progress watchdog: abort the run with a structured
    /// diagnostic if no core commits a µop for this many consecutive
    /// cycles (0 disables — the run may then hang on a livelocked
    /// memory request).
    pub watchdog_cycles: u64,
    /// Which execution kernel to use (bit-identical results either way).
    pub kernel: KernelMode,
    /// Wrong-path squash model ([`SquashConfig::none`] = off: no
    /// injector is constructed and the run is bit-identical to a build
    /// without the speculation model).
    pub squash: SquashConfig,
}

/// Like [`PolicyKind`], the `Debug` rendering is part of the
/// content-addressed cache-key format. A disabled squash model renders
/// exactly like the pre-squash derive (the field is omitted), so every
/// existing cache entry and golden record stays valid; an enabled model
/// appends the squash field, so two configs differing only in squash
/// parameters — including the seed alone — hash to distinct keys.
impl fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("SimConfig");
        d.field("core", &self.core)
            .field("mem", &self.mem)
            .field("policy", &self.policy)
            .field("warmup_uops", &self.warmup_uops)
            .field("measure_uops", &self.measure_uops)
            .field("seed", &self.seed)
            .field("watchdog_cycles", &self.watchdog_cycles)
            .field("kernel", &self.kernel);
        if self.squash.enabled() {
            d.field("squash", &self.squash);
        }
        d.finish()
    }
}

impl SimConfig {
    /// The paper's default configuration: Skylake core, Table I
    /// hierarchy, at-commit prefetching.
    pub fn paper_default() -> Self {
        Self {
            core: CoreConfig::skylake(),
            mem: MemoryConfig::default(),
            policy: PolicyKind::AtCommit,
            warmup_uops: 150_000,
            measure_uops: 600_000,
            seed: 42,
            watchdog_cycles: 2_000_000,
            kernel: KernelMode::Wheel,
            squash: SquashConfig::none(),
        }
    }

    /// A faster configuration for tests and smoke runs.
    ///
    /// Still covers multiple full iterations of every application's
    /// phase list (the longest iteration is ~120k µops).
    pub fn quick() -> Self {
        Self {
            warmup_uops: 40_000,
            measure_uops: 300_000,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different SB size.
    #[must_use]
    pub fn with_sb(mut self, sb_entries: usize) -> Self {
        self.core.sb_entries = sb_entries;
        self
    }

    /// Returns a copy with a different policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different execution kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Returns a copy with a different wrong-path squash model.
    #[must_use]
    pub fn with_squash(mut self, squash: SquashConfig) -> Self {
        self.squash = squash;
        self
    }

    /// The effective SB size after any policy override.
    pub fn effective_sb(&self) -> usize {
        self.policy.sb_override().unwrap_or(self.core.sb_entries)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_overrides_sb_size() {
        let cfg = SimConfig::paper_default()
            .with_sb(14)
            .with_policy(PolicyKind::IdealSb);
        assert_eq!(cfg.effective_sb(), IDEAL_SB_ENTRIES);
        let cfg2 = SimConfig::paper_default().with_sb(14);
        assert_eq!(cfg2.effective_sb(), 14);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicyKind::spb_default().label(), "spb");
        assert_eq!(PolicyKind::AtCommit.label(), "at-commit");
        assert_eq!(PolicyKind::spb(24, true).label(), "spb:n=24");
        assert_eq!(PolicyKind::spb(24, false).label(), "spb:n=24,dedupe=off");
        assert_eq!(PolicyKind::SpbDynamic { n: 24 }.label(), "spb-dynamic:n=24");
        assert_eq!(PolicyKind::SpbFeedback { n: 48 }.label(), "spb-feedback");
    }

    /// The `Debug` rendering is hashed into content-addressed cache
    /// keys; the default/base-only spellings are pinned to the exact
    /// pre-parameterization output so existing caches stay valid.
    #[test]
    fn debug_rendering_is_cache_stable() {
        assert_eq!(
            format!("{:?}", PolicyKind::spb_default()),
            "Spb { n: 48, dedupe: true }"
        );
        assert_eq!(
            format!("{:?}", PolicyKind::spb(24, false)),
            "Spb { n: 24, dedupe: false }"
        );
        assert_eq!(
            format!("{:?}", PolicyKind::SpbDynamic { n: 48 }),
            "SpbDynamic { n: 48 }"
        );
        assert_eq!(format!("{:?}", PolicyKind::None), "None");
        assert_eq!(format!("{:?}", PolicyKind::IdealSb), "IdealSb");
        // Non-default knobs switch to the full-vector rendering, so any
        // knob difference produces a distinct key.
        let burst3 = PolicyKind::parse("spb:burst=3").unwrap();
        let burst4 = PolicyKind::parse("spb:burst=4").unwrap();
        assert!(format!("{burst3:?}").contains("burst: 3"));
        assert_ne!(format!("{burst3:?}"), format!("{burst4:?}"));
    }

    #[test]
    fn build_produces_matching_policy_names() {
        assert_eq!(PolicyKind::None.build().name(), "none");
        assert_eq!(PolicyKind::AtExecute.build().name(), "at-execute");
        assert_eq!(PolicyKind::AtCommit.build().name(), "at-commit");
        assert_eq!(PolicyKind::spb_default().build().name(), "spb");
        assert_eq!(
            PolicyKind::SpbDynamic { n: 48 }.build().name(),
            "spb-dynamic"
        );
        assert_eq!(
            PolicyKind::SpbFeedback { n: 48 }.build().name(),
            "spb-feedback"
        );
        assert_eq!(PolicyKind::IdealSb.build().name(), "at-commit");
        // Base-only parameterized points build the classic policy;
        // extended knobs switch to the extended detector.
        assert_eq!(PolicyKind::spb(24, false).build().name(), "spb");
        assert_eq!(
            PolicyKind::parse("spb:burst=3").unwrap().build().name(),
            "spb-extended"
        );
    }

    #[test]
    fn parse_round_trips_standard_labels() {
        for name in ["none", "at-execute", "at-commit", "spb", "ideal"] {
            let p = PolicyKind::parse(name).unwrap();
            assert_eq!(p.label(), name, "label/parse round trip for {name}");
        }
        assert_eq!(
            PolicyKind::parse("spb-dynamic").unwrap(),
            PolicyKind::SpbDynamic { n: 48 }
        );
        assert!(PolicyKind::parse("magic").unwrap_err().contains("magic"));
    }

    #[test]
    fn parse_round_trips_parameterized_labels() {
        for spec in [
            "spb:n=32,dedupe=off,burst=3,frac=0.5",
            "spb:n=8",
            "spb:backward=on,cross=2",
            "spb:frac=0.125",
            "spb-dynamic:n=24",
            "spb-feedback:n=16",
        ] {
            let p = PolicyKind::parse(spec).unwrap();
            assert_eq!(p.label(), spec, "canonical spelling round trip");
            assert_eq!(PolicyKind::parse(&p.label()).unwrap(), p);
        }
        // Non-canonical spellings normalize: defaults drop out of the
        // label, but the parsed value is identical.
        assert_eq!(
            PolicyKind::parse("spb:n=48,dedupe=on").unwrap(),
            PolicyKind::spb_default()
        );
        assert_eq!(PolicyKind::parse("spb:n=48").unwrap().label(), "spb");
    }

    #[test]
    fn parse_errors_teach_the_grammar() {
        let e = PolicyKind::parse("spb:zig=1").unwrap_err();
        assert!(e.contains("n=1..1024") && e.contains("frac"), "{e}");
        let e = PolicyKind::parse("spb:n=0").unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        let e = PolicyKind::parse("spb-dynamic:dedupe=off").unwrap_err();
        assert!(e.contains("only n=1..1024"), "{e}");
        let e = PolicyKind::parse("ideal:n=4").unwrap_err();
        assert!(e.contains("takes no parameters"), "{e}");
        let e = PolicyKind::parse("magic").unwrap_err();
        assert!(e.contains("spb-feedback"), "unknown-policy error lists every form: {e}");
    }

    /// The squash field participates in the cache-key `Debug`
    /// rendering only when enabled: disabled configs render exactly as
    /// before the speculation model existed (old cache entries stay
    /// valid), and two configs differing only in squash parameters —
    /// even just the seed — render differently.
    #[test]
    fn squash_debug_rendering_is_cache_stable() {
        use spb_trace::SquashConfig;
        let off = SimConfig::quick();
        let rendered = format!("{off:?}");
        assert!(
            !rendered.contains("squash"),
            "disabled squash must not leak into the cache key: {rendered}"
        );
        // rate=0 is also "disabled" regardless of the other knobs.
        let zero = off
            .clone()
            .with_squash(SquashConfig::parse("rate=0,depth=8..32").unwrap());
        assert_eq!(format!("{zero:?}"), rendered);
        let a = off
            .clone()
            .with_squash(SquashConfig::parse("rate=0.05,seed=1").unwrap());
        let b = off
            .clone()
            .with_squash(SquashConfig::parse("rate=0.05,seed=2").unwrap());
        assert!(format!("{a:?}").contains("squash"));
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
        assert_ne!(format!("{a:?}"), rendered);
    }

    #[test]
    fn quick_is_smaller_than_paper_default() {
        assert!(SimConfig::quick().measure_uops < SimConfig::paper_default().measure_uops);
    }

    #[test]
    fn kernel_mode_parses_and_defaults_to_wheel() {
        assert_eq!(SimConfig::paper_default().kernel, KernelMode::Wheel);
        assert_eq!(KernelMode::default(), KernelMode::Wheel);
        assert_eq!(KernelMode::parse("tick"), Ok(KernelMode::Tick));
        assert_eq!(KernelMode::parse("event"), Ok(KernelMode::Event));
        assert_eq!(KernelMode::parse("wheel"), Ok(KernelMode::Wheel));
        let e = KernelMode::parse("warp").unwrap_err();
        assert!(e.contains("tick") && e.contains("wheel"), "{e}");
        assert_eq!(KernelMode::Tick.label(), "tick");
        assert_eq!(KernelMode::Wheel.label(), "wheel");
    }
}

//! The [`Simulation`] builder: configure, observe, run.
//!
//! This is the one entry point for executing an application profile: a
//! builder that makes the run's knobs — policy, SB size, fault plan,
//! seed, execution kernel — explicit and adds the observability hook:
//! attach any [`spb_obs::Sink`] and the run emits its typed event
//! stream (dispatch stalls, SB traffic, SPB bursts, coherence
//! messages) without changing a single simulated number.
//!
//! # Examples
//!
//! ```
//! use spb_sim::{PolicyKind, SimConfig, Simulation};
//! use spb_trace::profile::AppProfile;
//!
//! let app = AppProfile::by_name("x264").unwrap();
//! let result = Simulation::with_config(&app, &SimConfig::quick())
//!     .policy(PolicyKind::spb_default())
//!     .sb_entries(14)
//!     .run()
//!     .unwrap();
//! assert!(result.ipc() > 0.0);
//! assert!(!result.metrics.is_empty());
//! ```

use crate::config::{PolicyKind, SimConfig};
use crate::runner::{advance, merge_cpu_stats, RunError, RunResult};
use spb_cpu::core::{Core, CpuStats};
use spb_energy::{EnergyEvents, EnergyModel};
use spb_mem::checker::InvariantViolation;
use spb_mem::{FaultConfig, MemorySystem};
use spb_obs::{Event, EventKind, MetricsRegistry, Observer, Phase, Sink};
use spb_stats::{Histogram, TopDown};
use spb_trace::profile::AppProfile;

/// A configured, runnable simulation of one application.
///
/// Build one with [`Simulation::new`] (paper-budget defaults) or
/// [`Simulation::with_config`], refine it with the chainable setters,
/// and execute with [`Simulation::run`].
#[derive(Debug, Clone)]
pub struct Simulation {
    profile: AppProfile,
    cfg: SimConfig,
    observer: Observer,
}

impl Simulation {
    /// A simulation of `profile` with the paper's default budget
    /// ([`SimConfig::paper_default`]).
    pub fn new(profile: &AppProfile) -> Simulation {
        Simulation::with_config(profile, &SimConfig::paper_default())
    }

    /// A simulation of `profile` starting from an explicit config.
    pub fn with_config(profile: &AppProfile, cfg: &SimConfig) -> Simulation {
        Simulation {
            profile: profile.clone(),
            cfg: cfg.clone(),
            observer: Observer::off(),
        }
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: SimConfig) -> Simulation {
        self.cfg = cfg;
        self
    }

    /// Selects the store-prefetch policy.
    pub fn policy(mut self, policy: PolicyKind) -> Simulation {
        self.cfg.policy = policy;
        self
    }

    /// Sets the store-buffer size under study.
    pub fn sb_entries(mut self, sb_entries: usize) -> Simulation {
        self.cfg.core.sb_entries = sb_entries;
        self
    }

    /// Sets the fault-injection plan.
    pub fn faults(mut self, fault: FaultConfig) -> Simulation {
        self.cfg.mem.fault = fault;
        self
    }

    /// Sets the trace-generation seed.
    pub fn seed(mut self, seed: u64) -> Simulation {
        self.cfg.seed = seed;
        self
    }

    /// Attaches a sink to receive the run's event stream. Events are
    /// pure reads of simulator state: the run's cycle counts are
    /// bit-identical with or without a sink.
    pub fn observe(self, sink: impl Sink + 'static) -> Simulation {
        self.observer(Observer::new(sink))
    }

    /// Attaches an already-built [`Observer`] (e.g. from
    /// [`spb_obs::Collector::observer`]).
    pub fn observer(mut self, observer: Observer) -> Simulation {
        self.observer = observer;
        self
    }

    /// The configuration the run will use.
    pub fn config_ref(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs the simulation: one core per thread over a shared memory
    /// hierarchy, warm-up, then a fixed per-core measured µop budget.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] (boxed — it carries the violation's event
    /// history and diagnostic strings) when the coherence invariant
    /// checker detects a violation or the forward-progress watchdog
    /// expires.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid (zero
    /// queues).
    pub fn run(&self) -> Result<RunResult, Box<RunError>> {
        let profile = &self.profile;
        let cfg = &self.cfg;
        let wall_start = std::time::Instant::now();
        let threads = profile.threads() as usize;
        let mut mem_cfg = cfg.mem.clone();
        mem_cfg.cores = threads;
        let mut mem = MemorySystem::new(mem_cfg);
        mem.set_observer(self.observer.clone());

        let mut core_cfg = cfg.core;
        if let Some(sb) = cfg.policy.sb_override() {
            core_cfg.sb_entries = sb;
        }
        core_cfg.validate();

        let traces = profile.build_threads(cfg.seed);
        let mut cores: Vec<Core> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                // When the squash model is off no injector exists at
                // all: the trace object is the same one a build without
                // the speculation model would hand the core.
                let trace: Box<dyn spb_trace::TraceSource + Send> = if cfg.squash.enabled() {
                    Box::new(spb_trace::SquashInjector::new(t, cfg.squash, i))
                } else {
                    Box::new(t)
                };
                let mut core = Core::new(i, core_cfg, trace, cfg.policy.build());
                core.set_observer(self.observer.clone());
                core
            })
            .collect();

        let fail = |violation: InvariantViolation| {
            Box::new(RunError {
                app: profile.name().to_string(),
                policy: cfg.policy.label(),
                sb_entries: cfg.effective_sb(),
                violation,
            })
        };

        let mut now: u64 = 0;
        // Warm-up: run until the slowest core has committed the budget.
        self.observer.emit(|| Event {
            cycle: now,
            core: 0,
            kind: EventKind::PhaseBegin(Phase::Warmup),
        });
        advance(
            &mut cores,
            &mut mem,
            &mut now,
            cfg.warmup_uops,
            cfg.watchdog_cycles,
            cfg.kernel,
        )
        .map_err(fail)?;
        // Trace position at the measure boundary: commit is in order, so
        // each core has consumed exactly this many trace entries.
        let warmup_committed: Vec<u64> = cores.iter().map(|c| c.committed_uops()).collect();
        let warmup_squashes: Vec<u64> = cores.iter().map(|c| c.stats().squash_episodes).collect();
        for core in &mut cores {
            core.reset_stats();
        }
        mem.reset_stats();
        let warmup_ms = wall_start.elapsed().as_secs_f64() * 1000.0;
        let measure_start = now;

        self.observer.emit(|| Event {
            cycle: now,
            core: 0,
            kind: EventKind::PhaseBegin(Phase::Measure),
        });
        advance(
            &mut cores,
            &mut mem,
            &mut now,
            cfg.measure_uops,
            cfg.watchdog_cycles,
            cfg.kernel,
        )
        .map_err(fail)?;
        for core in &mut cores {
            core.flush_stall_episode();
        }
        if cfg.mem.checker_interval > 0 {
            // One thorough end-of-run pass, including the expensive
            // inverse directory check the periodic scan skips.
            mem.check_invariants_thorough(now).map_err(fail)?;
        }
        mem.finalize_stats();
        let measure_ms = wall_start.elapsed().as_secs_f64() * 1000.0 - warmup_ms;

        let cycles = now - measure_start;
        let mut topdown = TopDown::new();
        let mut cpu = CpuStats::default();
        let mut uops = 0;
        let mut sb_residency = Histogram::new("sb_residency_cycles", 16, 64);
        let mut per_core = Vec::with_capacity(cores.len());
        for ((core, &warmup), &warm_sq) in cores.iter().zip(&warmup_committed).zip(&warmup_squashes)
        {
            topdown.merge(core.topdown());
            merge_cpu_stats(&mut cpu, core.stats());
            sb_residency.merge(core.sb_residency());
            uops += core.committed_uops();
            per_core.push(crate::runner::CoreWindow {
                warmup_uops: warmup,
                uops: core.committed_uops(),
                stores: core.stats().committed_stores,
                loads: core.stats().committed_loads,
                branches: core.stats().committed_branches,
                warmup_squashes: warm_sq,
                squashes: core.stats().squash_episodes,
            });
        }

        let mem_stats = mem.stats().clone();
        let events = EnergyEvents {
            cycles: cycles * threads as u64,
            committed_uops: uops,
            wrong_path_uops: cpu.wrong_path_uops,
            l1_accesses: mem_stats.l1_data_accesses + cpu.wrong_path_l1_accesses,
            l1_tag_checks: mem_stats.l1_tag_checks,
            l2_accesses: mem_stats.l2_accesses,
            l3_accesses: mem_stats.l3_accesses,
            dram_accesses: mem_stats.dram_accesses + mem_stats.writebacks,
        };
        let energy = EnergyModel::default().evaluate(&events);

        let burst_lengths = mem.burst_lengths().clone();
        let mut result = RunResult {
            app: profile.name().to_string(),
            policy: cfg.policy.label(),
            sb_entries: cfg.effective_sb(),
            cycles,
            uops,
            topdown,
            cpu,
            mem: mem_stats,
            per_core,
            sb_residency,
            burst_lengths,
            energy,
            metrics: MetricsRegistry::new(),
            wall_ms: wall_start.elapsed().as_secs_f64() * 1000.0,
        };
        result.metrics = build_metrics(&result, threads, warmup_ms, measure_ms);
        Ok(result)
    }

    /// [`Simulation::run`], panicking with the violation's full
    /// diagnostic instead of returning an error — for tests and
    /// experiments where an aborted run is a bug.
    ///
    /// # Panics
    ///
    /// Panics when [`Simulation::run`] would return an error.
    pub fn run_or_panic(&self) -> RunResult {
        self.run().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Registers the run's headline numbers, counters and distributions in
/// a [`MetricsRegistry`], grouped by component.
fn build_metrics(
    r: &RunResult,
    threads: usize,
    warmup_ms: f64,
    measure_ms: f64,
) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.component("runner")
        .counter("cycles", r.cycles)
        .counter("uops", r.uops)
        .counter("cores", threads as u64)
        .gauge("ipc", r.ipc())
        .gauge("warmup_ms", warmup_ms)
        .gauge("measure_ms", measure_ms);
    reg.component("cpu")
        .counter("committed_stores", r.cpu.committed_stores)
        .counter("committed_loads", r.cpu.committed_loads)
        .counter("committed_branches", r.cpu.committed_branches)
        .counter("mispredicts", r.cpu.mispredicts)
        .counter("store_forwards", r.cpu.store_forwards)
        .counter("coalesced_stores", r.cpu.coalesced_stores)
        .gauge("sb_stall_ratio", r.sb_stall_ratio());
    reg.component("mem")
        .counter("loads", r.mem.loads)
        .counter("load_dram", r.mem.load_dram)
        .counter("stores_performed", r.mem.stores_performed)
        .counter("store_retries", r.mem.store_retries)
        .counter("demand_store_misses", r.mem.demand_store_misses)
        .counter("writebacks", r.mem.writebacks)
        .counter("invalidations", r.mem.invalidations)
        .counter("l2_accesses", r.mem.l2_accesses)
        .counter("l3_accesses", r.mem.l3_accesses)
        .counter("dram_accesses", r.mem.dram_accesses);
    reg.component("sb").histogram(&r.sb_residency);
    reg.component("spb").histogram(&r.burst_lengths);
    // Registered only when the squash model actually fired, so runs
    // without it serialize the exact metric set they always had.
    if r.cpu.squash_episodes > 0 {
        reg.component("squash")
            .counter("episodes", r.cpu.squash_episodes)
            .counter("wrong_path_stores", r.cpu.wrong_path_stores_injected)
            .counter("spec_rfos_issued", r.mem.spec_rfos_issued)
            .counter("wasted_rfos", r.mem.spec_wasted_rfos)
            .counter("wasted_coh_msgs", r.mem.spec_wasted_coh_msgs)
            .counter("leaked_m_blocks", r.mem.spec_leaked_m_blocks)
            .counter("wasted_dram", r.mem.spec_wasted_dram)
            .counter("dropped_burst_entries", r.mem.spec_dropped);
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_obs::Collector;

    #[test]
    fn builder_setters_reach_the_config() {
        let app = AppProfile::by_name("gcc").unwrap();
        let sim = Simulation::with_config(&app, &SimConfig::quick())
            .policy(PolicyKind::IdealSb)
            .sb_entries(20)
            .seed(99);
        assert_eq!(sim.config_ref().seed, 99);
        assert_eq!(sim.config_ref().core.sb_entries, 20);
    }

    #[test]
    fn run_registers_metrics() {
        let app = AppProfile::by_name("gcc").unwrap();
        let r = Simulation::with_config(&app, &SimConfig::quick())
            .run()
            .unwrap();
        let runner = r.metrics.get("runner").expect("runner component");
        assert_eq!(runner.get_counter("cycles"), Some(r.cycles));
        assert_eq!(runner.get_counter("uops"), Some(r.uops));
        assert!(runner.get_gauge("measure_ms").unwrap() >= 0.0);
        assert_eq!(
            r.metrics
                .get("cpu")
                .unwrap()
                .get_counter("committed_stores"),
            Some(r.cpu.committed_stores)
        );
    }

    #[test]
    fn observing_a_run_changes_no_simulated_number() {
        let app = AppProfile::by_name("x264").unwrap();
        let cfg = SimConfig::quick()
            .with_sb(14)
            .with_policy(PolicyKind::spb_default());
        let plain = Simulation::with_config(&app, &cfg).run().unwrap();
        let collector = Collector::new();
        let observed = Simulation::with_config(&app, &cfg)
            .observer(collector.observer())
            .run()
            .unwrap();
        assert_eq!(plain.cycles, observed.cycles);
        assert_eq!(plain.uops, observed.uops);
        assert_eq!(plain.mem, observed.mem);
        assert!(!collector.is_empty(), "the observed run produced events");
    }

    #[test]
    fn observed_run_emits_the_headline_event_kinds() {
        let app = AppProfile::by_name("x264").unwrap();
        let cfg = SimConfig::quick()
            .with_sb(14)
            .with_policy(PolicyKind::spb_default());
        let collector = Collector::new();
        Simulation::with_config(&app, &cfg)
            .observer(collector.observer())
            .run()
            .unwrap();
        let events = collector.take();
        let has = |pred: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
        assert!(has(&|k| matches!(k, EventKind::PhaseBegin(Phase::Measure))));
        assert!(has(&|k| matches!(k, EventKind::StallEpisode { .. })));
        assert!(has(&|k| matches!(k, EventKind::SbEnqueue { .. })));
        assert!(has(&|k| matches!(k, EventKind::SbDrain { .. })));
        assert!(has(&|k| matches!(k, EventKind::BurstDetected { .. })));
        assert!(has(&|k| matches!(k, EventKind::BurstIssued { .. })));
        assert!(has(&|k| matches!(k, EventKind::Coherence { .. })));
        assert!(has(&|k| matches!(k, EventKind::MshrAlloc { .. })));
    }
}

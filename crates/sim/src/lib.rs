//! Full-system assembly and experiment driver.
//!
//! This crate wires the substrates together the way the paper's gem5
//! setup does: one [`spb_cpu::Core`] per thread (Table I widths and
//! queues), a shared [`spb_mem::MemorySystem`] (private L1/L2, shared
//! L3, MESI directory), a store-prefetch policy per core, and the
//! [`spb_energy::EnergyModel`].
//!
//! - [`config::SimConfig`] / [`config::PolicyKind`] describe a run: the
//!   core microarchitecture, the SB size under study, and which of
//!   {none, at-execute, at-commit, SPB, SPB-dynamic, ideal-SB} drives
//!   store prefetching.
//! - [`runner::run_app`] executes an application profile with warm-up
//!   and a fixed measured µop budget (the paper's ROI methodology in
//!   miniature) and returns a [`runner::RunResult`] with all the
//!   counters the figures need.
//! - [`suite`] runs whole benchmark suites and aggregates the "ALL" and
//!   "SB-BOUND" geometric means the paper reports.
//! - [`sweep`] fans independent `(application, configuration)` cells
//!   out over a worker pool with deterministic, input-ordered results,
//!   and summarizes sweeps as machine-readable JSON reports.
//!
//! # Examples
//!
//! ```
//! use spb_sim::{config::{PolicyKind, SimConfig}, runner::run_app};
//! use spb_trace::profile::AppProfile;
//!
//! let app = AppProfile::by_name("x264").unwrap();
//! let mut cfg = SimConfig::quick();
//! cfg.policy = PolicyKind::Spb { n: 48, dedupe: true };
//! let result = run_app(&app, &cfg);
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod report;
pub mod runner;
pub mod suite;
pub mod sweep;

pub use config::{PolicyKind, SimConfig};
pub use runner::{run_app, run_app_checked, RunError, RunResult};
pub use sweep::{CellFailure, SweepOptions, SweepReport};

//! Full-system assembly and experiment driver.
//!
//! This crate wires the substrates together the way the paper's gem5
//! setup does: one [`spb_cpu::Core`] per thread (Table I widths and
//! queues), a shared [`spb_mem::MemorySystem`] (private L1/L2, shared
//! L3, MESI directory), a store-prefetch policy per core, and the
//! [`spb_energy::EnergyModel`].
//!
//! - [`config::SimConfig`] / [`config::PolicyKind`] describe a run: the
//!   core microarchitecture, the SB size under study, and which of
//!   {none, at-execute, at-commit, SPB, SPB-dynamic, ideal-SB} drives
//!   store prefetching.
//! - [`simulation::Simulation`] executes an application profile with
//!   warm-up and a fixed measured µop budget (the paper's ROI
//!   methodology in miniature) and returns a [`runner::RunResult`] with
//!   all the counters the figures need. Attach any [`spb_obs::Sink`]
//!   with [`simulation::Simulation::observe`] to stream the run's typed
//!   events without perturbing it.
//! - [`suite`] runs whole benchmark suites and aggregates the "ALL" and
//!   "SB-BOUND" geometric means the paper reports.
//! - [`sweep`] fans independent `(application, configuration)` cells
//!   out over a worker pool with deterministic, input-ordered results,
//!   and summarizes sweeps as machine-readable JSON reports.
//!
//! # Examples
//!
//! ```
//! use spb_sim::{PolicyKind, SimConfig, Simulation};
//! use spb_trace::profile::AppProfile;
//!
//! let app = AppProfile::by_name("x264").unwrap();
//! let result = Simulation::with_config(&app, &SimConfig::quick())
//!     .policy(PolicyKind::spb_default())
//!     .run()
//!     .unwrap();
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod report;
pub mod runner;
pub mod scheduler;
pub mod simulation;
pub mod suite;
pub mod sweep;

pub use config::{KernelMode, PolicyKind, SimConfig};
pub use runner::{CoreWindow, RunError, RunResult};
pub use simulation::Simulation;
pub use sweep::{CellFailure, ChaosPlan, Supervision, SweepOptions, SweepReport};

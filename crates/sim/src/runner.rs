//! Executing one application under one configuration.

use crate::config::SimConfig;
use spb_cpu::core::{Core, CpuStats};
use spb_energy::{EnergyBreakdown, EnergyEvents, EnergyModel};
use spb_mem::checker::{InvariantKind, InvariantViolation};
use spb_mem::system::MemStats;
use spb_mem::MemorySystem;
use spb_stats::{Histogram, TopDown};
use spb_trace::profile::AppProfile;
use std::fmt;

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Effective SB entries.
    pub sb_entries: usize,
    /// Measured cycles (shared clock; all cores run in lock-step).
    pub cycles: u64,
    /// Total µops committed across cores during measurement.
    pub uops: u64,
    /// Aggregated Top-Down accounting (per-core records merged).
    pub topdown: TopDown,
    /// Aggregated core counters.
    pub cpu: CpuStats,
    /// Memory-system counters (finalized).
    pub mem: MemStats,
    /// Post-commit SB residency distribution, merged over cores.
    pub sb_residency: Histogram,
    /// SPB burst-length distribution at the L1 controller.
    pub burst_lengths: Histogram,
    /// Energy breakdown for the measured window.
    pub energy: EnergyBreakdown,
    /// Host wall-clock time spent simulating (warm-up + measurement),
    /// in milliseconds. Observability only: this is the one field that
    /// varies between repeated runs, so comparisons of results must
    /// ignore it.
    pub wall_ms: f64,
}

impl RunResult {
    /// Committed µops per cycle across all cores.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops as f64 / self.cycles as f64
        }
    }

    /// Fraction of (core-)cycles stalled on a full SB.
    pub fn sb_stall_ratio(&self) -> f64 {
        self.topdown.sb_stall_ratio()
    }

    /// Execution time proxy: measured cycles (lower is better).
    pub fn time(&self) -> f64 {
        self.cycles as f64
    }

    /// Host simulation rate: committed µops per wall-clock second.
    pub fn uops_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.uops as f64 / (self.wall_ms / 1000.0)
        }
    }
}

/// A run aborted by the coherence checker or the forward-progress
/// watchdog, with enough context to identify the offending sweep cell.
#[derive(Debug, Clone)]
pub struct RunError {
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Effective SB entries.
    pub sb_entries: usize,
    /// What went wrong.
    pub violation: InvariantViolation,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run aborted [{} / {} / sb={}]: {}",
            self.app, self.policy, self.sb_entries, self.violation
        )
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.violation)
    }
}

/// Advances the lock-step simulation until the slowest core has
/// committed `target` µops, polling the memory system's invariant
/// checker and watching for forward progress.
fn advance(
    cores: &mut [Core],
    mem: &mut MemorySystem,
    now: &mut u64,
    target: u64,
    watchdog: u64,
) -> Result<(), InvariantViolation> {
    let mut last_min = 0u64;
    let mut last_progress_at = *now;
    loop {
        let min_uops = cores.iter().map(|c| c.committed_uops()).min().unwrap_or(0);
        if min_uops >= target {
            return Ok(());
        }
        if min_uops > last_min {
            last_min = min_uops;
            last_progress_at = *now;
        } else if watchdog > 0 && *now - last_progress_at > watchdog {
            return Err(InvariantViolation {
                kind: InvariantKind::ForwardProgress,
                block: None,
                core: None,
                cycle: *now,
                detail: format!(
                    "no core committed a µop for {watchdog} cycles \
                     (slowest core stuck at {min_uops}/{target} µops)\n{}",
                    mem.diagnostic_snapshot(*now)
                ),
                history: Vec::new(),
            });
        }
        mem.tick(*now);
        for core in cores.iter_mut() {
            core.cycle(mem, *now);
        }
        if let Some(v) = mem.take_violation() {
            return Err(v);
        }
        *now += 1;
    }
}

fn merge_cpu_stats(into: &mut CpuStats, from: &CpuStats) {
    into.committed_stores += from.committed_stores;
    into.committed_loads += from.committed_loads;
    into.committed_branches += from.committed_branches;
    into.mispredicts += from.mispredicts;
    into.wrong_path_uops += from.wrong_path_uops;
    into.wrong_path_l1_accesses += from.wrong_path_l1_accesses;
    into.store_forwards += from.store_forwards;
    into.coalesced_stores += from.coalesced_stores;
    for i in 0..into.sb_stall_by_region.len() {
        into.sb_stall_by_region[i] += from.sb_stall_by_region[i];
    }
}

/// Runs `profile` under `cfg`: builds one core per thread over a shared
/// memory hierarchy, warms up, measures a fixed per-core µop budget,
/// and returns the collected counters.
///
/// # Panics
///
/// Panics if the configuration is structurally invalid (zero queues),
/// or with the violation's full diagnostic if the coherence checker or
/// forward-progress watchdog aborts the run. Sweeps that must survive
/// bad cells use [`run_app_checked`] instead.
pub fn run_app(profile: &AppProfile, cfg: &SimConfig) -> RunResult {
    run_app_checked(profile, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_app`], but invariant violations and watchdog trips surface as a
/// structured [`RunError`] instead of a panic.
///
/// # Errors
///
/// Returns a [`RunError`] (boxed — it carries the violation's event
/// history and diagnostic strings) when the coherence invariant checker
/// detects a violation or the forward-progress watchdog expires.
///
/// # Panics
///
/// Panics if the configuration is structurally invalid (zero queues).
pub fn run_app_checked(
    profile: &AppProfile,
    cfg: &SimConfig,
) -> Result<RunResult, Box<RunError>> {
    let wall_start = std::time::Instant::now();
    let threads = profile.threads() as usize;
    let mut mem_cfg = cfg.mem.clone();
    mem_cfg.cores = threads;
    let mut mem = MemorySystem::new(mem_cfg);

    let mut core_cfg = cfg.core;
    if let Some(sb) = cfg.policy.sb_override() {
        core_cfg.sb_entries = sb;
    }
    core_cfg.validate();

    let traces = profile.build_threads(cfg.seed);
    let mut cores: Vec<Core> = traces
        .into_iter()
        .enumerate()
        .map(|(i, t)| Core::new(i, core_cfg, Box::new(t), cfg.policy.build()))
        .collect();

    let fail = |violation: InvariantViolation| {
        Box::new(RunError {
            app: profile.name().to_string(),
            policy: cfg.policy.label(),
            sb_entries: cfg.effective_sb(),
            violation,
        })
    };

    let mut now: u64 = 0;
    // Warm-up: run until the slowest core has committed the budget.
    advance(&mut cores, &mut mem, &mut now, cfg.warmup_uops, cfg.watchdog_cycles)
        .map_err(fail)?;
    for core in &mut cores {
        core.reset_stats();
    }
    mem.reset_stats();
    let measure_start = now;

    advance(&mut cores, &mut mem, &mut now, cfg.measure_uops, cfg.watchdog_cycles)
        .map_err(fail)?;
    if cfg.mem.checker_interval > 0 {
        // One thorough end-of-run pass, including the expensive inverse
        // directory check the periodic scan skips.
        mem.check_invariants_thorough(now).map_err(fail)?;
    }
    mem.finalize_stats();

    let cycles = now - measure_start;
    let mut topdown = TopDown::new();
    let mut cpu = CpuStats::default();
    let mut uops = 0;
    let mut sb_residency = Histogram::new("sb_residency_cycles", 16, 64);
    for core in &cores {
        topdown.merge(core.topdown());
        merge_cpu_stats(&mut cpu, core.stats());
        sb_residency.merge(core.sb_residency());
        uops += core.committed_uops();
    }

    let mem_stats = mem.stats().clone();
    let events = EnergyEvents {
        cycles: cycles * threads as u64,
        committed_uops: uops,
        wrong_path_uops: cpu.wrong_path_uops,
        l1_accesses: mem_stats.l1_data_accesses + cpu.wrong_path_l1_accesses,
        l1_tag_checks: mem_stats.l1_tag_checks,
        l2_accesses: mem_stats.l2_accesses,
        l3_accesses: mem_stats.l3_accesses,
        dram_accesses: mem_stats.dram_accesses + mem_stats.writebacks,
    };
    let energy = EnergyModel::default().evaluate(&events);

    Ok(RunResult {
        app: profile.name().to_string(),
        policy: cfg.policy.label(),
        sb_entries: cfg.effective_sb(),
        cycles,
        uops,
        topdown,
        cpu,
        mem: mem_stats,
        sb_residency,
        burst_lengths: mem.burst_lengths().clone(),
        energy,
        wall_ms: wall_start.elapsed().as_secs_f64() * 1000.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let app = AppProfile::by_name("gcc").unwrap();
        let r = run_app(&app, &SimConfig::quick());
        assert!(r.cycles > 0);
        assert!(r.uops >= SimConfig::quick().measure_uops);
        assert!(r.ipc() > 0.05 && r.ipc() < 4.0, "ipc {}", r.ipc());
        assert!(r.energy.total_nj() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let app = AppProfile::by_name("x264").unwrap();
        let a = run_app(&app, &SimConfig::quick());
        let b = run_app(&app, &SimConfig::quick());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.uops, b.uops);
        assert_eq!(a.mem.loads, b.mem.loads);
    }

    #[test]
    fn sb_bound_app_shows_sb_stalls_at_small_sb() {
        let app = AppProfile::by_name("bwaves").unwrap();
        let cfg = SimConfig::quick().with_sb(14);
        let r = run_app(&app, &cfg);
        assert!(
            r.sb_stall_ratio() > 0.02,
            "bwaves at SB14 must be SB-bound, got {}",
            r.sb_stall_ratio()
        );
    }

    #[test]
    fn spb_beats_at_commit_on_sb_bound_app_with_small_sb() {
        let app = AppProfile::by_name("x264").unwrap();
        let base = run_app(&app, &SimConfig::quick().with_sb(14));
        let spb = run_app(
            &app,
            &SimConfig::quick()
                .with_sb(14)
                .with_policy(PolicyKind::spb_default()),
        );
        assert!(
            spb.cycles < base.cycles,
            "SPB {} vs at-commit {}",
            spb.cycles,
            base.cycles
        );
    }

    #[test]
    fn parsec_app_runs_eight_cores() {
        let app = AppProfile::by_name("dedup").unwrap();
        let mut cfg = SimConfig::quick();
        cfg.warmup_uops = 3_000;
        cfg.measure_uops = 30_000;
        let r = run_app(&app, &cfg);
        // Eight cores, each committing at least the measure budget.
        assert!(r.uops >= 8 * cfg.measure_uops);
    }

    #[test]
    fn watchdog_trips_on_livelocked_memory_instead_of_hanging() {
        let app = AppProfile::by_name("gcc").unwrap();
        let mut cfg = SimConfig::quick();
        // Every DRAM fill takes ~10M extra cycles: no store or load can
        // complete, so no core ever commits — a livelock without the
        // watchdog.
        cfg.mem.fault = spb_mem::FaultConfig {
            dram_spike_rate: 1.0,
            dram_spike_cycles: 10_000_000,
            ..spb_mem::FaultConfig::none()
        };
        cfg.watchdog_cycles = 5_000;
        let err = run_app_checked(&app, &cfg).unwrap_err();
        assert_eq!(err.violation.kind, InvariantKind::ForwardProgress);
        let msg = err.to_string();
        assert!(msg.contains("gcc"), "names the app: {msg}");
        assert!(
            msg.contains("memory-system snapshot"),
            "carries the controller dump: {msg}"
        );
        assert!(msg.contains("mshr"), "shows MSHR occupancy: {msg}");
    }

    #[test]
    fn moderate_faults_complete_with_clean_checker() {
        let app = AppProfile::by_name("x264").unwrap();
        let mut cfg = SimConfig::quick();
        cfg.mem.fault = spb_mem::FaultConfig::uniform(0.01, 7);
        let r = run_app_checked(&app, &cfg).expect("faulty run stays coherent");
        assert!(
            r.mem.faults_dram_spiked > 0,
            "faults actually fired during the run"
        );
    }

    #[test]
    fn checker_and_injector_are_zero_perturbation_when_off() {
        let app = AppProfile::by_name("gcc").unwrap();
        let mut off = SimConfig::quick();
        off.mem.checker_interval = 0;
        off.watchdog_cycles = 0;
        let a = run_app(&app, &SimConfig::quick());
        let b = run_app(&app, &off);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.uops, b.uops);
        assert_eq!(a.mem, b.mem);
    }

    #[test]
    fn ideal_policy_reports_1024_entries() {
        let app = AppProfile::by_name("gcc").unwrap();
        let r = run_app(
            &app,
            &SimConfig::quick()
                .with_sb(14)
                .with_policy(PolicyKind::IdealSb),
        );
        assert_eq!(r.sb_entries, 1024);
    }
}

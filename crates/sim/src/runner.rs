//! Run results, run errors, and the advance loop (both kernels).
//!
//! The execution entry point is [`crate::simulation::Simulation`]. The
//! loop itself comes in two bit-identical flavours selected by
//! [`crate::config::KernelMode`]: the legacy lock-step kernel
//! ([`advance_tick`]) ticks every component every cycle, while the
//! skip-ahead kernel ([`advance_event`]) asks the memory system and
//! every core for a `next_event_at` horizon and jumps the clock to the
//! minimum whenever nobody has same-cycle work (see DESIGN.md §9 for
//! the contract).

use crate::config::KernelMode;
use crate::scheduler::TimingWheel;
use spb_cpu::core::{Core, CpuStats};
use spb_energy::EnergyBreakdown;
use spb_mem::checker::{InvariantKind, InvariantViolation};
use spb_mem::system::MemStats;
use spb_mem::MemorySystem;
use spb_obs::MetricsRegistry;
use spb_stats::{Histogram, TopDown};
use std::fmt;

/// Per-core commit accounting for one run.
///
/// Commit is in order and wrong-path µops are synthesized (they never
/// consume trace entries), so core `c`'s committed µop stream is exactly
/// the first `warmup_uops + uops` entries of its trace. That makes these
/// counters an exact replay recipe: an in-order model walking the same
/// [`spb_trace::PhasedWorkload`] predicts the committed store/load/
/// branch counts of the measured window — the contract the `spb-verify`
/// differential oracles check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreWindow {
    /// µops committed during warm-up (≥ the warm-up target; the
    /// lock-step loop can overshoot by up to the commit width, and fast
    /// cores keep committing while the slowest catches up).
    pub warmup_uops: u64,
    /// µops committed during the measured window.
    pub uops: u64,
    /// Stores committed during the measured window.
    pub stores: u64,
    /// Loads committed during the measured window.
    pub loads: u64,
    /// Branches committed during the measured window.
    pub branches: u64,
    /// Wrong-path squash episodes resolved during warm-up. Together
    /// with `squashes` this tells the `spb-verify` leak oracle exactly
    /// which [`spb_trace::squash::EpisodePlan`] episodes fall inside
    /// the measured window.
    pub warmup_squashes: u64,
    /// Wrong-path squash episodes resolved during the measured window.
    pub squashes: u64,
}

impl CoreWindow {
    /// Total trace entries this core consumed through end of measure.
    pub fn trace_len(&self) -> u64 {
        self.warmup_uops + self.uops
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Effective SB entries.
    pub sb_entries: usize,
    /// Measured cycles (shared clock; all cores run in lock-step).
    pub cycles: u64,
    /// Total µops committed across cores during measurement.
    pub uops: u64,
    /// Aggregated Top-Down accounting (per-core records merged).
    pub topdown: TopDown,
    /// Aggregated core counters.
    pub cpu: CpuStats,
    /// Memory-system counters (finalized).
    pub mem: MemStats,
    /// Per-core commit windows (one entry per hardware thread), the
    /// replay recipe consumed by the `spb-verify` oracles.
    pub per_core: Vec<CoreWindow>,
    /// Post-commit SB residency distribution, merged over cores.
    pub sb_residency: Histogram,
    /// SPB burst-length distribution at the L1 controller.
    pub burst_lengths: Histogram,
    /// Energy breakdown for the measured window.
    pub energy: EnergyBreakdown,
    /// Named counters, gauges and histogram snapshots registered by
    /// component (`"runner"`, `"cpu"`, `"mem"`, `"sb"`, `"spb"`), for
    /// serialization into sweep reports and traces.
    pub metrics: MetricsRegistry,
    /// Host wall-clock time spent simulating (warm-up + measurement),
    /// in milliseconds. Observability only: this is the one field that
    /// varies between repeated runs, so comparisons of results must
    /// ignore it.
    pub wall_ms: f64,
}

impl RunResult {
    /// Committed µops per cycle across all cores.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops as f64 / self.cycles as f64
        }
    }

    /// Fraction of (core-)cycles stalled on a full SB.
    pub fn sb_stall_ratio(&self) -> f64 {
        self.topdown.sb_stall_ratio()
    }

    /// Execution time proxy: measured cycles (lower is better).
    pub fn time(&self) -> f64 {
        self.cycles as f64
    }

    /// Host simulation rate: committed µops per wall-clock second.
    pub fn uops_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.uops as f64 / (self.wall_ms / 1000.0)
        }
    }
}

/// A run aborted by the coherence checker or the forward-progress
/// watchdog, with enough context to identify the offending sweep cell.
#[derive(Debug, Clone)]
pub struct RunError {
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Effective SB entries.
    pub sb_entries: usize,
    /// What went wrong.
    pub violation: InvariantViolation,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run aborted [{} / {} / sb={}]: {}",
            self.app, self.policy, self.sb_entries, self.violation
        )
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.violation)
    }
}

/// Advances the simulation until the slowest core has committed
/// `target` µops, using the selected kernel. Both kernels poll the
/// memory system's invariant checker and watch for forward progress,
/// and produce bit-identical results.
pub(crate) fn advance(
    cores: &mut [Core],
    mem: &mut MemorySystem,
    now: &mut u64,
    target: u64,
    watchdog: u64,
    kernel: KernelMode,
) -> Result<(), InvariantViolation> {
    match kernel {
        KernelMode::Tick => advance_tick(cores, mem, now, target, watchdog),
        KernelMode::Event => advance_event(cores, mem, now, target, watchdog),
        KernelMode::Wheel => advance_wheel(cores, mem, now, target, watchdog),
    }
}

/// Builds the forward-progress violation both kernels report when no
/// core commits a µop for `watchdog` consecutive cycles.
fn watchdog_violation(
    mem: &MemorySystem,
    now: u64,
    watchdog: u64,
    min_uops: u64,
    target: u64,
) -> InvariantViolation {
    InvariantViolation {
        kind: InvariantKind::ForwardProgress,
        block: None,
        core: None,
        cycle: now,
        detail: format!(
            "no core committed a µop for {watchdog} cycles \
             (slowest core stuck at {min_uops}/{target} µops)\n{}",
            mem.diagnostic_snapshot(now)
        ),
        history: Vec::new(),
    }
}

/// The legacy lock-step kernel: ticks the memory system and every core
/// once per cycle. Kept for one release as the reference the skip-ahead
/// kernel is verified against.
pub(crate) fn advance_tick(
    cores: &mut [Core],
    mem: &mut MemorySystem,
    now: &mut u64,
    target: u64,
    watchdog: u64,
) -> Result<(), InvariantViolation> {
    let mut last_min = 0u64;
    let mut last_progress_at = *now;
    loop {
        let min_uops = cores.iter().map(|c| c.committed_uops()).min().unwrap_or(0);
        if min_uops >= target {
            return Ok(());
        }
        if min_uops > last_min {
            last_min = min_uops;
            last_progress_at = *now;
        } else if watchdog > 0 && *now - last_progress_at > watchdog {
            return Err(watchdog_violation(mem, *now, watchdog, min_uops, target));
        }
        mem.tick(*now);
        for core in cores.iter_mut() {
            core.cycle(mem, *now);
        }
        if let Some(v) = mem.take_violation() {
            return Err(v);
        }
        *now += 1;
    }
}

/// Longest stretch of unprobed (normally ticked) cycles the event
/// kernel allows once probes keep finding same-cycle work.
const MAX_PROBE_BACKOFF: u64 = 64;

/// The discrete-event skip-ahead kernel.
///
/// Each iteration first probes the memory system and every core for a
/// `next_event_at` horizon. If anyone has same-cycle work (or a probe
/// finds none of the clamp events below apply), the cycle runs exactly
/// as under [`advance_tick`]. Otherwise the clock jumps straight to the
/// earliest horizon, after each core bulk-replays the accounting the
/// skipped idle cycles would have produced (`Core::skip_span`). The
/// jump target is additionally clamped to the next invariant-checker
/// boundary, observer sample boundary, and the watchdog deadline, so
/// checker runs, occupancy samples, and watchdog aborts happen at
/// exactly the cycles the lock-step kernel would have executed them.
pub(crate) fn advance_event(
    cores: &mut [Core],
    mem: &mut MemorySystem,
    now: &mut u64,
    target: u64,
    watchdog: u64,
) -> Result<(), InvariantViolation> {
    let mut last_min = 0u64;
    let mut last_progress_at = *now;
    // Adaptive probe backoff. Skipping a probe is always sound — the
    // cycle then runs exactly as under the lock-step kernel — so on
    // workloads that are busy every cycle (high-IPC compute) the kernel
    // stops paying the per-cycle probe: each consecutive busy probe
    // doubles the distance to the next one (capped), and any idle probe
    // resets the backoff to probing every cycle.
    let mut next_probe_at = *now;
    let mut busy_backoff = 0u64;
    loop {
        let min_uops = cores.iter().map(|c| c.committed_uops()).min().unwrap_or(0);
        if min_uops >= target {
            return Ok(());
        }
        if min_uops > last_min {
            last_min = min_uops;
            last_progress_at = *now;
        } else if watchdog > 0 && *now - last_progress_at > watchdog {
            return Err(watchdog_violation(mem, *now, watchdog, min_uops, target));
        }

        // Probe for a quiescent span: nobody may have same-cycle work.
        let mut horizon: Option<u64> = None;
        let merge = |h: &mut Option<u64>, t: u64| *h = Some(h.map_or(t, |n| n.min(t)));
        let mut busy = *now < next_probe_at;
        if !busy {
            busy = match mem.next_event_at(*now) {
                Some(t) if t <= *now => true,
                Some(t) => {
                    merge(&mut horizon, t);
                    false
                }
                None => false,
            };
            if !busy {
                for core in cores.iter_mut() {
                    match core.next_event_at(*now) {
                        Some(t) if t <= *now => {
                            busy = true;
                            break;
                        }
                        Some(t) => merge(&mut horizon, t),
                        None => {} // no pending events on this core
                    }
                }
            }
            if busy {
                busy_backoff = (busy_backoff * 2).clamp(1, MAX_PROBE_BACKOFF);
                next_probe_at = *now + busy_backoff;
            } else {
                busy_backoff = 0;
            }
        }
        if !busy {
            if watchdog > 0 {
                // First cycle at which the watchdog check above fires.
                merge(&mut horizon, last_progress_at + watchdog + 1);
            }
            if let Some(t) = horizon {
                debug_assert!(t > *now, "horizons must be in the future");
                for core in cores.iter_mut() {
                    core.skip_span(mem, *now, t);
                }
                *now = t;
                continue;
            }
            // No pending events anywhere and no watchdog: fall through
            // to a normal cycle, replicating the lock-step kernel's
            // behaviour (spin until the caller's target or forever).
        }

        mem.tick(*now);
        for core in cores.iter_mut() {
            core.cycle(mem, *now);
        }
        if let Some(v) = mem.take_violation() {
            return Err(v);
        }
        *now += 1;
    }
}

/// The push-based timing-wheel kernel (DESIGN.md §12).
///
/// Differences from [`advance_event`]:
///
/// - The memory system is ticked only on cycles where it has observable
///   work. [`MemorySystem::wake_at`] is an O(1) read of state the
///   memory system publishes at the moment it changes (cached checker /
///   observer boundaries, burst-queue drain eligibility), not a probe
///   that recomputes boundaries every cycle.
/// - Cores are probed for a horizon only on cycles where no core
///   committed a µop — commit progress is the cheap busy signal — and
///   the resulting wakeups are *registered* with a hierarchical
///   [`TimingWheel`] (one wake source per core, one for the memory
///   system, one for the watchdog deadline) instead of being re-merged
///   from scratch at every probe.
/// - Each entered cycle runs exactly as under [`advance_tick`]; when
///   everyone is quiescent the clock jumps to the wheel's earliest
///   wakeup with the skipped span bulk-replayed (`Core::skip_span`).
///   Wakeups may fire early (the woken component finds no work and
///   re-registers) but never late, so checker runs, observer samples,
///   burst issues and the watchdog all happen at exactly the cycles the
///   lock-step kernel would have executed them.
pub(crate) fn advance_wheel(
    cores: &mut [Core],
    mem: &mut MemorySystem,
    now: &mut u64,
    target: u64,
    watchdog: u64,
) -> Result<(), InvariantViolation> {
    let n = cores.len();
    let mem_id = n;
    let wd_id = n + 1;
    let mut wheel = TimingWheel::new(n + 2, *now);
    let mut last_min = 0u64;
    let mut last_progress_at = *now;
    let mut last_total: u64 = cores.iter().map(|c| c.committed_uops()).sum();
    // Probe backoff for busy-but-not-committing stretches, as in
    // `advance_event`: skipping a probe is always sound.
    let mut next_probe_at = *now;
    let mut busy_backoff = 0u64;
    loop {
        let min_uops = cores.iter().map(|c| c.committed_uops()).min().unwrap_or(0);
        if min_uops >= target {
            return Ok(());
        }
        if min_uops > last_min {
            last_min = min_uops;
            last_progress_at = *now;
        } else if watchdog > 0 && *now - last_progress_at > watchdog {
            return Err(watchdog_violation(mem, *now, watchdog, min_uops, target));
        }

        // The cycle itself, exactly as under the lock-step kernel —
        // except the memory system is ticked only when it has work.
        if mem.wake_at(*now) <= *now {
            mem.tick(*now);
        }
        for core in cores.iter_mut() {
            core.cycle(mem, *now);
        }
        if let Some(v) = mem.take_violation() {
            return Err(v);
        }

        // Commit progress is the busy signal: as long as some core
        // commits, keep running cycles without probing anyone.
        let new_total: u64 = cores.iter().map(|c| c.committed_uops()).sum();
        let committed = new_total != last_total;
        last_total = new_total;
        if committed || *now < next_probe_at {
            *now += 1;
            continue;
        }

        // No commit anywhere: probe each core once and register its
        // wakeup. Any same-cycle work means the machine is still busy
        // (e.g. a drain mid-burst) — back off and keep cycling.
        wheel.advance_to(*now);
        let mut busy = false;
        for (i, core) in cores.iter_mut().enumerate() {
            match core.next_event_at(*now) {
                Some(t) if t <= *now => {
                    busy = true;
                    break;
                }
                Some(t) => wheel.register(i, t),
                None => wheel.cancel(i),
            }
        }
        if busy {
            busy_backoff = (busy_backoff * 2).clamp(1, MAX_PROBE_BACKOFF);
            next_probe_at = *now + busy_backoff;
            *now += 1;
            continue;
        }
        busy_backoff = 0;
        match mem.wake_at(*now) {
            u64::MAX => wheel.cancel(mem_id),
            t => wheel.register(mem_id, t),
        }
        if watchdog > 0 {
            // First cycle at which the watchdog check above fires.
            wheel.register(wd_id, last_progress_at + watchdog + 1);
        }
        match wheel.next_wake() {
            Some(t) => {
                // The cycle at `*now` already ran, so the quiescent
                // span to replay starts one cycle later.
                let t = t.max(*now + 1);
                for core in cores.iter_mut() {
                    core.skip_span(mem, *now + 1, t);
                }
                wheel.advance_to(t);
                *now = t;
            }
            // No pending events anywhere and no watchdog: fall through
            // to normal cycles, replicating the lock-step kernel's
            // behaviour (spin until the caller's target or forever).
            None => *now += 1,
        }
    }
}

pub(crate) fn merge_cpu_stats(into: &mut CpuStats, from: &CpuStats) {
    into.committed_stores += from.committed_stores;
    into.committed_loads += from.committed_loads;
    into.committed_branches += from.committed_branches;
    into.mispredicts += from.mispredicts;
    into.wrong_path_uops += from.wrong_path_uops;
    into.wrong_path_l1_accesses += from.wrong_path_l1_accesses;
    into.wrong_path_stores_injected += from.wrong_path_stores_injected;
    into.squash_episodes += from.squash_episodes;
    into.store_forwards += from.store_forwards;
    into.coalesced_stores += from.coalesced_stores;
    for i in 0..into.sb_stall_by_region.len() {
        into.sb_stall_by_region[i] += from.sb_stall_by_region[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PolicyKind, SimConfig};
    use crate::simulation::Simulation;
    use spb_trace::profile::AppProfile;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let app = AppProfile::by_name("gcc").unwrap();
        let r = Simulation::with_config(&app, &SimConfig::quick()).run_or_panic();
        assert!(r.cycles > 0);
        assert!(r.uops >= SimConfig::quick().measure_uops);
        assert!(r.ipc() > 0.05 && r.ipc() < 4.0, "ipc {}", r.ipc());
        assert!(r.energy.total_nj() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let app = AppProfile::by_name("x264").unwrap();
        let a = Simulation::with_config(&app, &SimConfig::quick()).run_or_panic();
        let b = Simulation::with_config(&app, &SimConfig::quick()).run_or_panic();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.uops, b.uops);
        assert_eq!(a.mem.loads, b.mem.loads);
    }

    #[test]
    fn sb_bound_app_shows_sb_stalls_at_small_sb() {
        let app = AppProfile::by_name("bwaves").unwrap();
        let cfg = SimConfig::quick().with_sb(14);
        let r = Simulation::with_config(&app, &cfg).run_or_panic();
        assert!(
            r.sb_stall_ratio() > 0.02,
            "bwaves at SB14 must be SB-bound, got {}",
            r.sb_stall_ratio()
        );
    }

    #[test]
    fn spb_beats_at_commit_on_sb_bound_app_with_small_sb() {
        let app = AppProfile::by_name("x264").unwrap();
        let base = Simulation::with_config(&app, &SimConfig::quick().with_sb(14)).run_or_panic();
        let spb = Simulation::with_config(&app, &SimConfig::quick())
            .sb_entries(14)
            .policy(PolicyKind::spb_default())
            .run_or_panic();
        assert!(
            spb.cycles < base.cycles,
            "SPB {} vs at-commit {}",
            spb.cycles,
            base.cycles
        );
    }

    #[test]
    fn parsec_app_runs_eight_cores() {
        let app = AppProfile::by_name("dedup").unwrap();
        let mut cfg = SimConfig::quick();
        cfg.warmup_uops = 3_000;
        cfg.measure_uops = 30_000;
        let r = Simulation::with_config(&app, &cfg).run_or_panic();
        // Eight cores, each committing at least the measure budget.
        assert!(r.uops >= 8 * cfg.measure_uops);
    }

    #[test]
    fn watchdog_trips_on_livelocked_memory_instead_of_hanging() {
        let app = AppProfile::by_name("gcc").unwrap();
        let mut cfg = SimConfig::quick();
        // Every DRAM fill takes ~10M extra cycles: no store or load can
        // complete, so no core ever commits — a livelock without the
        // watchdog.
        cfg.mem.fault = spb_mem::FaultConfig {
            dram_spike_rate: 1.0,
            dram_spike_cycles: 10_000_000,
            ..spb_mem::FaultConfig::none()
        };
        cfg.watchdog_cycles = 5_000;
        let err = Simulation::with_config(&app, &cfg).run().unwrap_err();
        assert_eq!(err.violation.kind, InvariantKind::ForwardProgress);
        let msg = err.to_string();
        assert!(msg.contains("gcc"), "names the app: {msg}");
        assert!(
            msg.contains("memory-system snapshot"),
            "carries the controller dump: {msg}"
        );
        assert!(msg.contains("mshr"), "shows MSHR occupancy: {msg}");
    }

    #[test]
    fn moderate_faults_complete_with_clean_checker() {
        let app = AppProfile::by_name("x264").unwrap();
        let mut cfg = SimConfig::quick();
        cfg.mem.fault = spb_mem::FaultConfig::uniform(0.01, 7);
        let r = Simulation::with_config(&app, &cfg)
            .run()
            .expect("faulty run stays coherent");
        assert!(
            r.mem.faults_dram_spiked > 0,
            "faults actually fired during the run"
        );
    }

    #[test]
    fn checker_and_injector_are_zero_perturbation_when_off() {
        let app = AppProfile::by_name("gcc").unwrap();
        let mut off = SimConfig::quick();
        off.mem.checker_interval = 0;
        off.watchdog_cycles = 0;
        let a = Simulation::with_config(&app, &SimConfig::quick()).run_or_panic();
        let b = Simulation::with_config(&app, &off).run_or_panic();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.uops, b.uops);
        assert_eq!(a.mem, b.mem);
    }

    #[test]
    fn ideal_policy_reports_1024_entries() {
        let app = AppProfile::by_name("gcc").unwrap();
        let r = Simulation::with_config(&app, &SimConfig::quick())
            .sb_entries(14)
            .policy(PolicyKind::IdealSb)
            .run_or_panic();
        assert_eq!(r.sb_entries, 1024);
    }

    /// Every skip-ahead kernel must be indistinguishable from the
    /// lock-step reference, bit for bit, on every counter a run
    /// reports (the broad cross-product lives in `spb-verify`).
    #[test]
    fn skip_ahead_kernels_match_tick_kernel_bit_for_bit() {
        use crate::config::KernelMode;
        let app = AppProfile::by_name("x264").unwrap();
        let cfg = SimConfig::quick().with_sb(14);
        let tick = Simulation::with_config(&app, &cfg.clone().with_kernel(KernelMode::Tick))
            .run_or_panic();
        for kernel in [KernelMode::Event, KernelMode::Wheel] {
            let fast =
                Simulation::with_config(&app, &cfg.clone().with_kernel(kernel)).run_or_panic();
            let label = kernel.label();
            assert_eq!(tick.cycles, fast.cycles, "{label}");
            assert_eq!(tick.uops, fast.uops, "{label}");
            assert_eq!(tick.topdown, fast.topdown, "{label}");
            assert_eq!(tick.cpu, fast.cpu, "{label}");
            assert_eq!(tick.mem, fast.mem, "{label}");
            assert_eq!(tick.per_core, fast.per_core, "{label}");
            assert_eq!(tick.sb_residency, fast.sb_residency, "{label}");
            assert_eq!(tick.burst_lengths, fast.burst_lengths, "{label}");
        }
    }

    /// As above, for the multi-core PARSEC path (cross-core
    /// invalidations and downgrades exercise the wheel kernel's
    /// retire-before-remote-kill discipline).
    #[test]
    fn kernels_match_bit_for_bit_on_eight_cores() {
        use crate::config::KernelMode;
        let app = AppProfile::by_name("dedup").unwrap();
        let mut cfg = SimConfig::quick();
        cfg.warmup_uops = 3_000;
        cfg.measure_uops = 30_000;
        let tick = Simulation::with_config(&app, &cfg.clone().with_kernel(KernelMode::Tick))
            .run_or_panic();
        let wheel = Simulation::with_config(&app, &cfg.clone().with_kernel(KernelMode::Wheel))
            .run_or_panic();
        assert_eq!(tick.cycles, wheel.cycles);
        assert_eq!(tick.uops, wheel.uops);
        assert_eq!(tick.topdown, wheel.topdown);
        assert_eq!(tick.cpu, wheel.cpu);
        assert_eq!(tick.mem, wheel.mem);
        assert_eq!(tick.per_core, wheel.per_core);
    }

    /// A squash model at rate 0 must be indistinguishable — bit for
    /// bit, on every counter — from a config that never mentions the
    /// squash model at all. This is the executable spec that makes the
    /// speculation model a pure extension.
    #[test]
    fn squash_rate_zero_is_bit_identical_to_no_squash_model() {
        use spb_trace::SquashConfig;
        let app = AppProfile::by_name("x264").unwrap();
        let base = SimConfig::quick().with_sb(14).with_policy(PolicyKind::spb_default());
        let zero = base
            .clone()
            .with_squash(SquashConfig::parse("rate=0,depth=8..32,storm=4,seed=9").unwrap());
        let a = Simulation::with_config(&app, &base).run_or_panic();
        let b = Simulation::with_config(&app, &zero).run_or_panic();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.uops, b.uops);
        assert_eq!(a.topdown, b.topdown);
        assert_eq!(a.cpu, b.cpu);
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.per_core, b.per_core);
        assert_eq!(a.sb_residency, b.sb_residency);
        assert_eq!(a.burst_lengths, b.burst_lengths);
        assert_eq!(a.cpu.squash_episodes, 0);
    }

    /// All three kernels must agree bit for bit with squash storms on —
    /// wrong-path injection, spec-tagged RFOs and squash attribution
    /// are all cycle-exact state machines, not approximations.
    #[test]
    fn kernels_match_bit_for_bit_with_squash_storms() {
        use crate::config::KernelMode;
        use spb_trace::SquashConfig;
        let app = AppProfile::by_name("x264").unwrap();
        let squash = SquashConfig::parse("rate=0.1,depth=8..32,storm=2,seed=5").unwrap();
        let cfg = SimConfig::quick()
            .with_sb(14)
            .with_policy(PolicyKind::AtExecute)
            .with_squash(squash);
        let tick = Simulation::with_config(&app, &cfg.clone().with_kernel(KernelMode::Tick))
            .run_or_panic();
        assert!(tick.cpu.squash_episodes > 0, "storms actually fired");
        for kernel in [KernelMode::Event, KernelMode::Wheel] {
            let fast =
                Simulation::with_config(&app, &cfg.clone().with_kernel(kernel)).run_or_panic();
            let label = kernel.label();
            assert_eq!(tick.cycles, fast.cycles, "{label}");
            assert_eq!(tick.uops, fast.uops, "{label}");
            assert_eq!(tick.cpu, fast.cpu, "{label}");
            assert_eq!(tick.mem, fast.mem, "{label}");
            assert_eq!(tick.per_core, fast.per_core, "{label}");
        }
    }

    /// Squash episodes land in the per-core replay recipe and the
    /// wasted-traffic counters line up across layers.
    #[test]
    fn squash_runs_report_episodes_and_wasted_traffic() {
        use spb_trace::SquashConfig;
        let app = AppProfile::by_name("x264").unwrap();
        let cfg = SimConfig::quick()
            .with_sb(14)
            .with_policy(PolicyKind::AtExecute)
            .with_squash(SquashConfig::parse("rate=0.1,depth=8..32,storm=2,seed=5").unwrap());
        let r = Simulation::with_config(&app, &cfg).run_or_panic();
        let per_core_sq: u64 = r.per_core.iter().map(|w| w.squashes).sum();
        assert_eq!(per_core_sq, r.cpu.squash_episodes);
        assert_eq!(r.mem.spec_squashes, r.cpu.squash_episodes);
        assert!(r.cpu.wrong_path_stores_injected > 0);
        assert!(r.mem.spec_wasted_rfos > 0, "at-execute wastes RFOs under storms");
        let squash = r.metrics.get("squash").expect("squash metrics registered");
        assert_eq!(squash.get_counter("wasted_rfos"), Some(r.mem.spec_wasted_rfos));
    }

    /// The watchdog must fire at the same cycle under every kernel —
    /// the skip-ahead loops clamp their jumps to the watchdog deadline.
    #[test]
    fn watchdog_fires_identically_under_all_kernels() {
        use crate::config::KernelMode;
        let app = AppProfile::by_name("gcc").unwrap();
        let mut cfg = SimConfig::quick();
        cfg.mem.fault = spb_mem::FaultConfig {
            dram_spike_rate: 1.0,
            dram_spike_cycles: 10_000_000,
            ..spb_mem::FaultConfig::none()
        };
        cfg.watchdog_cycles = 5_000;
        let tick = Simulation::with_config(&app, &cfg.clone().with_kernel(KernelMode::Tick))
            .run()
            .unwrap_err();
        assert_eq!(tick.violation.kind, InvariantKind::ForwardProgress);
        for kernel in [KernelMode::Event, KernelMode::Wheel] {
            let fast = Simulation::with_config(&app, &cfg.clone().with_kernel(kernel))
                .run()
                .unwrap_err();
            assert_eq!(fast.violation.kind, InvariantKind::ForwardProgress);
            assert_eq!(tick.violation.cycle, fast.violation.cycle, "{}", kernel.label());
        }
    }
}

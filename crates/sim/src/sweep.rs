//! Parallel, deterministic execution of experiment sweeps.
//!
//! Every figure in the paper is a sweep: a list of `(application,
//! configuration)` cells, each simulated independently. The cells share
//! no mutable state — [`crate::simulation::Simulation`] builds its own memory
//! system and cores from the immutable profile and config — so they can
//! fan out across a worker pool with no effect on the simulated
//! numbers. [`run_cells`] does exactly that on `std::thread::scope`:
//! workers claim cells through an atomic index and deposit results into
//! per-cell slots, so the returned vector is always in **input order**
//! and bit-identical to a serial run regardless of the job count or
//! completion order (only the wall-clock fields differ; see
//! [`crate::runner::RunResult::wall_ms`]).
//!
//! [`SweepOptions`] carries the knobs: `jobs` (how many worker threads;
//! the `SPB_JOBS` environment variable or `--jobs` on the CLI) and
//! `progress` (a stderr narrator line per completed cell). A sweep can
//! be summarized as a machine-readable [`SweepReport`] and written as
//! JSON under `results/`.
//!
//! # Examples
//!
//! ```
//! use spb_sim::config::SimConfig;
//! use spb_sim::sweep::{run_cells, SweepOptions};
//! use spb_trace::profile::AppProfile;
//!
//! let apps = [AppProfile::by_name("x264").unwrap()];
//! let cfg = SimConfig::quick();
//! let cells: Vec<_> = apps.iter().map(|a| (a, cfg.clone())).collect();
//! let runs = run_cells(&cells, &SweepOptions::with_jobs(2));
//! assert_eq!(runs[0].app, "x264");
//! ```

use crate::config::SimConfig;
use crate::runner::RunResult;
use crate::simulation::Simulation;
use spb_stats::hash::{fnv1a64, hex16, mix64};
use spb_stats::json::Json;
use spb_trace::profile::AppProfile;
use std::fmt;
use std::io::Write;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How a sweep executes: worker count and progress narration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Number of worker threads (at least 1; 1 = serial).
    pub jobs: usize,
    /// Print a `[k/total] app sb=N policy …s` line to stderr per cell.
    pub progress: bool,
}

impl SweepOptions {
    /// One worker, no narration — identical to the serial path.
    pub fn serial() -> Self {
        Self {
            jobs: 1,
            progress: false,
        }
    }

    /// A fixed worker count (clamped to at least 1), no narration.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            progress: false,
        }
    }

    /// Worker count from the `SPB_JOBS` environment variable, falling
    /// back to the machine's available parallelism. `SPB_JOBS=0` and
    /// unparsable values also fall back.
    pub fn from_env() -> Self {
        let jobs = std::env::var("SPB_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(default_jobs);
        Self {
            jobs,
            progress: false,
        }
    }

    /// Enables or disables the stderr progress narrator.
    #[must_use]
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The machine's available parallelism (1 if it cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// [`parallel_map`], but a panic in `f` fails only that item instead of
/// tearing down the whole pool.
///
/// Each invocation of `f` runs under `catch_unwind`, so one poisoned
/// item — a simulator bug, a pathological configuration — yields an
/// `Err(panic_message)` in its slot while every other item still
/// completes and returns `Ok`. Results stay in **input order**.
pub fn parallel_map_catch<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let run_one = |i: usize, item: &T| -> Result<R, String> {
        std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(panic_message)
    };
    if jobs <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_one(i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = run_one(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot is filled once all workers join")
        })
        .collect()
}

/// Applies `f` to every item on a pool of `jobs` scoped worker threads
/// and returns the results **in input order**.
///
/// Workers claim items through an atomic cursor, so scheduling is
/// dynamic (long and short items interleave freely) while the output
/// order stays deterministic. With `jobs <= 1` this degenerates to a
/// plain serial loop on the calling thread.
///
/// # Panics
///
/// Re-raises the first panic from `f` (in input order) — but only once
/// **all** items have been attempted, so a sibling item's work is never
/// lost to someone else's crash. Callers that need to keep the
/// surviving results use [`parallel_map_catch`].
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_catch(items, jobs, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("worker panicked: {msg}")))
        .collect()
}

/// One sweep cell that failed — by panic, deadline, injected chaos, or
/// a structured [`crate::runner::RunError`] — while its siblings
/// carried on.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Application name of the failed cell.
    pub app: String,
    /// Policy label of the failed cell.
    pub policy: String,
    /// Effective SB entries of the failed cell.
    pub sb: usize,
    /// The panic message, deadline notice, or invariant-violation
    /// diagnostic. The prefix encodes the failure class (see
    /// [`CellFailure::is_transient`]).
    pub reason: String,
    /// How many attempts this cell consumed before the supervisor gave
    /// up (1 when no retry was configured).
    pub attempts: u32,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} / {} / sb={}] {}",
            self.app, self.policy, self.sb, self.reason
        )?;
        if self.attempts > 1 {
            write!(f, " (after {} attempts)", self.attempts)?;
        }
        Ok(())
    }
}

impl CellFailure {
    /// Whether a retry could plausibly succeed.
    ///
    /// Worker panics, missed deadlines, and injected chaos are
    /// *transient*: they come from the harness (a poisoned worker, a
    /// slow host, a fault plan), not from the simulated machine, so the
    /// supervisor retries them with backoff. Invariant violations are
    /// *deterministic* — the same cell replays to the same violation —
    /// so they fail fast and keep their full diagnostic.
    pub fn is_transient(&self) -> bool {
        self.reason.starts_with("panic:")
            || self.reason.starts_with("deadline:")
            || self.reason.starts_with("chaos:")
    }

    /// Serializes one failure record (`{app, policy, sb, reason,
    /// attempts}`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("app", Json::str(&self.app)),
            ("policy", Json::str(&self.policy)),
            ("sb", Json::from(self.sb)),
            ("reason", Json::str(&self.reason)),
            ("attempts", Json::from(u64::from(self.attempts))),
        ])
    }

    /// Parses a failure record; `attempts` defaults to 1 for reports
    /// written before the retry supervisor existed.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        Ok(Self {
            app: field("app")?
                .as_str()
                .ok_or("app must be a string")?
                .to_string(),
            policy: field("policy")?
                .as_str()
                .ok_or("policy must be a string")?
                .to_string(),
            sb: field("sb")?.as_usize().ok_or("sb must be an integer")?,
            reason: field("reason")?
                .as_str()
                .ok_or("reason must be a string")?
                .to_string(),
            attempts: match v.get("attempts") {
                None => 1,
                Some(a) => u32::try_from(a.as_u64().ok_or("attempts must be an integer")?)
                    .map_err(|_| "attempts out of range")?,
            },
        })
    }
}

/// A stable fingerprint of one sweep cell, used to seed per-cell
/// backoff jitter and chaos draws, and as the service's cache-key
/// ingredient. Depends only on cell *content* (app, policy, SB, seed,
/// budgets), never on position in the sweep.
pub fn cell_fingerprint(app: &AppProfile, cfg: &SimConfig) -> u64 {
    fnv1a64(
        format!(
            "{}|{}|{}|{}|{}|{}",
            app.name(),
            cfg.policy.label(),
            cfg.effective_sb(),
            cfg.seed,
            cfg.warmup_uops,
            cfg.measure_uops,
        )
        .as_bytes(),
    )
}

/// Runs one cell to completion, converting every failure mode into a
/// structured [`CellFailure`]: panics are caught, invariant violations
/// carry their diagnostic, and — when `deadline_ms` is set — a cell
/// that overruns its deadline is abandoned on a detached worker thread
/// and reported as `deadline: …`.
pub fn run_cell(
    app: &AppProfile,
    cfg: &SimConfig,
    deadline_ms: Option<u64>,
) -> Result<RunResult, CellFailure> {
    let fail = |reason: String| CellFailure {
        app: app.name().to_string(),
        policy: cfg.policy.label(),
        sb: cfg.effective_sb(),
        reason,
        attempts: 1,
    };
    let outcome = match deadline_ms {
        None => std::panic::catch_unwind(AssertUnwindSafe(|| {
            Simulation::with_config(app, cfg).run()
        }))
        .map_err(panic_message),
        Some(ms) => {
            // The simulator has no cancellation points, so a deadline
            // needs an owned, detachable worker: if it overruns we
            // abandon it (it finishes in the background and its late
            // result is dropped with the channel).
            let (tx, rx) = std::sync::mpsc::sync_channel(1);
            let (app2, cfg2) = (app.clone(), cfg.clone());
            std::thread::Builder::new()
                .name("spb-cell".into())
                .spawn(move || {
                    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        Simulation::with_config(&app2, &cfg2).run()
                    }))
                    .map_err(panic_message);
                    let _ = tx.send(r);
                })
                .expect("spawn cell worker");
            match rx.recv_timeout(Duration::from_millis(ms)) {
                Ok(r) => r,
                Err(_) => {
                    return Err(fail(format!(
                        "deadline: cell exceeded {ms} ms; worker abandoned"
                    )))
                }
            }
        }
    };
    match outcome {
        Ok(Ok(run)) => Ok(run),
        Ok(Err(e)) => Err(CellFailure {
            app: e.app,
            policy: e.policy,
            sb: e.sb_entries,
            reason: e.violation.to_string(),
            attempts: 1,
        }),
        Err(msg) => Err(fail(format!("panic: {msg}"))),
    }
}

/// Deterministic, seeded fault injection for the *harness* (not the
/// simulated machine): makes attempt `a` of a cell "crash" with
/// probability `rate_e4`/10000, drawn reproducibly from the seed, the
/// cell fingerprint, and the attempt number.
///
/// Because the draw includes the attempt number, a chaos failure is
/// genuinely transient — the retry redraws — which is what the retry
/// supervisor's tests and the `serve_smoke` CI gate use to provoke the
/// failure modes a production sweep service must absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Failure probability in units of 1/10000 per attempt.
    pub rate_e4: u32,
    /// Chaos seed (independent of workload and fault seeds).
    pub seed: u64,
}

impl ChaosPlan {
    /// Whether this (cell, attempt) pair is sacrificed.
    pub fn injects(&self, cell_fingerprint: u64, attempt: u32) -> bool {
        let draw = mix64(mix64(self.seed ^ cell_fingerprint) ^ u64::from(attempt));
        draw % 10_000 < u64::from(self.rate_e4)
    }
}

/// Retry, deadline and chaos policy for a supervised sweep.
///
/// The default is exactly the old executor: one attempt, no deadline,
/// no chaos.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// Total attempts per cell (at least 1; 1 = no retry).
    pub max_attempts: u32,
    /// Base backoff before the first retry, in milliseconds. Retry `k`
    /// (attempt `k+1`) waits `base · 2^(k-1)` plus jitter in
    /// `[0, base)`.
    pub base_backoff_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// Per-attempt wall-clock deadline (None = unbounded).
    pub deadline_ms: Option<u64>,
    /// Optional harness-level fault injection (tests, smoke gates).
    pub chaos: Option<ChaosPlan>,
}

impl Default for Supervision {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_ms: 25,
            max_backoff_ms: 2_000,
            backoff_seed: 0x5bb0_ff1e,
            deadline_ms: None,
            chaos: None,
        }
    }
}

impl Supervision {
    /// `n` total attempts with the default backoff curve.
    pub fn with_retries(n: u32) -> Self {
        Self {
            max_attempts: n.max(1),
            ..Self::default()
        }
    }

    /// Backoff before `attempt` (2 = first retry) of the cell with this
    /// fingerprint: deterministic exponential growth plus seeded
    /// jitter, capped at [`Supervision::max_backoff_ms`]. Attempt 1
    /// never waits.
    pub fn backoff_ms(&self, cell_fingerprint: u64, attempt: u32) -> u64 {
        if attempt <= 1 {
            return 0;
        }
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << u64::from(attempt - 2).min(16));
        let jitter = mix64(self.backoff_seed ^ cell_fingerprint ^ u64::from(attempt))
            % self.base_backoff_ms.max(1);
        exp.saturating_add(jitter).min(self.max_backoff_ms)
    }
}

/// Runs every cell under full supervision: panics, deadline overruns
/// and injected chaos become transient [`CellFailure`]s that are
/// retried up to [`Supervision::max_attempts`] times with deterministic
/// seeded exponential backoff, while invariant violations fail fast.
/// Returns, **in input order**, each cell's final result and the number
/// of attempts it consumed; failures also carry the attempt count in
/// [`CellFailure::attempts`].
///
/// Retries re-run the *identical* deterministic simulation, so a cell
/// that succeeds on any attempt yields the same [`RunResult`] a
/// first-attempt success would have — supervision never perturbs
/// simulated numbers.
pub fn run_cells_supervised(
    cells: &[(&AppProfile, SimConfig)],
    opts: &SweepOptions,
    sup: &Supervision,
) -> Vec<(Result<RunResult, CellFailure>, u32)> {
    let total = cells.len();
    let keys: Vec<u64> = cells.iter().map(|(a, c)| cell_fingerprint(a, c)).collect();
    let mut results: Vec<Option<Result<RunResult, CellFailure>>> =
        (0..total).map(|_| None).collect();
    let mut attempts_of = vec![0u32; total];
    let mut pending: Vec<usize> = (0..total).collect();
    let max_attempts = sup.max_attempts.max(1);
    let settled = AtomicUsize::new(0);
    for attempt in 1..=max_attempts {
        if pending.is_empty() {
            break;
        }
        let round = parallel_map_catch(&pending, opts.jobs, |_, &i| {
            let (app, cfg) = &cells[i];
            if attempt > 1 {
                std::thread::sleep(Duration::from_millis(sup.backoff_ms(keys[i], attempt)));
            }
            let res = match sup.chaos {
                Some(chaos) if chaos.injects(keys[i], attempt) => Err(CellFailure {
                    app: app.name().to_string(),
                    policy: cfg.policy.label(),
                    sb: cfg.effective_sb(),
                    reason: format!("chaos: injected worker crash (attempt {attempt})"),
                    attempts: 1,
                }),
                _ => run_cell(app, cfg, sup.deadline_ms),
            };
            if opts.progress {
                match &res {
                    Ok(r) => {
                        let k = settled.fetch_add(1, Ordering::Relaxed) + 1;
                        eprintln!(
                            "[{k}/{total}] {} sb={} {} {:.1}s (attempt {attempt})",
                            r.app,
                            r.sb_entries,
                            r.policy,
                            r.wall_ms / 1000.0
                        );
                    }
                    Err(f) => {
                        let first = f.reason.lines().next().unwrap_or("");
                        eprintln!(
                            "{} sb={} {} attempt {attempt}/{max_attempts} FAILED: {first}",
                            f.app, f.sb, f.policy
                        );
                    }
                }
            }
            res
        });
        let mut next = Vec::new();
        for (&i, r) in pending.iter().zip(round) {
            attempts_of[i] = attempt;
            let res = r.unwrap_or_else(|msg| {
                let (app, cfg) = &cells[i];
                Err(CellFailure {
                    app: app.name().to_string(),
                    policy: cfg.policy.label(),
                    sb: cfg.effective_sb(),
                    reason: format!("panic: {msg}"),
                    attempts: 1,
                })
            });
            match res {
                Ok(run) => results[i] = Some(Ok(run)),
                Err(mut f) => {
                    f.attempts = attempt;
                    let retry = f.is_transient() && attempt < max_attempts;
                    results[i] = Some(Err(f));
                    if retry {
                        next.push(i);
                    }
                }
            }
        }
        pending = next;
    }
    results
        .into_iter()
        .zip(attempts_of)
        .map(|(r, a)| (r.expect("every cell attempted at least once"), a))
        .collect()
}

/// Runs every `(application, configuration)` cell, isolating failures:
/// a cell that panics or trips the coherence checker becomes an
/// `Err(CellFailure)` in its slot while every other cell still runs to
/// completion. Results are in input order.
///
/// This is what makes long sweeps crash-proof: hours of sibling results
/// survive one poisoned cell, and the failures ride along in the
/// [`SweepReport`] (see [`SweepReport::from_results`]) so a `--resume`
/// pass can re-run exactly the missing cells.
pub fn run_cells_checked(
    cells: &[(&AppProfile, SimConfig)],
    opts: &SweepOptions,
) -> Vec<Result<RunResult, CellFailure>> {
    let total = cells.len();
    let done = AtomicUsize::new(0);
    let raw = parallel_map_catch(cells, opts.jobs, |_, (app, cfg)| {
        let res = Simulation::with_config(app, cfg).run();
        if opts.progress {
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            match &res {
                Ok(r) => eprintln!(
                    "[{k}/{total}] {} sb={} {} {:.1}s",
                    r.app,
                    r.sb_entries,
                    r.policy,
                    r.wall_ms / 1000.0
                ),
                Err(e) => eprintln!(
                    "[{k}/{total}] {} sb={} {} FAILED: {}",
                    e.app, e.sb_entries, e.policy, e.violation.kind
                ),
            }
        }
        res
    });
    raw.into_iter()
        .zip(cells)
        .map(|(slot, (app, cfg))| match slot {
            Ok(Ok(run)) => Ok(run),
            Ok(Err(e)) => {
                let reason = e.violation.to_string();
                Err(CellFailure {
                    app: e.app,
                    policy: e.policy,
                    sb: e.sb_entries,
                    reason,
                    attempts: 1,
                })
            }
            Err(panic_msg) => Err(CellFailure {
                app: app.name().to_string(),
                policy: cfg.policy.label(),
                sb: cfg.effective_sb(),
                reason: format!("panic: {panic_msg}"),
                attempts: 1,
            }),
        })
        .collect()
}

/// Runs every `(application, configuration)` cell and returns the
/// results in input order.
///
/// This is the execution core behind [`crate::suite::SuiteResult::run`]
/// and the experiment grids: results are identical to running the cells
/// one by one in order (modulo the wall-clock fields). With
/// `opts.progress`, each completed cell prints a narrator line such as
/// `[12/69] x264 sb=14 spb-burst(48) 1.8s` to stderr; the counter
/// reflects completion order, not input order.
///
/// # Panics
///
/// Panics with the collected diagnostics if any cell failed — but only
/// after **every** cell has been attempted. Sweeps that must keep the
/// surviving results use [`run_cells_checked`].
pub fn run_cells(cells: &[(&AppProfile, SimConfig)], opts: &SweepOptions) -> Vec<RunResult> {
    let results = run_cells_checked(cells, opts);
    let mut runs = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(run) => runs.push(run),
            Err(f) => failures.push(f.to_string()),
        }
    }
    assert!(
        failures.is_empty(),
        "{} sweep cell(s) failed:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    runs
}

/// One row of a machine-readable sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Effective SB entries.
    pub sb: usize,
    /// Measured cycles.
    pub cycles: u64,
    /// Committed µops in the measured window.
    pub uops: u64,
    /// Committed µops per cycle.
    pub ipc: f64,
    /// Host wall-clock time of the run, in milliseconds.
    pub wall_ms: f64,
    /// Total energy of the measured window in nJ ([`spb-energy`]'s
    /// model). Only populated by [`SweepRecord::from_run_full`] (the
    /// tuner path); serialized only when present, so classic sweep
    /// reports stay byte-identical.
    pub energy_nj: Option<f64>,
    /// Coherence-traffic messages of the measured window
    /// ([`spb_mem::MemStats::coherence_traffic`]). Same only-when-present
    /// rule as `energy_nj`.
    pub coh_msgs: Option<u64>,
}

impl SweepRecord {
    /// Summarizes one run.
    pub fn from_run(r: &RunResult) -> Self {
        Self {
            app: r.app.clone(),
            policy: r.policy.clone(),
            sb: r.sb_entries,
            cycles: r.cycles,
            uops: r.uops,
            ipc: r.ipc(),
            wall_ms: r.wall_ms,
            energy_nj: None,
            coh_msgs: None,
        }
    }

    /// Summarizes one run *with* the multi-objective fields the tuner
    /// scores on (energy, coherence traffic).
    pub fn from_run_full(r: &RunResult) -> Self {
        Self {
            energy_nj: Some(r.energy.total_nj()),
            coh_msgs: Some(r.mem.coherence_traffic()),
            ..Self::from_run(r)
        }
    }

    /// Serializes one record (`{app, policy, sb, cycles, uops, ipc,
    /// wall_ms}`, plus `energy_nj`/`coh_msgs` when present).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("app", Json::str(&self.app)),
            ("policy", Json::str(&self.policy)),
            ("sb", Json::from(self.sb)),
            ("cycles", Json::from(self.cycles)),
            ("uops", Json::from(self.uops)),
            ("ipc", Json::from(self.ipc)),
            ("wall_ms", Json::from(self.wall_ms)),
        ];
        if let Some(e) = self.energy_nj {
            pairs.push(("energy_nj", Json::from(e)));
        }
        if let Some(c) = self.coh_msgs {
            pairs.push(("coh_msgs", Json::from(c)));
        }
        Json::obj(pairs)
    }

    /// Parses one record.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        Ok(Self {
            app: field("app")?
                .as_str()
                .ok_or("app must be a string")?
                .to_string(),
            policy: field("policy")?
                .as_str()
                .ok_or("policy must be a string")?
                .to_string(),
            sb: field("sb")?.as_usize().ok_or("sb must be an integer")?,
            cycles: field("cycles")?
                .as_u64()
                .ok_or("cycles must be an integer")?,
            uops: field("uops")?.as_u64().ok_or("uops must be an integer")?,
            ipc: field("ipc")?.as_f64().ok_or("ipc must be a number")?,
            wall_ms: field("wall_ms")?
                .as_f64()
                .ok_or("wall_ms must be a number")?,
            energy_nj: match v.get("energy_nj") {
                None => None,
                Some(e) => Some(e.as_f64().ok_or("energy_nj must be a number")?),
            },
            coh_msgs: match v.get("coh_msgs") {
                None => None,
                Some(c) => Some(c.as_u64().ok_or("coh_msgs must be an integer")?),
            },
        })
    }
}

/// A named collection of [`SweepRecord`]s, serializable as JSON.
///
/// The on-disk schema is one object:
///
/// ```json
/// {
///   "name": "sweep-x264",
///   "records": [
///     {"app": "x264", "policy": "spb-burst(48)", "sb": 14,
///      "cycles": 123456, "uops": 300000, "ipc": 2.43, "wall_ms": 1810.2}
///   ]
/// }
/// ```
///
/// A sweep with failed cells additionally carries a `"failed"` array of
/// `{app, policy, sb, reason}` objects; a report with sweep-level
/// metrics carries a `"metrics"` object (see
/// [`spb_obs::MetricsRegistry`]). A fully clean, metrics-less report
/// serializes without either key, byte-identical to the schema above.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Report name (becomes the file stem under `results/`).
    pub name: String,
    /// One record per run, in sweep order.
    pub records: Vec<SweepRecord>,
    /// Cells that panicked or tripped the invariant checker (empty for a
    /// clean sweep). Kept in the report so `--resume` knows what to
    /// re-run.
    pub failed: Vec<CellFailure>,
    /// Optional sweep-level metrics (executor counters, host timings),
    /// serialized as-is under `"metrics"`.
    pub metrics: Option<Json>,
}

impl SweepReport {
    /// Summarizes `runs` under `name`.
    pub fn new(name: impl Into<String>, runs: &[RunResult]) -> Self {
        Self {
            name: name.into(),
            records: runs.iter().map(SweepRecord::from_run).collect(),
            failed: Vec::new(),
            metrics: None,
        }
    }

    /// Summarizes the output of [`run_cells_checked`]: successes become
    /// records, failures ride along in `failed`.
    pub fn from_results(
        name: impl Into<String>,
        results: &[Result<RunResult, CellFailure>],
    ) -> Self {
        let mut report = Self {
            name: name.into(),
            records: Vec::new(),
            failed: Vec::new(),
            metrics: None,
        };
        for r in results {
            match r {
                Ok(run) => report.records.push(SweepRecord::from_run(run)),
                Err(f) => report.failed.push(f.clone()),
            }
        }
        report
    }

    /// Whether the report already holds a **successful** record for this
    /// cell (failed cells don't count — they are what `--resume`
    /// re-runs).
    pub fn has_record(&self, app: &str, policy: &str, sb: usize) -> bool {
        self.records
            .iter()
            .any(|r| r.app == app && r.policy == policy && r.sb == sb)
    }

    fn body_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::str(&self.name)),
            (
                "records",
                Json::arr(self.records.iter().map(SweepRecord::to_json)),
            ),
        ];
        if !self.failed.is_empty() {
            pairs.push((
                "failed",
                Json::arr(self.failed.iter().map(CellFailure::to_json)),
            ));
        }
        if let Some(m) = &self.metrics {
            pairs.push(("metrics", m.clone()));
        }
        Json::obj(pairs)
    }

    /// Renders the report as pretty-printed JSON (without a checksum —
    /// this is also the canonical text the checksum is computed over).
    pub fn to_json_string(&self) -> String {
        format!("{:#}\n", self.body_json())
    }

    /// The report's content checksum: `fnv1a64:` plus 16 hex digits of
    /// the digest of [`SweepReport::to_json_string`].
    pub fn content_checksum(&self) -> String {
        format!("fnv1a64:{}", hex16(fnv1a64(self.to_json_string().as_bytes())))
    }

    /// Renders the report with a trailing `"checksum"` field that
    /// [`SweepReport::parse`] validates. This is what
    /// [`SweepReport::save`] writes.
    pub fn to_json_string_checksummed(&self) -> String {
        let mut v = self.body_json();
        if let Json::Obj(pairs) = &mut v {
            pairs.push(("checksum".to_string(), Json::str(self.content_checksum())));
        }
        format!("{v:#}\n")
    }

    /// Parses a report back from its JSON text.
    ///
    /// If the text carries a `"checksum"` field (reports saved since
    /// the field was introduced do; older artifacts don't), the
    /// re-serialized content is digested and compared: a mismatch —
    /// flipped bytes, a truncated-then-patched file, a hand edit —
    /// fails with a clear error instead of silently returning corrupt
    /// numbers.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing report name")?
            .to_string();
        let records = v
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("missing records array")?
            .iter()
            .map(SweepRecord::from_json)
            .collect::<Result<_, _>>()?;
        let failed = match v.get("failed") {
            None => Vec::new(),
            Some(arr) => arr
                .as_arr()
                .ok_or("failed must be an array")?
                .iter()
                .map(CellFailure::from_json)
                .collect::<Result<_, _>>()?,
        };
        let report = Self {
            name,
            records,
            failed,
            metrics: v.get("metrics").cloned(),
        };
        if let Some(stated) = v.get("checksum") {
            let stated = stated.as_str().ok_or("checksum must be a string")?;
            let computed = report.content_checksum();
            if stated != computed {
                return Err(format!(
                    "checksum mismatch: file says {stated}, content hashes to {computed} \
                     — the report is corrupted (or was hand-edited)"
                ));
            }
        }
        Ok(report)
    }

    /// Writes the report as `<dir>/<name>.json` (creating `dir`) and
    /// returns the path written. See [`SweepReport::save_as`] for the
    /// crash-safety contract.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        self.save_as(&path)?;
        Ok(path)
    }

    /// Crash-safe write to an exact path: the checksummed text goes to
    /// a temporary file in the same directory, is flushed to disk, and
    /// is atomically renamed over `path` — a reader (or a restart after
    /// `kill -9`) sees either the complete old report or the complete
    /// new one, never a torn write, and the embedded checksum catches
    /// anything the filesystem mangles later.
    pub fn save_as(&self, path: &Path) -> std::io::Result<()> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let tmp = match dir {
            Some(d) => d.join(format!(
                ".{}.tmp{}",
                path.file_name().and_then(|n| n.to_str()).unwrap_or("report"),
                std::process::id()
            )),
            None => PathBuf::from(format!(".{}.tmp{}", path.display(), std::process::id())),
        };
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(self.to_json_string_checksummed().as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let out = parallel_map(&items, jobs, |i, &v| {
                assert_eq!(i as u64, v);
                v * v
            });
            assert_eq!(out, items.iter().map(|v| v * v).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, 4, |_, v| *v).is_empty());
        assert_eq!(parallel_map(&[5u32], 4, |_, v| *v + 1), vec![6]);
    }

    #[test]
    fn parallel_map_catch_isolates_a_panicking_item() {
        let items: Vec<u32> = (0..16).collect();
        for jobs in [1, 4] {
            let out = parallel_map_catch(&items, jobs, |_, &v| {
                if v == 7 {
                    panic!("cell {v} poisoned");
                }
                v * 2
            });
            for (i, r) in out.iter().enumerate() {
                if i == 7 {
                    assert!(r.as_ref().unwrap_err().contains("poisoned"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 2);
                }
            }
        }
    }

    #[test]
    fn parallel_map_repanics_only_after_all_items_ran() {
        let attempted = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 2, |_, &v| {
                attempted.fetch_add(1, Ordering::Relaxed);
                if v == 0 {
                    panic!("first cell dies");
                }
                v
            })
        }));
        assert!(res.is_err(), "the panic still propagates to the caller");
        assert_eq!(
            attempted.load(Ordering::Relaxed),
            8,
            "every sibling item was still attempted"
        );
    }

    #[test]
    fn run_cells_checked_survives_a_poisoned_cell() {
        let app = AppProfile::by_name("x264").unwrap();
        let mut quick = SimConfig::quick();
        quick.warmup_uops = 2_000;
        quick.measure_uops = 10_000;
        // A structurally invalid config: the run panics on the zero-entry
        // SB before simulating anything.
        let bad = quick.clone().with_sb(0);
        let cells = vec![(&app, quick.clone()), (&app, bad), (&app, quick.clone())];
        let out = run_cells_checked(&cells, &SweepOptions::with_jobs(2));

        assert!(out[0].is_ok() && out[2].is_ok(), "siblings survive");
        let f = out[1].as_ref().unwrap_err();
        assert_eq!(f.app, "x264");
        assert_eq!(f.sb, 0);
        assert!(f.reason.contains("panic:"), "reason: {}", f.reason);

        let report = SweepReport::from_results("partial", &out);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.failed.len(), 1);
        let policy = quick.policy.label();
        assert!(report.has_record("x264", &policy, quick.effective_sb()));
        assert!(
            !report.has_record("x264", &policy, 0),
            "failures don't count"
        );

        let text = report.to_json_string();
        assert!(text.contains("\"failed\""));
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
    }

    #[test]
    fn sweep_options_clamp_and_env_fallback() {
        assert_eq!(SweepOptions::with_jobs(0).jobs, 1);
        assert!(SweepOptions::from_env().jobs >= 1);
        assert!(!SweepOptions::serial().progress);
        assert!(SweepOptions::serial().progress(true).progress);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = SweepReport {
            name: "unit".into(),
            records: vec![
                SweepRecord {
                    app: "x264".into(),
                    policy: "spb-burst(48)".into(),
                    sb: 14,
                    cycles: 123_456,
                    uops: 300_000,
                    ipc: 300_000.0 / 123_456.0,
                    wall_ms: 1810.25,
                    energy_nj: Some(987.125),
                    coh_msgs: Some(4242),
                },
                SweepRecord {
                    app: "lbm".into(),
                    policy: "at-commit".into(),
                    sb: 56,
                    cycles: 1,
                    uops: 0,
                    ipc: 0.0,
                    wall_ms: 0.5,
                    energy_nj: None,
                    coh_msgs: None,
                },
            ],
            failed: vec![],
            metrics: None,
        };
        let text = report.to_json_string();
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
        assert!(
            !text.contains("failed"),
            "clean reports keep the pre-failure schema: {text}"
        );
        assert!(
            !text.contains("metrics"),
            "metrics-less reports keep the pre-metrics schema: {text}"
        );
    }

    #[test]
    fn report_round_trips_the_metrics_section() {
        let mut reg = spb_obs::MetricsRegistry::new();
        reg.component("sweep")
            .counter("cells", 230)
            .gauge("wall_ms", 1234.5);
        let report = SweepReport {
            name: "with-metrics".into(),
            records: vec![],
            failed: vec![],
            metrics: Some(reg.to_json()),
        };
        let text = report.to_json_string();
        let back = SweepReport::parse(&text).unwrap();
        assert_eq!(back, report);
        let cells = back
            .metrics
            .as_ref()
            .and_then(|m| m.get("sweep"))
            .and_then(|c| c.get("counters"))
            .and_then(|c| c.get("cells"))
            .and_then(Json::as_u64);
        assert_eq!(cells, Some(230));
    }

    #[test]
    fn report_parse_reports_schema_errors() {
        assert!(SweepReport::parse("{}").is_err());
        assert!(SweepReport::parse(r#"{"name":"x","records":[{}]}"#)
            .unwrap_err()
            .contains("app"));
        assert!(SweepReport::parse("not json").is_err());
    }

    /// A tiny quick-ish config that still simulates real work.
    fn tiny() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.warmup_uops = 2_000;
        cfg.measure_uops = 10_000;
        cfg
    }

    #[test]
    fn supervised_retry_converges_under_chaos() {
        let app = AppProfile::by_name("x264").unwrap();
        let cells: Vec<_> = [14usize, 28, 56]
            .iter()
            .map(|&sb| (&app, tiny().with_sb(sb)))
            .collect();
        let baseline = run_cells_checked(&cells, &SweepOptions::serial());
        // Chaos at 100%: with rate_e4 = 10_000 every attempt is
        // sacrificed, so even generous retries end in chaos failures…
        let all_fail = Supervision {
            max_attempts: 3,
            base_backoff_ms: 0,
            chaos: Some(ChaosPlan {
                rate_e4: 10_000,
                seed: 7,
            }),
            ..Supervision::default()
        };
        for (res, attempts) in run_cells_supervised(&cells, &SweepOptions::with_jobs(2), &all_fail)
        {
            let f = res.unwrap_err();
            assert!(f.reason.starts_with("chaos:"), "reason: {}", f.reason);
            assert!(f.is_transient());
            assert_eq!(attempts, 3, "all attempts consumed");
            assert_eq!(f.attempts, 3);
        }
        // …while a heavy-but-partial rate converges: every cell ends in
        // the bit-identical result of the unsupervised run. The chaos
        // draw is deterministic, so pick (by search) a seed that
        // sacrifices at least one cell's first attempt — guaranteeing
        // the retry path actually runs — and predict each cell's
        // attempt count straight from the plan.
        let fps: Vec<u64> = cells.iter().map(|(a, c)| cell_fingerprint(a, c)).collect();
        let plan = (0..)
            .map(|seed| ChaosPlan {
                rate_e4: 4_000,
                seed,
            })
            .find(|p| fps.iter().any(|&fp| p.injects(fp, 1)))
            .unwrap();
        let expected_attempts: Vec<u32> = fps
            .iter()
            .map(|&fp| (1..=10).find(|&a| !plan.injects(fp, a)).unwrap())
            .collect();
        let flaky = Supervision {
            max_attempts: 10,
            base_backoff_ms: 0,
            chaos: Some(plan),
            ..Supervision::default()
        };
        let out = run_cells_supervised(&cells, &SweepOptions::with_jobs(2), &flaky);
        for (i, ((res, attempts), base)) in out.into_iter().zip(&baseline).enumerate() {
            let run = res.expect("10 attempts at 40% chaos converge");
            let base = base.as_ref().unwrap();
            assert_eq!(run.cycles, base.cycles, "retries never perturb results");
            assert_eq!(run.uops, base.uops);
            assert_eq!(attempts, expected_attempts[i], "attempts follow the plan");
        }
        assert!(
            expected_attempts.iter().any(|&a| a > 1),
            "the searched seed guarantees at least one retry"
        );
    }

    #[test]
    fn supervised_invariant_violations_fail_fast() {
        let app = AppProfile::by_name("x264").unwrap();
        // A watchdog this tight trips deterministically long before the
        // budget completes — the same violation on every attempt.
        let mut cfg = tiny();
        cfg.watchdog_cycles = 1;
        let cells = vec![(&app, cfg)];
        let sup = Supervision {
            max_attempts: 5,
            base_backoff_ms: 0,
            ..Supervision::default()
        };
        let (res, attempts) = run_cells_supervised(&cells, &SweepOptions::serial(), &sup)
            .pop()
            .unwrap();
        let f = res.unwrap_err();
        assert!(!f.is_transient(), "watchdog violations are deterministic");
        assert_eq!(attempts, 1, "fail-fast: no retries burned");
        assert_eq!(f.attempts, 1);
    }

    #[test]
    fn supervised_panics_are_retried_but_still_fail_deterministic_bugs() {
        let app = AppProfile::by_name("x264").unwrap();
        // sb=0 panics in construction on every attempt: transient by
        // classification (panic), so retries are burned, but the final
        // failure records them all.
        let cells = vec![(&app, tiny().with_sb(0))];
        let sup = Supervision {
            max_attempts: 3,
            base_backoff_ms: 0,
            ..Supervision::default()
        };
        let (res, attempts) = run_cells_supervised(&cells, &SweepOptions::serial(), &sup)
            .pop()
            .unwrap();
        let f = res.unwrap_err();
        assert!(f.reason.starts_with("panic:"), "reason: {}", f.reason);
        assert_eq!(attempts, 3);
        assert_eq!(f.attempts, 3);
        assert!(f.to_string().contains("after 3 attempts"));
    }

    #[test]
    fn run_cell_deadline_abandons_slow_cells() {
        let app = AppProfile::by_name("x264").unwrap();
        // A full paper-budget cell takes well over a millisecond even on
        // a fast host, so a 1 ms deadline reliably fires; the abandoned
        // worker finishes harmlessly in the background.
        let slow = SimConfig::paper_default();
        let f = run_cell(&app, &slow, Some(1)).unwrap_err();
        assert!(f.reason.starts_with("deadline:"), "reason: {}", f.reason);
        assert!(f.is_transient());
        // A generous deadline changes nothing about the result.
        let unbounded = run_cell(&app, &tiny(), None).unwrap();
        let bounded = run_cell(&app, &tiny(), Some(60_000)).unwrap();
        assert_eq!(unbounded.cycles, bounded.cycles);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let sup = Supervision::with_retries(8);
        let fp = cell_fingerprint(
            &AppProfile::by_name("x264").unwrap(),
            &SimConfig::quick(),
        );
        assert_eq!(sup.backoff_ms(fp, 1), 0, "first attempt never waits");
        let b2 = sup.backoff_ms(fp, 2);
        let b3 = sup.backoff_ms(fp, 3);
        assert_eq!(b2, sup.backoff_ms(fp, 2), "deterministic");
        assert!(b2 >= sup.base_backoff_ms && b2 < 2 * sup.base_backoff_ms);
        assert!(b3 > b2, "exponential growth");
        for a in 2..40 {
            assert!(sup.backoff_ms(fp, a) <= sup.max_backoff_ms, "capped");
        }
        // Different cells jitter differently (with overwhelming
        // probability for any fixed pair).
        assert_ne!(sup.backoff_ms(fp, 2), sup.backoff_ms(fp ^ 1, 2));
    }

    #[test]
    fn cell_fingerprint_depends_on_content_not_position() {
        let a = AppProfile::by_name("x264").unwrap();
        let b = AppProfile::by_name("lbm").unwrap();
        let cfg = SimConfig::quick();
        assert_eq!(cell_fingerprint(&a, &cfg), cell_fingerprint(&a, &cfg));
        assert_ne!(cell_fingerprint(&a, &cfg), cell_fingerprint(&b, &cfg));
        assert_ne!(
            cell_fingerprint(&a, &cfg),
            cell_fingerprint(&a, &cfg.clone().with_sb(28))
        );
    }

    #[test]
    fn checksummed_report_round_trips_and_rejects_corruption() {
        let report = SweepReport {
            name: "chk".into(),
            records: vec![SweepRecord {
                app: "x264".into(),
                policy: "spb".into(),
                sb: 14,
                cycles: 123_456,
                uops: 300_000,
                ipc: 300_000.0 / 123_456.0,
                wall_ms: 10.5,
                energy_nj: None,
                coh_msgs: None,
            }],
            failed: vec![],
            metrics: None,
        };
        let text = report.to_json_string_checksummed();
        assert!(text.contains("\"checksum\": \"fnv1a64:"));
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
        // Flip one digit inside a number: still valid JSON, but the
        // checksum catches it.
        let corrupt = text.replacen("123456", "123457", 1);
        let err = SweepReport::parse(&corrupt).unwrap_err();
        assert!(err.contains("checksum mismatch"), "err: {err}");
        // A checksum that is not even a string errors clearly too.
        let bad_type = text.replace(&report.content_checksum(), "");
        assert!(SweepReport::parse(&bad_type)
            .unwrap_err()
            .contains("checksum mismatch"));
    }

    #[test]
    fn save_is_atomic_and_checksummed() {
        let dir = std::env::temp_dir().join(format!("spb-save-atomic-{}", std::process::id()));
        let report = SweepReport {
            name: "atomic".into(),
            records: vec![],
            failed: vec![],
            metrics: None,
        };
        let path = report.save(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"checksum\""), "saved reports carry one");
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
        // No tmp litter left behind.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(litter.is_empty(), "tmp files must be renamed away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_saves_and_reloads_from_disk() {
        let dir = std::env::temp_dir().join("spb-sweep-test");
        let report = SweepReport {
            name: "roundtrip".into(),
            records: vec![SweepRecord {
                app: "gcc".into(),
                policy: "none".into(),
                sb: 28,
                cycles: 10,
                uops: 20,
                ipc: 2.0,
                wall_ms: 3.5,
                energy_nj: None,
                coh_msgs: None,
            }],
            failed: vec![],
            metrics: None,
        };
        let path = report.save(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
        std::fs::remove_file(path).unwrap();
    }
}

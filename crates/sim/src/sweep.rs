//! Parallel, deterministic execution of experiment sweeps.
//!
//! Every figure in the paper is a sweep: a list of `(application,
//! configuration)` cells, each simulated independently. The cells share
//! no mutable state — [`crate::runner::run_app`] builds its own memory
//! system and cores from the immutable profile and config — so they can
//! fan out across a worker pool with no effect on the simulated
//! numbers. [`run_cells`] does exactly that on `std::thread::scope`:
//! workers claim cells through an atomic index and deposit results into
//! per-cell slots, so the returned vector is always in **input order**
//! and bit-identical to a serial run regardless of the job count or
//! completion order (only the wall-clock fields differ; see
//! [`crate::runner::RunResult::wall_ms`]).
//!
//! [`SweepOptions`] carries the knobs: `jobs` (how many worker threads;
//! the `SPB_JOBS` environment variable or `--jobs` on the CLI) and
//! `progress` (a stderr narrator line per completed cell). A sweep can
//! be summarized as a machine-readable [`SweepReport`] and written as
//! JSON under `results/`.
//!
//! # Examples
//!
//! ```
//! use spb_sim::config::SimConfig;
//! use spb_sim::sweep::{run_cells, SweepOptions};
//! use spb_trace::profile::AppProfile;
//!
//! let apps = [AppProfile::by_name("x264").unwrap()];
//! let cfg = SimConfig::quick();
//! let cells: Vec<_> = apps.iter().map(|a| (a, cfg.clone())).collect();
//! let runs = run_cells(&cells, &SweepOptions::with_jobs(2));
//! assert_eq!(runs[0].app, "x264");
//! ```

use crate::config::SimConfig;
use crate::runner::{run_app, RunResult};
use spb_stats::json::Json;
use spb_trace::profile::AppProfile;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a sweep executes: worker count and progress narration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Number of worker threads (at least 1; 1 = serial).
    pub jobs: usize,
    /// Print a `[k/total] app sb=N policy …s` line to stderr per cell.
    pub progress: bool,
}

impl SweepOptions {
    /// One worker, no narration — identical to the serial path.
    pub fn serial() -> Self {
        Self {
            jobs: 1,
            progress: false,
        }
    }

    /// A fixed worker count (clamped to at least 1), no narration.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            progress: false,
        }
    }

    /// Worker count from the `SPB_JOBS` environment variable, falling
    /// back to the machine's available parallelism. `SPB_JOBS=0` and
    /// unparsable values also fall back.
    pub fn from_env() -> Self {
        let jobs = std::env::var("SPB_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(default_jobs);
        Self {
            jobs,
            progress: false,
        }
    }

    /// Enables or disables the stderr progress narrator.
    #[must_use]
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The machine's available parallelism (1 if it cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of `jobs` scoped worker threads
/// and returns the results **in input order**.
///
/// Workers claim items through an atomic cursor, so scheduling is
/// dynamic (long and short items interleave freely) while the output
/// order stays deterministic. With `jobs <= 1` this degenerates to a
/// plain serial loop on the calling thread.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have finished.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot is filled once all workers join")
        })
        .collect()
}

/// Runs every `(application, configuration)` cell and returns the
/// results in input order.
///
/// This is the execution core behind [`crate::suite::SuiteResult::run`]
/// and the experiment grids: results are identical to running the cells
/// one by one in order (modulo the wall-clock fields). With
/// `opts.progress`, each completed cell prints a narrator line such as
/// `[12/69] x264 sb=14 spb-burst(48) 1.8s` to stderr; the counter
/// reflects completion order, not input order.
pub fn run_cells(cells: &[(&AppProfile, SimConfig)], opts: &SweepOptions) -> Vec<RunResult> {
    let total = cells.len();
    let done = AtomicUsize::new(0);
    parallel_map(cells, opts.jobs, |_, (app, cfg)| {
        let r = run_app(app, cfg);
        if opts.progress {
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!(
                "[{k}/{total}] {} sb={} {} {:.1}s",
                r.app,
                r.sb_entries,
                r.policy,
                r.wall_ms / 1000.0
            );
        }
        r
    })
}

/// One row of a machine-readable sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Effective SB entries.
    pub sb: usize,
    /// Measured cycles.
    pub cycles: u64,
    /// Committed µops in the measured window.
    pub uops: u64,
    /// Committed µops per cycle.
    pub ipc: f64,
    /// Host wall-clock time of the run, in milliseconds.
    pub wall_ms: f64,
}

impl SweepRecord {
    /// Summarizes one run.
    pub fn from_run(r: &RunResult) -> Self {
        Self {
            app: r.app.clone(),
            policy: r.policy.clone(),
            sb: r.sb_entries,
            cycles: r.cycles,
            uops: r.uops,
            ipc: r.ipc(),
            wall_ms: r.wall_ms,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("app", Json::str(&self.app)),
            ("policy", Json::str(&self.policy)),
            ("sb", Json::from(self.sb)),
            ("cycles", Json::from(self.cycles)),
            ("uops", Json::from(self.uops)),
            ("ipc", Json::from(self.ipc)),
            ("wall_ms", Json::from(self.wall_ms)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        Ok(Self {
            app: field("app")?
                .as_str()
                .ok_or("app must be a string")?
                .to_string(),
            policy: field("policy")?
                .as_str()
                .ok_or("policy must be a string")?
                .to_string(),
            sb: field("sb")?.as_usize().ok_or("sb must be an integer")?,
            cycles: field("cycles")?
                .as_u64()
                .ok_or("cycles must be an integer")?,
            uops: field("uops")?.as_u64().ok_or("uops must be an integer")?,
            ipc: field("ipc")?.as_f64().ok_or("ipc must be a number")?,
            wall_ms: field("wall_ms")?
                .as_f64()
                .ok_or("wall_ms must be a number")?,
        })
    }
}

/// A named collection of [`SweepRecord`]s, serializable as JSON.
///
/// The on-disk schema is one object:
///
/// ```json
/// {
///   "name": "sweep-x264",
///   "records": [
///     {"app": "x264", "policy": "spb-burst(48)", "sb": 14,
///      "cycles": 123456, "uops": 300000, "ipc": 2.43, "wall_ms": 1810.2}
///   ]
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Report name (becomes the file stem under `results/`).
    pub name: String,
    /// One record per run, in sweep order.
    pub records: Vec<SweepRecord>,
}

impl SweepReport {
    /// Summarizes `runs` under `name`.
    pub fn new(name: impl Into<String>, runs: &[RunResult]) -> Self {
        Self {
            name: name.into(),
            records: runs.iter().map(SweepRecord::from_run).collect(),
        }
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        let v = Json::obj([
            ("name", Json::str(&self.name)),
            (
                "records",
                Json::arr(self.records.iter().map(SweepRecord::to_json)),
            ),
        ]);
        format!("{v:#}\n")
    }

    /// Parses a report back from its JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing report name")?
            .to_string();
        let records = v
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("missing records array")?
            .iter()
            .map(SweepRecord::from_json)
            .collect::<Result<_, _>>()?;
        Ok(Self { name, records })
    }

    /// Writes the report as `<dir>/<name>.json` (creating `dir`) and
    /// returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json_string())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let out = parallel_map(&items, jobs, |i, &v| {
                assert_eq!(i as u64, v);
                v * v
            });
            assert_eq!(out, items.iter().map(|v| v * v).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, 4, |_, v| *v).is_empty());
        assert_eq!(parallel_map(&[5u32], 4, |_, v| *v + 1), vec![6]);
    }

    #[test]
    fn sweep_options_clamp_and_env_fallback() {
        assert_eq!(SweepOptions::with_jobs(0).jobs, 1);
        assert!(SweepOptions::from_env().jobs >= 1);
        assert!(!SweepOptions::serial().progress);
        assert!(SweepOptions::serial().progress(true).progress);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = SweepReport {
            name: "unit".into(),
            records: vec![
                SweepRecord {
                    app: "x264".into(),
                    policy: "spb-burst(48)".into(),
                    sb: 14,
                    cycles: 123_456,
                    uops: 300_000,
                    ipc: 300_000.0 / 123_456.0,
                    wall_ms: 1810.25,
                },
                SweepRecord {
                    app: "lbm".into(),
                    policy: "at-commit".into(),
                    sb: 56,
                    cycles: 1,
                    uops: 0,
                    ipc: 0.0,
                    wall_ms: 0.5,
                },
            ],
        };
        let text = report.to_json_string();
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
    }

    #[test]
    fn report_parse_reports_schema_errors() {
        assert!(SweepReport::parse("{}").is_err());
        assert!(SweepReport::parse(r#"{"name":"x","records":[{}]}"#)
            .unwrap_err()
            .contains("app"));
        assert!(SweepReport::parse("not json").is_err());
    }

    #[test]
    fn report_saves_and_reloads_from_disk() {
        let dir = std::env::temp_dir().join("spb-sweep-test");
        let report = SweepReport {
            name: "roundtrip".into(),
            records: vec![SweepRecord {
                app: "gcc".into(),
                policy: "none".into(),
                sb: 28,
                cycles: 10,
                uops: 20,
                ipc: 2.0,
                wall_ms: 3.5,
            }],
        };
        let path = report.save(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
        std::fs::remove_file(path).unwrap();
    }
}

//! Parallel, deterministic execution of experiment sweeps.
//!
//! Every figure in the paper is a sweep: a list of `(application,
//! configuration)` cells, each simulated independently. The cells share
//! no mutable state — [`crate::simulation::Simulation`] builds its own memory
//! system and cores from the immutable profile and config — so they can
//! fan out across a worker pool with no effect on the simulated
//! numbers. [`run_cells`] does exactly that on `std::thread::scope`:
//! workers claim cells through an atomic index and deposit results into
//! per-cell slots, so the returned vector is always in **input order**
//! and bit-identical to a serial run regardless of the job count or
//! completion order (only the wall-clock fields differ; see
//! [`crate::runner::RunResult::wall_ms`]).
//!
//! [`SweepOptions`] carries the knobs: `jobs` (how many worker threads;
//! the `SPB_JOBS` environment variable or `--jobs` on the CLI) and
//! `progress` (a stderr narrator line per completed cell). A sweep can
//! be summarized as a machine-readable [`SweepReport`] and written as
//! JSON under `results/`.
//!
//! # Examples
//!
//! ```
//! use spb_sim::config::SimConfig;
//! use spb_sim::sweep::{run_cells, SweepOptions};
//! use spb_trace::profile::AppProfile;
//!
//! let apps = [AppProfile::by_name("x264").unwrap()];
//! let cfg = SimConfig::quick();
//! let cells: Vec<_> = apps.iter().map(|a| (a, cfg.clone())).collect();
//! let runs = run_cells(&cells, &SweepOptions::with_jobs(2));
//! assert_eq!(runs[0].app, "x264");
//! ```

use crate::config::SimConfig;
use crate::runner::RunResult;
use crate::simulation::Simulation;
use spb_stats::json::Json;
use spb_trace::profile::AppProfile;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a sweep executes: worker count and progress narration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Number of worker threads (at least 1; 1 = serial).
    pub jobs: usize,
    /// Print a `[k/total] app sb=N policy …s` line to stderr per cell.
    pub progress: bool,
}

impl SweepOptions {
    /// One worker, no narration — identical to the serial path.
    pub fn serial() -> Self {
        Self {
            jobs: 1,
            progress: false,
        }
    }

    /// A fixed worker count (clamped to at least 1), no narration.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            progress: false,
        }
    }

    /// Worker count from the `SPB_JOBS` environment variable, falling
    /// back to the machine's available parallelism. `SPB_JOBS=0` and
    /// unparsable values also fall back.
    pub fn from_env() -> Self {
        let jobs = std::env::var("SPB_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(default_jobs);
        Self {
            jobs,
            progress: false,
        }
    }

    /// Enables or disables the stderr progress narrator.
    #[must_use]
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The machine's available parallelism (1 if it cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// [`parallel_map`], but a panic in `f` fails only that item instead of
/// tearing down the whole pool.
///
/// Each invocation of `f` runs under `catch_unwind`, so one poisoned
/// item — a simulator bug, a pathological configuration — yields an
/// `Err(panic_message)` in its slot while every other item still
/// completes and returns `Ok`. Results stay in **input order**.
pub fn parallel_map_catch<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let run_one = |i: usize, item: &T| -> Result<R, String> {
        std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(panic_message)
    };
    if jobs <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_one(i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = run_one(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot is filled once all workers join")
        })
        .collect()
}

/// Applies `f` to every item on a pool of `jobs` scoped worker threads
/// and returns the results **in input order**.
///
/// Workers claim items through an atomic cursor, so scheduling is
/// dynamic (long and short items interleave freely) while the output
/// order stays deterministic. With `jobs <= 1` this degenerates to a
/// plain serial loop on the calling thread.
///
/// # Panics
///
/// Re-raises the first panic from `f` (in input order) — but only once
/// **all** items have been attempted, so a sibling item's work is never
/// lost to someone else's crash. Callers that need to keep the
/// surviving results use [`parallel_map_catch`].
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_catch(items, jobs, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("worker panicked: {msg}")))
        .collect()
}

/// One sweep cell that failed — by panic or by a structured
/// [`crate::runner::RunError`] — while its siblings carried on.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Application name of the failed cell.
    pub app: String,
    /// Policy label of the failed cell.
    pub policy: String,
    /// Effective SB entries of the failed cell.
    pub sb: usize,
    /// The panic message or invariant-violation diagnostic.
    pub reason: String,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} / {} / sb={}] {}",
            self.app, self.policy, self.sb, self.reason
        )
    }
}

impl CellFailure {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", Json::str(&self.app)),
            ("policy", Json::str(&self.policy)),
            ("sb", Json::from(self.sb)),
            ("reason", Json::str(&self.reason)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        Ok(Self {
            app: field("app")?
                .as_str()
                .ok_or("app must be a string")?
                .to_string(),
            policy: field("policy")?
                .as_str()
                .ok_or("policy must be a string")?
                .to_string(),
            sb: field("sb")?.as_usize().ok_or("sb must be an integer")?,
            reason: field("reason")?
                .as_str()
                .ok_or("reason must be a string")?
                .to_string(),
        })
    }
}

/// Runs every `(application, configuration)` cell, isolating failures:
/// a cell that panics or trips the coherence checker becomes an
/// `Err(CellFailure)` in its slot while every other cell still runs to
/// completion. Results are in input order.
///
/// This is what makes long sweeps crash-proof: hours of sibling results
/// survive one poisoned cell, and the failures ride along in the
/// [`SweepReport`] (see [`SweepReport::from_results`]) so a `--resume`
/// pass can re-run exactly the missing cells.
pub fn run_cells_checked(
    cells: &[(&AppProfile, SimConfig)],
    opts: &SweepOptions,
) -> Vec<Result<RunResult, CellFailure>> {
    let total = cells.len();
    let done = AtomicUsize::new(0);
    let raw = parallel_map_catch(cells, opts.jobs, |_, (app, cfg)| {
        let res = Simulation::with_config(app, cfg).run();
        if opts.progress {
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            match &res {
                Ok(r) => eprintln!(
                    "[{k}/{total}] {} sb={} {} {:.1}s",
                    r.app,
                    r.sb_entries,
                    r.policy,
                    r.wall_ms / 1000.0
                ),
                Err(e) => eprintln!(
                    "[{k}/{total}] {} sb={} {} FAILED: {}",
                    e.app, e.sb_entries, e.policy, e.violation.kind
                ),
            }
        }
        res
    });
    raw.into_iter()
        .zip(cells)
        .map(|(slot, (app, cfg))| match slot {
            Ok(Ok(run)) => Ok(run),
            Ok(Err(e)) => {
                let reason = e.violation.to_string();
                Err(CellFailure {
                    app: e.app,
                    policy: e.policy,
                    sb: e.sb_entries,
                    reason,
                })
            }
            Err(panic_msg) => Err(CellFailure {
                app: app.name().to_string(),
                policy: cfg.policy.label(),
                sb: cfg.effective_sb(),
                reason: format!("panic: {panic_msg}"),
            }),
        })
        .collect()
}

/// Runs every `(application, configuration)` cell and returns the
/// results in input order.
///
/// This is the execution core behind [`crate::suite::SuiteResult::run`]
/// and the experiment grids: results are identical to running the cells
/// one by one in order (modulo the wall-clock fields). With
/// `opts.progress`, each completed cell prints a narrator line such as
/// `[12/69] x264 sb=14 spb-burst(48) 1.8s` to stderr; the counter
/// reflects completion order, not input order.
///
/// # Panics
///
/// Panics with the collected diagnostics if any cell failed — but only
/// after **every** cell has been attempted. Sweeps that must keep the
/// surviving results use [`run_cells_checked`].
pub fn run_cells(cells: &[(&AppProfile, SimConfig)], opts: &SweepOptions) -> Vec<RunResult> {
    let results = run_cells_checked(cells, opts);
    let mut runs = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(run) => runs.push(run),
            Err(f) => failures.push(f.to_string()),
        }
    }
    assert!(
        failures.is_empty(),
        "{} sweep cell(s) failed:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    runs
}

/// One row of a machine-readable sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Effective SB entries.
    pub sb: usize,
    /// Measured cycles.
    pub cycles: u64,
    /// Committed µops in the measured window.
    pub uops: u64,
    /// Committed µops per cycle.
    pub ipc: f64,
    /// Host wall-clock time of the run, in milliseconds.
    pub wall_ms: f64,
}

impl SweepRecord {
    /// Summarizes one run.
    pub fn from_run(r: &RunResult) -> Self {
        Self {
            app: r.app.clone(),
            policy: r.policy.clone(),
            sb: r.sb_entries,
            cycles: r.cycles,
            uops: r.uops,
            ipc: r.ipc(),
            wall_ms: r.wall_ms,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("app", Json::str(&self.app)),
            ("policy", Json::str(&self.policy)),
            ("sb", Json::from(self.sb)),
            ("cycles", Json::from(self.cycles)),
            ("uops", Json::from(self.uops)),
            ("ipc", Json::from(self.ipc)),
            ("wall_ms", Json::from(self.wall_ms)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        Ok(Self {
            app: field("app")?
                .as_str()
                .ok_or("app must be a string")?
                .to_string(),
            policy: field("policy")?
                .as_str()
                .ok_or("policy must be a string")?
                .to_string(),
            sb: field("sb")?.as_usize().ok_or("sb must be an integer")?,
            cycles: field("cycles")?
                .as_u64()
                .ok_or("cycles must be an integer")?,
            uops: field("uops")?.as_u64().ok_or("uops must be an integer")?,
            ipc: field("ipc")?.as_f64().ok_or("ipc must be a number")?,
            wall_ms: field("wall_ms")?
                .as_f64()
                .ok_or("wall_ms must be a number")?,
        })
    }
}

/// A named collection of [`SweepRecord`]s, serializable as JSON.
///
/// The on-disk schema is one object:
///
/// ```json
/// {
///   "name": "sweep-x264",
///   "records": [
///     {"app": "x264", "policy": "spb-burst(48)", "sb": 14,
///      "cycles": 123456, "uops": 300000, "ipc": 2.43, "wall_ms": 1810.2}
///   ]
/// }
/// ```
///
/// A sweep with failed cells additionally carries a `"failed"` array of
/// `{app, policy, sb, reason}` objects; a report with sweep-level
/// metrics carries a `"metrics"` object (see
/// [`spb_obs::MetricsRegistry`]). A fully clean, metrics-less report
/// serializes without either key, byte-identical to the schema above.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Report name (becomes the file stem under `results/`).
    pub name: String,
    /// One record per run, in sweep order.
    pub records: Vec<SweepRecord>,
    /// Cells that panicked or tripped the invariant checker (empty for a
    /// clean sweep). Kept in the report so `--resume` knows what to
    /// re-run.
    pub failed: Vec<CellFailure>,
    /// Optional sweep-level metrics (executor counters, host timings),
    /// serialized as-is under `"metrics"`.
    pub metrics: Option<Json>,
}

impl SweepReport {
    /// Summarizes `runs` under `name`.
    pub fn new(name: impl Into<String>, runs: &[RunResult]) -> Self {
        Self {
            name: name.into(),
            records: runs.iter().map(SweepRecord::from_run).collect(),
            failed: Vec::new(),
            metrics: None,
        }
    }

    /// Summarizes the output of [`run_cells_checked`]: successes become
    /// records, failures ride along in `failed`.
    pub fn from_results(
        name: impl Into<String>,
        results: &[Result<RunResult, CellFailure>],
    ) -> Self {
        let mut report = Self {
            name: name.into(),
            records: Vec::new(),
            failed: Vec::new(),
            metrics: None,
        };
        for r in results {
            match r {
                Ok(run) => report.records.push(SweepRecord::from_run(run)),
                Err(f) => report.failed.push(f.clone()),
            }
        }
        report
    }

    /// Whether the report already holds a **successful** record for this
    /// cell (failed cells don't count — they are what `--resume`
    /// re-runs).
    pub fn has_record(&self, app: &str, policy: &str, sb: usize) -> bool {
        self.records
            .iter()
            .any(|r| r.app == app && r.policy == policy && r.sb == sb)
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        let mut pairs = vec![
            ("name", Json::str(&self.name)),
            (
                "records",
                Json::arr(self.records.iter().map(SweepRecord::to_json)),
            ),
        ];
        if !self.failed.is_empty() {
            pairs.push((
                "failed",
                Json::arr(self.failed.iter().map(CellFailure::to_json)),
            ));
        }
        if let Some(m) = &self.metrics {
            pairs.push(("metrics", m.clone()));
        }
        let v = Json::obj(pairs);
        format!("{v:#}\n")
    }

    /// Parses a report back from its JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing report name")?
            .to_string();
        let records = v
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("missing records array")?
            .iter()
            .map(SweepRecord::from_json)
            .collect::<Result<_, _>>()?;
        let failed = match v.get("failed") {
            None => Vec::new(),
            Some(arr) => arr
                .as_arr()
                .ok_or("failed must be an array")?
                .iter()
                .map(CellFailure::from_json)
                .collect::<Result<_, _>>()?,
        };
        Ok(Self {
            name,
            records,
            failed,
            metrics: v.get("metrics").cloned(),
        })
    }

    /// Writes the report as `<dir>/<name>.json` (creating `dir`) and
    /// returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json_string())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let out = parallel_map(&items, jobs, |i, &v| {
                assert_eq!(i as u64, v);
                v * v
            });
            assert_eq!(out, items.iter().map(|v| v * v).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, 4, |_, v| *v).is_empty());
        assert_eq!(parallel_map(&[5u32], 4, |_, v| *v + 1), vec![6]);
    }

    #[test]
    fn parallel_map_catch_isolates_a_panicking_item() {
        let items: Vec<u32> = (0..16).collect();
        for jobs in [1, 4] {
            let out = parallel_map_catch(&items, jobs, |_, &v| {
                if v == 7 {
                    panic!("cell {v} poisoned");
                }
                v * 2
            });
            for (i, r) in out.iter().enumerate() {
                if i == 7 {
                    assert!(r.as_ref().unwrap_err().contains("poisoned"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 2);
                }
            }
        }
    }

    #[test]
    fn parallel_map_repanics_only_after_all_items_ran() {
        let attempted = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 2, |_, &v| {
                attempted.fetch_add(1, Ordering::Relaxed);
                if v == 0 {
                    panic!("first cell dies");
                }
                v
            })
        }));
        assert!(res.is_err(), "the panic still propagates to the caller");
        assert_eq!(
            attempted.load(Ordering::Relaxed),
            8,
            "every sibling item was still attempted"
        );
    }

    #[test]
    fn run_cells_checked_survives_a_poisoned_cell() {
        let app = AppProfile::by_name("x264").unwrap();
        let mut quick = SimConfig::quick();
        quick.warmup_uops = 2_000;
        quick.measure_uops = 10_000;
        // A structurally invalid config: the run panics on the zero-entry
        // SB before simulating anything.
        let bad = quick.clone().with_sb(0);
        let cells = vec![(&app, quick.clone()), (&app, bad), (&app, quick.clone())];
        let out = run_cells_checked(&cells, &SweepOptions::with_jobs(2));

        assert!(out[0].is_ok() && out[2].is_ok(), "siblings survive");
        let f = out[1].as_ref().unwrap_err();
        assert_eq!(f.app, "x264");
        assert_eq!(f.sb, 0);
        assert!(f.reason.contains("panic:"), "reason: {}", f.reason);

        let report = SweepReport::from_results("partial", &out);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.failed.len(), 1);
        let policy = quick.policy.label();
        assert!(report.has_record("x264", &policy, quick.effective_sb()));
        assert!(
            !report.has_record("x264", &policy, 0),
            "failures don't count"
        );

        let text = report.to_json_string();
        assert!(text.contains("\"failed\""));
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
    }

    #[test]
    fn sweep_options_clamp_and_env_fallback() {
        assert_eq!(SweepOptions::with_jobs(0).jobs, 1);
        assert!(SweepOptions::from_env().jobs >= 1);
        assert!(!SweepOptions::serial().progress);
        assert!(SweepOptions::serial().progress(true).progress);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = SweepReport {
            name: "unit".into(),
            records: vec![
                SweepRecord {
                    app: "x264".into(),
                    policy: "spb-burst(48)".into(),
                    sb: 14,
                    cycles: 123_456,
                    uops: 300_000,
                    ipc: 300_000.0 / 123_456.0,
                    wall_ms: 1810.25,
                },
                SweepRecord {
                    app: "lbm".into(),
                    policy: "at-commit".into(),
                    sb: 56,
                    cycles: 1,
                    uops: 0,
                    ipc: 0.0,
                    wall_ms: 0.5,
                },
            ],
            failed: vec![],
            metrics: None,
        };
        let text = report.to_json_string();
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
        assert!(
            !text.contains("failed"),
            "clean reports keep the pre-failure schema: {text}"
        );
        assert!(
            !text.contains("metrics"),
            "metrics-less reports keep the pre-metrics schema: {text}"
        );
    }

    #[test]
    fn report_round_trips_the_metrics_section() {
        let mut reg = spb_obs::MetricsRegistry::new();
        reg.component("sweep")
            .counter("cells", 230)
            .gauge("wall_ms", 1234.5);
        let report = SweepReport {
            name: "with-metrics".into(),
            records: vec![],
            failed: vec![],
            metrics: Some(reg.to_json()),
        };
        let text = report.to_json_string();
        let back = SweepReport::parse(&text).unwrap();
        assert_eq!(back, report);
        let cells = back
            .metrics
            .as_ref()
            .and_then(|m| m.get("sweep"))
            .and_then(|c| c.get("counters"))
            .and_then(|c| c.get("cells"))
            .and_then(Json::as_u64);
        assert_eq!(cells, Some(230));
    }

    #[test]
    fn report_parse_reports_schema_errors() {
        assert!(SweepReport::parse("{}").is_err());
        assert!(SweepReport::parse(r#"{"name":"x","records":[{}]}"#)
            .unwrap_err()
            .contains("app"));
        assert!(SweepReport::parse("not json").is_err());
    }

    #[test]
    fn report_saves_and_reloads_from_disk() {
        let dir = std::env::temp_dir().join("spb-sweep-test");
        let report = SweepReport {
            name: "roundtrip".into(),
            records: vec![SweepRecord {
                app: "gcc".into(),
                policy: "none".into(),
                sb: 28,
                cycles: 10,
                uops: 20,
                ipc: 2.0,
                wall_ms: 3.5,
            }],
            failed: vec![],
            metrics: None,
        };
        let path = report.save(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(SweepReport::parse(&text).unwrap(), report);
        std::fs::remove_file(path).unwrap();
    }
}

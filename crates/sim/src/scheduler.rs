//! Hierarchical timing-wheel wakeup scheduler for the `wheel` kernel.
//!
//! [`TimingWheel`] is the run loop's registry of pending component
//! wakeups: each wake source (one per core, one for the memory system,
//! one for the watchdog deadline) holds **at most one** registration at
//! a time, identified by a small dense id. Near-future wakeups (within
//! [`NEAR_SLOTS`] cycles of the wheel origin) live in a 256-slot
//! bitmask wheel; far-future ones overflow into a fixed-capacity
//! array-backed min-heap. Everything is allocated once at construction
//! — registering, cancelling and popping never allocate.
//!
//! The soundness contract mirrors DESIGN.md §12: a wakeup may fire
//! *early* (the woken component simply finds no work and re-registers),
//! but must never fire *late* — a component registering `t` promises it
//! has no observable work strictly before `t`. The wheel itself
//! preserves registered times exactly (no rounding): slots hold a
//! bitmask of due sources and each source's exact deadline is kept in
//! `wake_at`, so [`TimingWheel::next_wake`] returns precisely the
//! earliest registered cycle.

/// Slots in the near wheel: wakeups within this many cycles of the
/// wheel origin are O(1) bitmask operations; later ones go to the
/// overflow heap and migrate in as the origin advances.
pub const NEAR_SLOTS: u64 = 256;

/// Sentinel for "no wakeup registered".
const NONE: u64 = u64::MAX;

/// A fixed-capacity wakeup scheduler. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct TimingWheel {
    /// Exact registered deadline per source id (`NONE` = unregistered).
    wake_at: Vec<u64>,
    /// Wheel origin: all registrations are ≥ `base`.
    base: u64,
    /// Per-slot bitmask of source ids due at `base + slot_distance`.
    /// Indexed by `wake_at[id] % NEAR_SLOTS` (slots never hold entries
    /// more than one lap apart because far entries sit in the heap).
    slots: [u32; NEAR_SLOTS as usize],
    /// Occupancy summary: bit `s` of word `s / 64` set iff `slots[s]`
    /// is non-empty. Lets `next_wake` find the earliest occupied slot
    /// with a handful of word scans instead of 256 loads.
    summary: [u64; (NEAR_SLOTS / 64) as usize],
    /// Overflow min-heap of `(deadline, id)` for wakeups ≥ `base +
    /// NEAR_SLOTS`. Capacity = number of ids; never grows.
    far: Vec<(u64, u8)>,
}

impl TimingWheel {
    /// A wheel for `ids` wake sources (ids `0..ids`), with its origin
    /// at cycle `base`. Supports at most 32 sources (slot bitmasks are
    /// `u32`; 16 cores + memory + watchdog fits comfortably).
    ///
    /// # Panics
    ///
    /// Panics if `ids > 32`.
    pub fn new(ids: usize, base: u64) -> Self {
        assert!(ids <= 32, "timing wheel supports at most 32 wake sources");
        Self {
            wake_at: vec![NONE; ids],
            base,
            slots: [0; NEAR_SLOTS as usize],
            summary: [0; (NEAR_SLOTS / 64) as usize],
            far: Vec::with_capacity(ids),
        }
    }

    /// The registered deadline of `id`, if any.
    pub fn registered(&self, id: usize) -> Option<u64> {
        match self.wake_at[id] {
            NONE => None,
            t => Some(t),
        }
    }

    fn slot_of(t: u64) -> usize {
        (t % NEAR_SLOTS) as usize
    }

    fn set_slot(&mut self, t: u64, id: usize) {
        let s = Self::slot_of(t);
        self.slots[s] |= 1 << id;
        self.summary[s / 64] |= 1 << (s % 64);
    }

    fn clear_slot(&mut self, t: u64, id: usize) {
        let s = Self::slot_of(t);
        self.slots[s] &= !(1 << id);
        if self.slots[s] == 0 {
            self.summary[s / 64] &= !(1 << (s % 64));
        }
    }

    /// Registers (or re-registers) source `id` to wake at `at`,
    /// replacing any previous registration. `at` is clamped up to the
    /// wheel origin — firing early is sound, firing late is not, and a
    /// request in the past means "wake immediately".
    pub fn register(&mut self, id: usize, at: u64) {
        self.cancel(id);
        let at = at.max(self.base);
        self.wake_at[id] = at;
        if at - self.base < NEAR_SLOTS {
            self.set_slot(at, id);
        } else {
            heap_push(&mut self.far, (at, id as u8));
        }
    }

    /// Cancels any pending wakeup for `id`. O(1) for near entries,
    /// O(log n) for far ones (n ≤ the id count).
    pub fn cancel(&mut self, id: usize) {
        let t = self.wake_at[id];
        if t == NONE {
            return;
        }
        self.wake_at[id] = NONE;
        if t - self.base < NEAR_SLOTS {
            self.clear_slot(t, id);
        } else {
            heap_remove(&mut self.far, id as u8);
        }
    }

    /// Advances the wheel origin to `now`, consuming every registration
    /// with deadline ≤ `now` (the woken sources re-register when they
    /// next quiesce) and migrating far entries that came within the
    /// near window.
    pub fn advance_to(&mut self, now: u64) {
        debug_assert!(now >= self.base, "the wheel origin never rewinds");
        // Consume due near entries: every slot in [base, now] (one full
        // lap at most — beyond that the slots repeat). The per-id
        // deadline guard below keeps a not-yet-due entry sharing a
        // visited slot alive.
        let lap = (now - self.base).min(NEAR_SLOTS - 1);
        for d in 0..=lap {
            let s = Self::slot_of(self.base + d);
            let mut bits = self.slots[s];
            while bits != 0 {
                let id = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.wake_at[id] <= now {
                    self.slots[s] &= !(1 << id);
                    self.wake_at[id] = NONE;
                }
            }
            if self.slots[s] == 0 {
                self.summary[s / 64] &= !(1 << (s % 64));
            }
        }
        self.base = now;
        // Consume due far entries and migrate near-window ones.
        while let Some(&(t, id)) = self.far.first() {
            if t <= now {
                heap_pop(&mut self.far);
                self.wake_at[id as usize] = NONE;
            } else if t - now < NEAR_SLOTS {
                heap_pop(&mut self.far);
                self.set_slot(t, id as usize);
            } else {
                break;
            }
        }
    }

    /// The earliest registered wakeup, if any.
    pub fn next_wake(&self) -> Option<u64> {
        let mut best = match self.far.first() {
            Some(&(t, _)) => t,
            None => NONE,
        };
        // Scan the summary bitmap from the origin's slot, wrapping once.
        let start = Self::slot_of(self.base);
        let mut s = start;
        loop {
            let word = s / 64;
            // Mask off slots before `s` within this word.
            let bits = self.summary[word] & (!0u64 << (s % 64));
            if bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                if let Some(t) = self.earliest_in_slot(slot) {
                    best = best.min(t);
                    break;
                }
            }
            s = (word + 1) * 64 % NEAR_SLOTS as usize;
            if s == start / 64 * 64 {
                // Wrapped to the starting word: finish its head slots.
                let bits = self.summary[start / 64] & !(!0u64 << (start % 64));
                if bits != 0 {
                    let slot = start / 64 * 64 + bits.trailing_zeros() as usize;
                    if let Some(t) = self.earliest_in_slot(slot) {
                        best = best.min(t);
                    }
                }
                break;
            }
        }
        match best {
            NONE => None,
            t => Some(t),
        }
    }

    fn earliest_in_slot(&self, slot: usize) -> Option<u64> {
        let mut bits = self.slots[slot];
        let mut best = NONE;
        while bits != 0 {
            let id = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            best = best.min(self.wake_at[id]);
        }
        match best {
            NONE => None,
            t => Some(t),
        }
    }
}

/// Sift-up push for the fixed-capacity `(deadline, id)` min-heap.
fn heap_push(heap: &mut Vec<(u64, u8)>, entry: (u64, u8)) {
    heap.push(entry);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent].0 <= heap[i].0 {
            break;
        }
        heap.swap(parent, i);
        i = parent;
    }
}

/// Removes and returns the minimum entry.
fn heap_pop(heap: &mut Vec<(u64, u8)>) -> Option<(u64, u8)> {
    if heap.is_empty() {
        return None;
    }
    let last = heap.len() - 1;
    heap.swap(0, last);
    let min = heap.pop();
    sift_down(heap, 0);
    min
}

/// Removes the entry belonging to `id`, wherever it sits.
fn heap_remove(heap: &mut Vec<(u64, u8)>, id: u8) {
    if let Some(i) = heap.iter().position(|&(_, h)| h == id) {
        let last = heap.len() - 1;
        heap.swap(i, last);
        heap.pop();
        if i < heap.len() {
            sift_down(heap, i);
            // The swapped-in entry may also need to move up.
            let mut j = i;
            while j > 0 {
                let parent = (j - 1) / 2;
                if heap[parent].0 <= heap[j].0 {
                    break;
                }
                heap.swap(parent, j);
                j = parent;
            }
        }
    }
}

fn sift_down(heap: &mut [(u64, u8)], mut i: usize) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < heap.len() && heap[l].0 < heap[smallest].0 {
            smallest = l;
        }
        if r < heap.len() && heap[r].0 < heap[smallest].0 {
            smallest = r;
        }
        if smallest == i {
            return;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_wheel_has_no_wake() {
        let w = TimingWheel::new(4, 0);
        assert_eq!(w.next_wake(), None);
        assert_eq!(w.registered(0), None);
    }

    #[test]
    fn register_and_next_wake_round_trip() {
        let mut w = TimingWheel::new(4, 100);
        w.register(0, 150);
        w.register(1, 120);
        w.register(2, 5_000); // far
        assert_eq!(w.next_wake(), Some(120));
        assert_eq!(w.registered(2), Some(5_000));
    }

    #[test]
    fn re_register_replaces_previous_deadline() {
        let mut w = TimingWheel::new(2, 0);
        w.register(0, 10);
        w.register(0, 700); // near → far
        assert_eq!(w.next_wake(), Some(700));
        w.register(0, 3); // far → near
        assert_eq!(w.next_wake(), Some(3));
    }

    #[test]
    fn cancel_removes_near_and_far_entries() {
        let mut w = TimingWheel::new(3, 0);
        w.register(0, 10);
        w.register(1, 9_999);
        w.cancel(0);
        assert_eq!(w.next_wake(), Some(9_999));
        w.cancel(1);
        assert_eq!(w.next_wake(), None);
        w.cancel(2); // cancelling an unregistered id is a no-op
    }

    #[test]
    fn past_deadlines_clamp_to_the_origin() {
        let mut w = TimingWheel::new(1, 500);
        w.register(0, 3);
        assert_eq!(w.next_wake(), Some(500));
    }

    #[test]
    fn advance_consumes_due_and_migrates_far() {
        let mut w = TimingWheel::new(4, 0);
        w.register(0, 5);
        w.register(1, 200);
        w.register(2, 300); // far at base 0
        w.register(3, 10_000);
        w.advance_to(200);
        assert_eq!(w.registered(0), None, "due entries are consumed");
        assert_eq!(w.registered(1), None);
        assert_eq!(w.registered(2), Some(300), "migrated into the near window");
        assert_eq!(w.next_wake(), Some(300));
        w.advance_to(9_999);
        assert_eq!(w.next_wake(), Some(10_000));
    }

    #[test]
    fn advance_over_a_full_lap_drains_everything_due() {
        let mut w = TimingWheel::new(8, 0);
        for id in 0..8 {
            w.register(id, 1 + id as u64 * 37);
        }
        w.advance_to(1_000);
        assert_eq!(w.next_wake(), None);
    }

    /// The wheel agrees with a naive sorted list under a deterministic
    /// register/cancel/advance interleaving — the same op mix the
    /// `spb-verify` fuzzer drives, in miniature.
    #[test]
    fn matches_naive_model_under_interleaving() {
        let mut w = TimingWheel::new(8, 0);
        let mut model = [NONE; 8];
        let mut now = 0u64;
        let mut x = 0x9E37_79B9u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = (x >> 33) as usize % 8;
            match (x >> 60) % 4 {
                0 | 1 => {
                    let at = now + (x >> 40) % 1_000;
                    w.register(id, at);
                    model[id] = at.max(now);
                }
                2 => {
                    w.cancel(id);
                    model[id] = NONE;
                }
                _ => {
                    now += (x >> 45) % 400;
                    w.advance_to(now);
                    for m in model.iter_mut() {
                        if *m <= now {
                            *m = NONE;
                        }
                    }
                }
            }
            let naive = model.iter().copied().filter(|&t| t != NONE).min();
            assert_eq!(w.next_wake(), naive, "at now={now}");
        }
    }
}

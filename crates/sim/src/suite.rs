//! Suite-level runs and the paper's aggregation conventions.
//!
//! Most figures plot per-application bars for the SB-bound subset plus
//! two geometric-mean bars: **ALL** (every application in the suite) and
//! **SB-BOUND** (only the SB-bound subset). [`SuiteResult`] captures one
//! (policy, SB size) sweep over a suite and exposes those aggregates.

use crate::config::SimConfig;
use crate::runner::RunResult;
use crate::simulation::Simulation;
use crate::sweep::{run_cells, SweepOptions};
use spb_stats::summary::geomean;
use spb_trace::profile::AppProfile;

/// Results of running every application of a suite under one config.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Per-application results, in suite order.
    pub runs: Vec<RunResult>,
    /// Which applications are SB-bound (parallel to `runs`).
    pub sb_bound: Vec<bool>,
}

impl SuiteResult {
    /// Runs `cfg` over all `apps`, parallelized per [`SweepOptions::from_env`]
    /// (`SPB_JOBS` or the machine's available parallelism). Results are
    /// identical to [`SuiteResult::run_serial`] except for wall-clock
    /// fields.
    pub fn run(apps: &[AppProfile], cfg: &SimConfig) -> Self {
        Self::run_with(apps, cfg, &SweepOptions::from_env())
    }

    /// Runs `cfg` over all `apps` with explicit sweep options.
    pub fn run_with(apps: &[AppProfile], cfg: &SimConfig, opts: &SweepOptions) -> Self {
        let cells: Vec<(&AppProfile, SimConfig)> = apps.iter().map(|a| (a, cfg.clone())).collect();
        Self {
            runs: run_cells(&cells, opts),
            sb_bound: apps.iter().map(|a| a.is_sb_bound()).collect(),
        }
    }

    /// Runs `cfg` over all `apps` one at a time on the calling thread.
    /// Reference path for differential tests of the parallel executor.
    pub fn run_serial(apps: &[AppProfile], cfg: &SimConfig) -> Self {
        let runs = apps
            .iter()
            .map(|a| Simulation::with_config(a, cfg).run_or_panic())
            .collect();
        let sb_bound = apps.iter().map(|a| a.is_sb_bound()).collect();
        Self { runs, sb_bound }
    }

    /// The result for one application.
    pub fn get(&self, app: &str) -> Option<&RunResult> {
        self.runs.iter().find(|r| r.app == app)
    }

    /// Extracts `metric` for every application, in order.
    pub fn metric<F: Fn(&RunResult) -> f64>(&self, metric: F) -> Vec<f64> {
        self.runs.iter().map(metric).collect()
    }

    /// Geometric mean of `metric` over ALL applications.
    pub fn geomean_all<F: Fn(&RunResult) -> f64>(&self, metric: F) -> f64 {
        geomean(&self.metric(metric))
    }

    /// Geometric mean of `metric` over the SB-bound subset.
    pub fn geomean_sb_bound<F: Fn(&RunResult) -> f64>(&self, metric: F) -> f64 {
        let vals: Vec<f64> = self
            .runs
            .iter()
            .zip(&self.sb_bound)
            .filter(|(_, sb)| **sb)
            .map(|(r, _)| metric(r))
            .collect();
        geomean(&vals)
    }

    /// Per-application speedups of this suite result versus a baseline
    /// sweep of the same applications (`baseline_cycles / cycles`).
    ///
    /// # Panics
    ///
    /// Panics if the two sweeps ran different application lists.
    pub fn speedup_vs(&self, baseline: &SuiteResult) -> Vec<f64> {
        assert_eq!(self.runs.len(), baseline.runs.len(), "mismatched suites");
        self.runs
            .iter()
            .zip(&baseline.runs)
            .map(|(a, b)| {
                assert_eq!(a.app, b.app, "mismatched application order");
                b.cycles as f64 / a.cycles as f64
            })
            .collect()
    }

    /// Geometric-mean speedup versus a baseline over ALL applications.
    pub fn geomean_speedup_all(&self, baseline: &SuiteResult) -> f64 {
        geomean(&self.speedup_vs(baseline))
    }

    /// Geometric-mean speedup versus a baseline over the SB-bound subset.
    pub fn geomean_speedup_sb_bound(&self, baseline: &SuiteResult) -> f64 {
        let speedups: Vec<f64> = self
            .speedup_vs(baseline)
            .into_iter()
            .zip(&self.sb_bound)
            .filter(|(_, sb)| **sb)
            .map(|(s, _)| s)
            .collect();
        geomean(&speedups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;

    fn two_apps() -> Vec<AppProfile> {
        ["x264", "povray"]
            .iter()
            .map(|n| AppProfile::by_name(n).unwrap())
            .collect()
    }

    fn tiny_cfg() -> SimConfig {
        SimConfig::quick()
    }

    #[test]
    fn suite_runs_all_apps_and_tracks_sb_bound() {
        let apps = two_apps();
        let s = SuiteResult::run(&apps, &tiny_cfg());
        assert_eq!(s.runs.len(), 2);
        assert_eq!(s.sb_bound, vec![true, false]);
        assert!(s.get("x264").is_some());
        assert!(s.get("nope").is_none());
    }

    #[test]
    fn geomeans_partition_correctly() {
        let apps = two_apps();
        let s = SuiteResult::run(&apps, &tiny_cfg());
        let all = s.geomean_all(|r| r.ipc());
        let sb = s.geomean_sb_bound(|r| r.ipc());
        let x264_ipc = s.get("x264").unwrap().ipc();
        assert!((sb - x264_ipc).abs() < 1e-12, "only x264 is SB-bound here");
        assert!(all > 0.0);
    }

    #[test]
    fn speedup_vs_self_is_one() {
        let apps = two_apps();
        let s = SuiteResult::run(&apps, &tiny_cfg());
        let speedups = s.speedup_vs(&s);
        assert!(speedups.iter().all(|&v| (v - 1.0).abs() < 1e-12));
        assert!((s.geomean_speedup_all(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spb_suite_speedup_at_small_sb_is_positive_for_sb_bound() {
        let apps = two_apps();
        let base = SuiteResult::run(&apps, &tiny_cfg().with_sb(14));
        let spb = SuiteResult::run(
            &apps,
            &tiny_cfg()
                .with_sb(14)
                .with_policy(PolicyKind::spb_default()),
        );
        assert!(
            spb.geomean_speedup_sb_bound(&base) > 1.02,
            "SPB must visibly help the SB-bound app at SB14"
        );
    }
}

//! Human-readable run reports.
//!
//! Renders a [`RunResult`] the way a performance engineer would want to
//! read it: headline numbers, the Top-Down stall tree, the memory
//! hierarchy's behaviour, the store-prefetch outcome breakdown, and the
//! energy split — everything the paper's figures are built from, for a
//! single run.

use crate::runner::RunResult;
use spb_mem::RfoOrigin;
use spb_stats::StallCause;
use std::fmt::Write as _;

/// Renders a full text report for one run.
pub fn render(r: &RunResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== {} | policy {} | SB{} ===",
        r.app, r.policy, r.sb_entries
    );
    let _ = writeln!(
        out,
        "cycles {:>12}   µops {:>12}   IPC {:.3}",
        r.cycles,
        r.uops,
        r.ipc()
    );
    let _ = writeln!(
        out,
        "host wall {:>9.1} ms   sim rate {:.2} Mµops/s",
        r.wall_ms,
        r.uops_per_sec() / 1e6
    );

    let _ = writeln!(out, "\n-- Top-Down (stall cycles, % of core cycles) --");
    let cycles = r.topdown.cycles().max(1) as f64;
    for cause in StallCause::ALL {
        let c = r.topdown.stall_cycles(cause);
        if c > 0 {
            let _ = writeln!(
                out,
                "  {cause:<14} {c:>12}  {:>6.2}%",
                100.0 * c as f64 / cycles
            );
        }
    }
    let _ = writeln!(
        out,
        "  {:<14} {:>12}  {:>6.2}%",
        "l1d-miss-pend",
        r.topdown.l1d_miss_pending_stalls(),
        100.0 * r.topdown.l1d_miss_pending_stalls() as f64 / cycles
    );

    let _ = writeln!(out, "\n-- Instruction mix --");
    let _ = writeln!(
        out,
        "  loads {} | stores {} | branches {} (mispredicted {})",
        r.cpu.committed_loads, r.cpu.committed_stores, r.cpu.committed_branches, r.cpu.mispredicts
    );
    let _ = writeln!(
        out,
        "  wrong-path µops {} | store-to-load forwards {}",
        r.cpu.wrong_path_uops, r.cpu.store_forwards
    );

    let _ = writeln!(out, "\n-- Memory hierarchy --");
    let m = &r.mem;
    let _ = writeln!(
        out,
        "  loads: {} (L1 {:.1}% | L2 {} | L3 {} | remote {} | DRAM {})",
        m.loads,
        100.0 * m.load_l1_hits as f64 / m.loads.max(1) as f64,
        m.load_l2_hits,
        m.load_l3_hits,
        m.load_remote_hits,
        m.load_dram
    );
    let _ = writeln!(
        out,
        "  stores performed: {} (first-try hits {:.1}%, demand misses {})",
        m.stores_performed,
        100.0 * m.store_l1_ready_hits as f64 / m.stores_performed.max(1) as f64,
        m.demand_store_misses
    );
    let _ = writeln!(
        out,
        "  L1 tag checks {} | L2 accesses {} | L3 accesses {} | DRAM {} (+{} writebacks)",
        m.l1_tag_checks, m.l2_accesses, m.l3_accesses, m.dram_accesses, m.writebacks
    );
    if m.invalidations > 0 {
        let _ = writeln!(out, "  coherence invalidations: {}", m.invalidations);
    }

    let _ = writeln!(out, "\n-- Store-prefetch outcomes (per origin) --");
    for origin in RfoOrigin::ALL {
        let i = origin.index();
        let issued = m.prefetch_requests[i];
        if issued == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<16} issued {:>9} | downstream {:>9} | ok {:>8} | late {:>7} | early {:>6} | unused {:>6}",
            origin.to_string(),
            issued,
            m.prefetch_downstream[i],
            m.prefetch_successful[i],
            m.prefetch_late[i],
            m.prefetch_early[i],
            m.prefetch_never_used[i],
        );
    }

    if m.spec_squashes > 0 || m.spec_rfos_issued > 0 {
        let _ = writeln!(out, "\n-- Wrong-path speculation (squash model) --");
        let _ = writeln!(
            out,
            "  episodes {} | spec RFOs issued {} | wasted {} | dropped before issue {}",
            m.spec_squashes, m.spec_rfos_issued, m.spec_wasted_rfos, m.spec_dropped
        );
        let _ = writeln!(
            out,
            "  leaked M-state blocks {} | wasted coherence msgs {} | wasted DRAM fills {} (~{:.1} nJ)",
            m.spec_leaked_m_blocks,
            m.spec_wasted_coh_msgs,
            m.spec_wasted_dram,
            spb_energy::EnergyModel::default().speculative_waste_nj(
                m.spec_wasted_rfos,
                m.spec_wasted_coh_msgs,
                m.spec_wasted_dram,
            )
        );
    }

    if r.sb_residency.count() > 0 {
        let _ = writeln!(out, "\n-- SB residency (commit → drain, cycles) --");
        let _ = writeln!(
            out,
            "  mean {:.1} | p50 ≤ {} | p95 ≤ {} | max {}",
            r.sb_residency.mean(),
            r.sb_residency.quantile(0.5),
            r.sb_residency.quantile(0.95),
            r.sb_residency.max()
        );
    }
    if r.burst_lengths.count() > 0 {
        let _ = writeln!(out, "\n-- SPB bursts --");
        let _ = writeln!(
            out,
            "  {} bursts | mean {:.1} blocks | max {}",
            r.burst_lengths.count(),
            r.burst_lengths.mean(),
            r.burst_lengths.max()
        );
    }

    let _ = writeln!(out, "\n-- Energy --");
    let _ = writeln!(out, "  {}", r.energy);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PolicyKind, SimConfig};
    use crate::simulation::Simulation;
    use spb_trace::profile::AppProfile;

    #[test]
    fn report_contains_all_sections() {
        let app = AppProfile::by_name("x264").unwrap();
        let r = Simulation::with_config(&app, &SimConfig::quick())
            .sb_entries(14)
            .policy(PolicyKind::spb_default())
            .run_or_panic();
        let text = render(&r);
        // No squash model configured: the speculation section stays silent.
        assert!(!text.contains("squash model"));
        for section in [
            "host wall",
            "Top-Down",
            "Instruction mix",
            "Memory hierarchy",
            "Store-prefetch outcomes",
            "Energy",
            "spb-burst",
            "at-commit",
        ] {
            assert!(
                text.contains(section),
                "missing {section:?} in report:\n{text}"
            );
        }
    }

    #[test]
    fn report_is_quiet_about_absent_counters() {
        let app = AppProfile::by_name("povray").unwrap();
        let r = Simulation::with_config(&app, &SimConfig::quick()).run_or_panic();
        let text = render(&r);
        // povray has no store-prefetch traffic and no invalidations.
        assert!(!text.contains("invalidations"));
        assert!(!text.contains("at-execute"));
    }

    #[test]
    fn report_shows_speculative_waste_under_squash() {
        let app = AppProfile::by_name("x264").unwrap();
        let cfg = SimConfig::quick()
            .with_sb(14)
            .with_policy(PolicyKind::AtExecute)
            .with_squash(
                spb_trace::SquashConfig::parse("rate=0.1,depth=8..32,storm=4,seed=11").unwrap(),
            );
        let r = Simulation::with_config(&app, &cfg).run_or_panic();
        let text = render(&r);
        for needle in ["squash model", "leaked M-state blocks", "wasted"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}

//! Differential tests: the parallel sweep executor must be
//! bit-identical to the serial path, field for field, for every job
//! count — the whole point of the worker pool is that it changes wall
//! time and nothing else.

use spb_sim::config::{PolicyKind, SimConfig};
use spb_sim::suite::SuiteResult;
use spb_sim::sweep::{SweepOptions, SweepReport};
use spb_sim::RunResult;
use spb_trace::profile::AppProfile;

fn apps() -> Vec<AppProfile> {
    ["x264", "povray", "gcc"]
        .iter()
        .map(|n| AppProfile::by_name(n).unwrap())
        .collect()
}

fn small_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick()
        .with_sb(14)
        .with_policy(PolicyKind::spb_default());
    cfg.warmup_uops = 5_000;
    cfg.measure_uops = 25_000;
    cfg.seed = seed;
    cfg
}

/// Every field except the wall-clock observability ones must match.
fn assert_runs_identical(a: &RunResult, b: &RunResult, context: &str) {
    assert_eq!(a.app, b.app, "{context}: app");
    assert_eq!(a.policy, b.policy, "{context}: policy");
    assert_eq!(a.sb_entries, b.sb_entries, "{context}: sb_entries");
    assert_eq!(a.cycles, b.cycles, "{context}: cycles ({})", a.app);
    assert_eq!(a.uops, b.uops, "{context}: uops ({})", a.app);
    assert_eq!(a.topdown, b.topdown, "{context}: topdown ({})", a.app);
    assert_eq!(a.cpu, b.cpu, "{context}: cpu stats ({})", a.app);
    assert_eq!(a.mem, b.mem, "{context}: mem stats ({})", a.app);
    assert_eq!(
        a.sb_residency, b.sb_residency,
        "{context}: sb_residency histogram ({})",
        a.app
    );
    assert_eq!(
        a.burst_lengths, b.burst_lengths,
        "{context}: burst_lengths histogram ({})",
        a.app
    );
    assert_eq!(a.energy, b.energy, "{context}: energy ({})", a.app);
}

#[test]
fn parallel_suite_equals_serial_across_seeds_and_job_counts() {
    for seed in [42u64, 7] {
        let cfg = small_cfg(seed);
        let serial = SuiteResult::run_serial(&apps(), &cfg);
        for jobs in [1usize, 2, 8] {
            let parallel = SuiteResult::run_with(&apps(), &cfg, &SweepOptions::with_jobs(jobs));
            assert_eq!(parallel.sb_bound, serial.sb_bound);
            assert_eq!(parallel.runs.len(), serial.runs.len());
            for (p, s) in parallel.runs.iter().zip(&serial.runs) {
                assert_runs_identical(p, s, &format!("seed {seed}, jobs {jobs}"));
            }
        }
    }
}

#[test]
fn default_run_path_equals_serial() {
    // SuiteResult::run picks its job count from the environment; the
    // results must still be the serial ones whatever it picked.
    let cfg = small_cfg(42);
    let serial = SuiteResult::run_serial(&apps(), &cfg);
    let auto = SuiteResult::run(&apps(), &cfg);
    for (a, s) in auto.runs.iter().zip(&serial.runs) {
        assert_runs_identical(a, s, "env-selected jobs");
    }
}

#[test]
fn sweep_report_from_real_runs_round_trips() {
    let cfg = small_cfg(42);
    let suite = SuiteResult::run_with(&apps(), &cfg, &SweepOptions::with_jobs(2));
    let report = SweepReport::new("differential", &suite.runs);
    assert_eq!(report.records.len(), suite.runs.len());
    for (rec, run) in report.records.iter().zip(&suite.runs) {
        assert_eq!(rec.app, run.app);
        assert_eq!(rec.cycles, run.cycles);
        assert!((rec.ipc - run.ipc()).abs() < 1e-12);
    }
    let parsed = SweepReport::parse(&report.to_json_string()).unwrap();
    assert_eq!(parsed, report);
}

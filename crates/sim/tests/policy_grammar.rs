//! Property tests for the parameterized policy grammar: every point in
//! the design space must survive `parse(label()) == self` (the tuner,
//! the sweep service wire spec, and the cache key all lean on it), and
//! distinct knob settings must never collide in the cache.

use proptest::prelude::*;
use spb_core::SpbParams;
use spb_sim::config::{PolicyKind, SimConfig};

proptest! {
    /// The full SPB parameter space round-trips through its label.
    #[test]
    fn spb_labels_round_trip(
        n in 1u32..=1024,
        dedupe in any::<bool>(),
        burst in 0u32..=15,
        frac_milli in 1u32..=1000,
        backward in any::<bool>(),
        cross in 0u32..=8,
    ) {
        let p = PolicyKind::Spb {
            params: SpbParams {
                n,
                dedupe,
                burst: burst as u8,
                frac_milli: frac_milli as u16,
                backward,
                cross,
            },
        };
        let label = p.label();
        prop_assert_eq!(PolicyKind::parse(&label).unwrap(), p, "label {}", label);
        // Labels are canonical: re-labelling the parse changes nothing.
        prop_assert_eq!(PolicyKind::parse(&label).unwrap().label(), label);
    }

    /// The single-knob adaptive variants round-trip too.
    #[test]
    fn adaptive_labels_round_trip(n in 1u32..=1024, feedback in any::<bool>()) {
        let p = if feedback {
            PolicyKind::SpbFeedback { n }
        } else {
            PolicyKind::SpbDynamic { n }
        };
        prop_assert_eq!(PolicyKind::parse(&p.label()).unwrap(), p);
    }

    /// Any two SPB points that differ in any knob get different labels
    /// AND different Debug renderings — the cache key digests the Debug
    /// form, so a collision here would silently serve one configuration
    /// the other's results.
    #[test]
    fn distinct_points_never_collide(
        a in (1u32..=64, 0u32..=15, 1u32..=1000, 0u32..=8),
        b in (1u32..=64, 0u32..=15, 1u32..=1000, 0u32..=8),
    ) {
        let mk = |(n, burst, frac, cross): (u32, u32, u32, u32)| PolicyKind::Spb {
            params: SpbParams {
                n,
                dedupe: true,
                burst: burst as u8,
                frac_milli: frac as u16,
                backward: false,
                cross,
            },
        };
        let (pa, pb) = (mk(a), mk(b));
        if pa != pb {
            prop_assert_ne!(pa.label(), pb.label());
            prop_assert_ne!(format!("{pa:?}"), format!("{pb:?}"));
        }
    }
}

#[test]
fn fixed_policies_round_trip() {
    for spelling in ["none", "at-execute", "at-commit", "spb", "spb-dynamic", "ideal"] {
        let p = PolicyKind::parse(spelling).unwrap();
        assert_eq!(p.label(), spelling, "classic spelling is canonical");
        assert_eq!(PolicyKind::parse(&p.label()).unwrap(), p);
    }
    // The aliases parse but canonicalize to the full names.
    assert_eq!(PolicyKind::parse("exe").unwrap().label(), "at-execute");
    assert_eq!(PolicyKind::parse("commit").unwrap().label(), "at-commit");
}

#[test]
fn burst_threshold_alone_changes_the_cache_debug_form() {
    // A one-knob difference must flow all the way into the SimConfig
    // Debug rendering (which the serve cache key digests).
    let base = SimConfig::quick().with_policy(PolicyKind::parse("spb:burst=3").unwrap());
    let other = SimConfig::quick().with_policy(PolicyKind::parse("spb:burst=4").unwrap());
    assert_ne!(format!("{base:?}"), format!("{other:?}"));
    // And the default point keeps its seed-era rendering.
    let default = SimConfig::quick().with_policy(PolicyKind::spb_default());
    assert!(
        format!("{default:?}").contains("Spb { n: 48, dedupe: true }"),
        "default Debug form must stay cache-stable"
    );
}

//! Property tests: [`SweepReport::parse`] is fed whatever survived a
//! crash or a truncated write, so it must reject arbitrary garbage with
//! an `Err` — never a panic.

use proptest::prelude::*;
use spb_sim::sweep::{CellFailure, SweepRecord, SweepReport};

/// A representative on-disk report: two records plus a failed cell, so
/// every branch of the schema is present in the text being mangled.
fn sample_text() -> String {
    SweepReport {
        name: "prop".into(),
        records: vec![
            SweepRecord {
                app: "x264".into(),
                policy: "spb".into(),
                sb: 14,
                cycles: 123_456,
                uops: 300_000,
                ipc: 2.43,
                wall_ms: 1810.25,
                energy_nj: Some(1234.5),
                coh_msgs: Some(678),
            },
            SweepRecord {
                app: "dedup".into(),
                policy: "at-commit".into(),
                sb: 56,
                cycles: 98_765,
                uops: 240_000,
                ipc: 2.43,
                wall_ms: 905.5,
                energy_nj: None,
                coh_msgs: None,
            },
        ],
        failed: vec![CellFailure {
            app: "gcc".into(),
            policy: "ideal".into(),
            sb: 1024,
            reason: "panic: \"quoted\" and\nnewlined".into(),
            attempts: 2,
        }],
        metrics: None,
    }
    .to_json_string()
}

#[test]
fn sample_report_round_trips() {
    let text = sample_text();
    let report = SweepReport::parse(&text).expect("sample is valid");
    assert_eq!(report.records.len(), 2);
    assert_eq!(report.failed.len(), 1);
    assert_eq!(
        SweepReport::parse(&report.to_json_string()).unwrap(),
        report
    );
}

#[test]
fn every_truncation_parses_without_panicking() {
    // Exhaustive, not sampled: a crashed writer can stop at any byte.
    let text = sample_text();
    for cut in 0..text.len() {
        let prefix = &text[..cut];
        // A prefix that only lost trailing whitespace is still complete;
        // anything shorter must be rejected, never panicked on.
        if !text[cut..].trim().is_empty() {
            assert!(
                SweepReport::parse(prefix).is_err(),
                "truncation at byte {cut} must not parse as a clean report"
            );
        }
    }
}

proptest! {
    /// Flipping arbitrary bytes anywhere in the text never panics the
    /// parser; it either still parses (the flip hit whitespace or a
    /// string's interior) or errors cleanly.
    #[test]
    fn byte_mangled_reports_never_panic(
        positions in proptest::collection::vec(any::<u64>(), 1..8),
        values in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let mut bytes = sample_text().into_bytes();
        for (p, v) in positions.iter().zip(values.iter()) {
            let i = (*p as usize) % bytes.len();
            bytes[i] = (*v % 256) as u8;
        }
        // Mangling can break UTF-8 too; a non-UTF-8 file errors in the
        // caller's io layer first, so only the Ok path reaches parse.
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = SweepReport::parse(&text);
        }
    }

    /// Splicing the report with itself (simulating a partially
    /// overwritten file) never panics.
    #[test]
    fn spliced_reports_never_panic(a in any::<u64>(), b in any::<u64>()) {
        let text = sample_text();
        let i = (a as usize) % text.len();
        let j = (b as usize) % text.len();
        let spliced = format!("{}{}", &text[..i], &text[j..]);
        let _ = SweepReport::parse(&spliced);
    }
}

//! Property-based tests for trace generation.

use proptest::prelude::*;
use spb_trace::generators::{ComputeGen, ComputeParams, MemcpyGen, MemsetGen};
use spb_trace::phased::{PhaseSpec, PhasedWorkload};
use spb_trace::profile::AppProfile;
use spb_trace::{CodeRegion, OpKind, TraceSource};

fn drain(mut g: impl TraceSource, cap: usize) -> Vec<spb_trace::MicroOp> {
    let mut out = Vec::new();
    while let Some(op) = g.next_op() {
        out.push(op);
        if out.len() >= cap {
            break;
        }
    }
    out
}

proptest! {
    /// Memset covers exactly `bytes / 8` stores, each 8 bytes, strictly
    /// increasing addresses with stride 8, regardless of seed/base.
    #[test]
    fn memset_exact_coverage(base in (0u64..(1 << 30)).prop_map(|b| b * 8), kb in 1u64..16, seed in any::<u64>()) {
        let bytes = kb * 1024;
        let ops = drain(MemsetGen::new(base, bytes, CodeRegion::Memset, seed), 1 << 20);
        let mut stores: Vec<u64> = Vec::new();
        for o in &ops {
            if let OpKind::Store { addr, size } = o.kind() {
                prop_assert_eq!(size, 8);
                stores.push(addr);
            }
        }
        prop_assert_eq!(stores.len() as u64, bytes / 8);
        for (i, &a) in stores.iter().enumerate() {
            prop_assert_eq!(a, base + i as u64 * 8);
        }
    }

    /// Memcpy emits exactly one load per store and every store's first
    /// dependency is its load.
    #[test]
    fn memcpy_load_store_pairing(kb in 1u64..8, seed in any::<u64>()) {
        let bytes = kb * 1024;
        let ops = drain(
            MemcpyGen::new(0x10_0000, 0x20_0000, bytes, CodeRegion::Memcpy, seed),
            1 << 20,
        );
        let loads = ops.iter().filter(|o| o.kind().is_load()).count();
        let stores: Vec<_> = ops.iter().filter(|o| o.kind().is_store()).collect();
        prop_assert_eq!(loads, stores.len());
        for s in stores {
            prop_assert_eq!(s.deps()[0], 1);
        }
    }

    /// ComputeGen emits exactly `count` µops and is seed-deterministic.
    #[test]
    fn compute_deterministic(count in 1u64..5000, seed in any::<u64>()) {
        let params = ComputeParams { count, ..Default::default() };
        let a = drain(ComputeGen::new(params, seed), 1 << 20);
        let b = drain(ComputeGen::new(params, seed), 1 << 20);
        prop_assert_eq!(a.len() as u64, count);
        prop_assert_eq!(a, b);
    }

    /// Phased workloads never terminate and never emit ops with
    /// dependencies that point before the start of the stream.
    #[test]
    fn phased_workload_wellformed(seed in any::<u64>(), take in 100usize..5000) {
        let mut w = PhasedWorkload::new(
            vec![
                PhaseSpec::Memset { bytes: 1024, region: CodeRegion::Memset, footprint_pages: 64 },
                PhaseSpec::Compute(ComputeParams { count: 200, ..Default::default() }),
            ],
            seed,
        );
        for i in 0..take {
            let op = w.next_op();
            prop_assert!(op.is_some(), "workload ended at op {i}");
            let op = op.unwrap();
            for d in op.deps() {
                prop_assert!((d as usize) <= i + 1, "dep distance {d} at position {i}");
            }
        }
    }

    /// Thread separation: two threads of the same profile never touch
    /// the same private data page.
    #[test]
    fn threads_never_share_private_pages(seed in any::<u64>()) {
        let p = AppProfile::by_name("dedup").unwrap();
        let mut sources = p.build_threads(seed);
        let mut pages: Vec<std::collections::HashSet<u64>> = vec![Default::default(); 2];
        for (t, src) in sources.iter_mut().take(2).enumerate() {
            for _ in 0..20_000 {
                if let Some(op) = src.next_op() {
                    if let Some(page) = op.page() {
                        pages[t].insert(page);
                    }
                }
            }
        }
        prop_assert!(pages[0].is_disjoint(&pages[1]));
    }
}

//! Code-region attribution of program counters.
//!
//! Figure 3 of the paper breaks down SB-induced stall cycles by *where*
//! the offending store lives: `memcpy`, `memset`, `calloc`, the kernel's
//! `clear_page`, or the application itself. The synthetic generators
//! stamp each µop with a PC from a region-specific range so the simulator
//! can reproduce that attribution.

use std::fmt;

/// The code region a program counter belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodeRegion {
    /// Application text.
    Application,
    /// `memcpy` in the C library.
    Memcpy,
    /// `memset` in the C library.
    Memset,
    /// `calloc` in the C library (allocation + zeroing).
    Calloc,
    /// The kernel's `clear_page` routine (zeroes a page on first touch).
    ClearPage,
}

impl CodeRegion {
    /// All regions in Figure 3's legend order.
    pub const ALL: [CodeRegion; 5] = [
        CodeRegion::Application,
        CodeRegion::Memcpy,
        CodeRegion::Memset,
        CodeRegion::Calloc,
        CodeRegion::ClearPage,
    ];

    /// Base of this region's PC range.
    pub fn pc_base(self) -> u64 {
        match self {
            CodeRegion::Application => 0x0000_0000_0040_0000,
            CodeRegion::Memcpy => 0x0000_7f00_0001_0000,
            CodeRegion::Memset => 0x0000_7f00_0002_0000,
            CodeRegion::Calloc => 0x0000_7f00_0003_0000,
            CodeRegion::ClearPage => 0xffff_ffff_8100_0000,
        }
    }

    /// Size of each region's PC range in bytes.
    pub const PC_RANGE: u64 = 0x1_0000;

    /// Classifies a program counter into its region.
    ///
    /// PCs outside every synthetic range are attributed to the
    /// application, matching how profilers bucket unknown text.
    pub fn of_pc(pc: u64) -> CodeRegion {
        for region in [
            CodeRegion::Memcpy,
            CodeRegion::Memset,
            CodeRegion::Calloc,
            CodeRegion::ClearPage,
        ] {
            let base = region.pc_base();
            if (base..base + Self::PC_RANGE).contains(&pc) {
                return region;
            }
        }
        CodeRegion::Application
    }

    /// A PC inside this region at byte offset `off` (wrapped into range).
    pub fn pc_at(self, off: u64) -> u64 {
        self.pc_base() + (off % Self::PC_RANGE)
    }

    /// Whether the region is library or kernel code (not the app).
    pub fn is_system(self) -> bool {
        !matches!(self, CodeRegion::Application)
    }
}

impl fmt::Display for CodeRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CodeRegion::Application => "application",
            CodeRegion::Memcpy => "memcpy",
            CodeRegion::Memset => "memset",
            CodeRegion::Calloc => "calloc",
            CodeRegion::ClearPage => "clear_page",
        };
        f.write_str(s)
    }
}

/// Virtual address-space layout used by the synthetic workloads.
///
/// Keeping data regions disjoint guarantees generators never alias one
/// another accidentally; the `roms` pathology creates aliasing *on
/// purpose* via cache-set geometry, not via address overlap.
#[derive(Debug, Clone, Copy)]
pub struct AddressSpace;

impl AddressSpace {
    /// Base of statically allocated arrays (streaming sources).
    pub const DATA_BASE: u64 = 0x0000_0001_0000_0000;
    /// Base of the heap (copy destinations, containers).
    pub const HEAP_BASE: u64 = 0x0000_0002_0000_0000;
    /// Base of a second heap arena (copy sources).
    pub const ARENA_BASE: u64 = 0x0000_0003_0000_0000;
    /// Base of pointer-chase node pools.
    pub const POOL_BASE: u64 = 0x0000_0004_0000_0000;
    /// Stack top (stacks grow down from here).
    pub const STACK_TOP: u64 = 0x0000_7ffd_0000_0000;
    /// Per-thread spacing so threads never share private regions.
    pub const THREAD_STRIDE: u64 = 0x0000_0000_4000_0000;
    /// Base of pages shared read-mostly between PARSEC threads.
    pub const SHARED_BASE: u64 = 0x0000_0005_0000_0000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_pc_round_trips_every_region() {
        for region in CodeRegion::ALL {
            let pc = region.pc_at(0x123);
            assert_eq!(CodeRegion::of_pc(pc), region, "region {region}");
        }
    }

    #[test]
    fn unknown_pc_is_application() {
        assert_eq!(CodeRegion::of_pc(0xdead_beef_0000), CodeRegion::Application);
    }

    #[test]
    fn pc_at_wraps_within_range() {
        let pc = CodeRegion::Memset.pc_at(CodeRegion::PC_RANGE + 5);
        assert_eq!(pc, CodeRegion::Memset.pc_base() + 5);
    }

    #[test]
    fn system_classification() {
        assert!(!CodeRegion::Application.is_system());
        assert!(CodeRegion::ClearPage.is_system());
        assert!(CodeRegion::Memcpy.is_system());
    }

    #[test]
    fn data_regions_are_disjoint() {
        let bases = [
            AddressSpace::DATA_BASE,
            AddressSpace::HEAP_BASE,
            AddressSpace::ARENA_BASE,
            AddressSpace::POOL_BASE,
            AddressSpace::SHARED_BASE,
        ];
        for w in bases.windows(2) {
            assert!(w[1] - w[0] >= 0x1_0000_0000);
        }
    }

    #[test]
    fn display_matches_figure3_legend() {
        assert_eq!(CodeRegion::ClearPage.to_string(), "clear_page");
        assert_eq!(CodeRegion::Memcpy.to_string(), "memcpy");
    }
}

//! Deterministic pseudo-random numbers for workload generation.
//!
//! The workspace builds fully offline, so the `rand`/`rand_chacha`
//! crates are unavailable; this module provides the small RNG surface
//! the generators need (seeding, Bernoulli draws, range sampling) on a
//! xoshiro256** core. Workload generation only needs *deterministic,
//! well-mixed* streams — cryptographic quality is irrelevant — and every
//! stream is fully determined by its `u64` seed, which keeps the
//! simulator's end-to-end determinism guarantee intact.

use std::ops::{Range, RangeInclusive};

/// A deterministic xoshiro256** generator seeded from a `u64`.
///
/// # Examples
///
/// ```
/// use spb_trace::rng::TraceRng;
///
/// let mut a = TraceRng::seed_from_u64(42);
/// let mut b = TraceRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TraceRng {
    /// Expands `seed` into the full generator state via splitmix64 (the
    /// reference seeding procedure for the xoshiro family).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of entropy).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform value in `range` (half-open or inclusive, `u64` or
    /// `usize`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        // Multiply-shift (Lemire) keeps bias negligible for the small
        // bounds workload generation uses.
        (((u128::from(self.next_u64())) * u128::from(bound)) >> 64) as u64
    }
}

/// Ranges [`TraceRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut TraceRng) -> Self::Output;
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut TraceRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below(self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut TraceRng) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        let span = end.wrapping_sub(start).wrapping_add(1);
        if span == 0 {
            return rng.next_u64();
        }
        start + rng.below(span)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut TraceRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut TraceRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + rng.below((end - start + 1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TraceRng::seed_from_u64(7);
        let mut b = TraceRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TraceRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TraceRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = TraceRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = TraceRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}

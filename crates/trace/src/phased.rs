//! Phase composition: stringing primitive generators into an application.
//!
//! A real SPEC application alternates between compute and data-movement
//! phases. [`PhaseSpec`] describes one phase declaratively (so profiles
//! are data, serializable and testable); [`PhasedWorkload`] instantiates
//! the specs in order and loops the whole list forever — the simulator's
//! region of interest. On every outer iteration the data-movement phases
//! advance through a large footprint so their stores keep missing in the
//! cache hierarchy, like a real application touching fresh data.

use crate::generators::{
    ClearPageGen, ComputeGen, ComputeParams, MemcpyGen, MemsetGen, MultiStreamCopyGen,
    PointerChaseGen, SparseStoreGen, StrideLoadGen,
};
use crate::op::PAGE_BYTES;
use crate::region::{AddressSpace, CodeRegion};
use crate::{MicroOp, TraceSource};

/// Declarative description of one workload phase.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseSpec {
    /// A `memcpy(dst, src, bytes)` through the C library (or, with
    /// `shuffle`, a manually unrolled copy loop in application code whose
    /// intra-block order the compiler permuted).
    Memcpy {
        /// Bytes copied per call.
        bytes: u64,
        /// Attributed code region (`Memcpy` or `Application`).
        region: CodeRegion,
        /// Total pages the copy walks across outer iterations.
        footprint_pages: u64,
        /// Permute the 8 accesses within each block.
        shuffle: bool,
    },
    /// A `memset`/`calloc`-style zeroing burst.
    Memset {
        /// Bytes set per call.
        bytes: u64,
        /// Attributed code region (`Memset` or `Calloc`).
        region: CodeRegion,
        /// Total pages walked across outer iterations.
        footprint_pages: u64,
    },
    /// Kernel `clear_page` on first-touch of freshly mapped pages.
    ClearPages {
        /// Pages cleared per iteration.
        pages: u64,
        /// Total pages walked across outer iterations.
        footprint_pages: u64,
    },
    /// Interleaved multi-stream copy (the `roms` unrolling pattern).
    MultiStreamCopy {
        /// Number of concurrent streams.
        streams: u32,
        /// Bytes copied per stream per iteration.
        bytes_per_stream: u64,
        /// Blocks copied from one stream before switching.
        chunk_blocks: u64,
        /// Total pages walked per stream across iterations.
        footprint_pages: u64,
    },
    /// Strided loads (vector kernel).
    StrideLoads {
        /// Loads per iteration.
        count: u64,
        /// Stride in bytes.
        stride: u64,
        /// Floating-point companion compute.
        fp: bool,
        /// Total pages walked across outer iterations.
        footprint_pages: u64,
    },
    /// Dependent random loads (pointer chasing).
    PointerChase {
        /// Loads per iteration.
        count: u64,
        /// Pool size in pages.
        pool_pages: u64,
    },
    /// ALU-dominated compute.
    Compute(ComputeParams),
    /// Sparse random stores that must not look like a burst.
    SparseStores {
        /// Stores per iteration.
        count: u64,
        /// Footprint in pages.
        footprint_pages: u64,
        /// Compute µops between stores.
        gap: u32,
    },
}

impl PhaseSpec {
    /// Builds the generator for outer-loop iteration `iteration` of
    /// thread `thread_id`, deterministic under `seed`.
    pub fn build(&self, iteration: u64, seed: u64, thread_id: u32) -> Box<dyn TraceSource + Send> {
        let t_off = u64::from(thread_id) * AddressSpace::THREAD_STRIDE;
        let phase_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(iteration)
            .wrapping_add(u64::from(thread_id) << 32);
        // Walk the footprint so successive iterations touch fresh data
        // until the footprint wraps. Each iteration starts on a fresh
        // page *past* the previous iteration's last page: real
        // `memcpy`/`memset` calls hit distinct buffers, so a page burst
        // from call k must not have already covered call k+1's data.
        let walk = |bytes: u64, footprint_pages: u64| -> u64 {
            let span = bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES + PAGE_BYTES;
            let fp = (footprint_pages.max(1)) * PAGE_BYTES;
            (iteration * span) % fp
        };
        match *self {
            PhaseSpec::Memcpy {
                bytes,
                region,
                footprint_pages,
                shuffle,
            } => {
                let off = walk(bytes, footprint_pages);
                // Copy *sources* are recently produced data (frames,
                // buffers) and are cache-resident in the real
                // applications; only the destinations walk fresh memory.
                // A DRAM-missing source would gate store commits on load
                // latency, which is not the phenomenon under study.
                let src_resident = 8 * PAGE_BYTES; // small hot buffer, warms in 2-3 calls
                let src = AddressSpace::ARENA_BASE + t_off + off % src_resident;
                let dst = AddressSpace::HEAP_BASE + t_off + off;
                let g = MemcpyGen::new(src, dst, bytes, region, phase_seed);
                if shuffle {
                    Box::new(g.with_intra_block_shuffle())
                } else {
                    Box::new(g)
                }
            }
            PhaseSpec::Memset {
                bytes,
                region,
                footprint_pages,
            } => {
                let off = walk(bytes, footprint_pages);
                Box::new(MemsetGen::new(
                    AddressSpace::HEAP_BASE + t_off + off,
                    bytes,
                    region,
                    phase_seed,
                ))
            }
            PhaseSpec::ClearPages {
                pages,
                footprint_pages,
            } => {
                let off = walk(pages * PAGE_BYTES, footprint_pages);
                let base = AddressSpace::DATA_BASE + t_off + off;
                let aligned = base - base % PAGE_BYTES;
                Box::new(ClearPageGen::new(aligned, pages, phase_seed))
            }
            PhaseSpec::MultiStreamCopy {
                streams,
                bytes_per_stream,
                chunk_blocks,
                footprint_pages,
            } => {
                let off = walk(bytes_per_stream, footprint_pages);
                let stream_spacing = footprint_pages.max(1) * PAGE_BYTES;
                let src_resident = 8 * PAGE_BYTES; // per-stream hot source buffer
                let pairs: Vec<(u64, u64)> = (0..streams.max(1) as u64)
                    .map(|s| {
                        (
                            AddressSpace::ARENA_BASE
                                + t_off
                                + s * stream_spacing
                                + off % src_resident,
                            AddressSpace::HEAP_BASE + t_off + s * stream_spacing + off,
                        )
                    })
                    .collect();
                Box::new(MultiStreamCopyGen::new(
                    pairs,
                    bytes_per_stream,
                    chunk_blocks,
                    phase_seed,
                ))
            }
            PhaseSpec::StrideLoads {
                count,
                stride,
                fp,
                footprint_pages,
            } => {
                let off = walk(count * stride, footprint_pages);
                Box::new(StrideLoadGen::new(
                    AddressSpace::DATA_BASE + t_off + off,
                    stride,
                    count,
                    fp,
                    phase_seed,
                ))
            }
            PhaseSpec::PointerChase { count, pool_pages } => Box::new(PointerChaseGen::new(
                AddressSpace::POOL_BASE + t_off,
                pool_pages.max(1) * (PAGE_BYTES / 64),
                count,
                phase_seed,
            )),
            PhaseSpec::Compute(params) => Box::new(ComputeGen::new(params, phase_seed)),
            PhaseSpec::SparseStores {
                count,
                footprint_pages,
                gap,
            } => Box::new(SparseStoreGen::new(
                AddressSpace::HEAP_BASE + t_off,
                footprint_pages.max(1) * (PAGE_BYTES / 64),
                count,
                gap,
                phase_seed,
            )),
        }
    }
}

/// An unbounded trace source that cycles a list of [`PhaseSpec`]s.
///
/// # Examples
///
/// ```
/// use spb_trace::{phased::PhaseSpec, CodeRegion, PhasedWorkload, TraceSource};
///
/// let mut w = PhasedWorkload::new(
///     vec![PhaseSpec::Memset { bytes: 4096, region: CodeRegion::Memset, footprint_pages: 64 }],
///     7,
/// );
/// for _ in 0..10_000 {
///     assert!(w.next_op().is_some(), "phased workloads never end");
/// }
/// ```
pub struct PhasedWorkload {
    specs: Vec<PhaseSpec>,
    seed: u64,
    thread_id: u32,
    phase_idx: usize,
    iteration: u64,
    current: Option<Box<dyn TraceSource + Send>>,
}

impl std::fmt::Debug for PhasedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedWorkload")
            .field("specs", &self.specs.len())
            .field("seed", &self.seed)
            .field("thread_id", &self.thread_id)
            .field("phase_idx", &self.phase_idx)
            .field("iteration", &self.iteration)
            .finish()
    }
}

impl PhasedWorkload {
    /// Creates a workload cycling `specs` forever, deterministic under
    /// `seed`, for thread 0.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(specs: Vec<PhaseSpec>, seed: u64) -> Self {
        Self::for_thread(specs, seed, 0)
    }

    /// Like [`PhasedWorkload::new`] but with an explicit thread id, which
    /// offsets all private data regions (PARSEC mode).
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn for_thread(specs: Vec<PhaseSpec>, seed: u64, thread_id: u32) -> Self {
        assert!(!specs.is_empty(), "a workload needs at least one phase");
        Self {
            specs,
            seed,
            thread_id,
            phase_idx: 0,
            iteration: 0,
            current: None,
        }
    }

    /// Number of completed outer iterations of the phase list.
    pub fn iterations(&self) -> u64 {
        self.iteration
    }
}

impl TraceSource for PhasedWorkload {
    fn next_op(&mut self) -> Option<MicroOp> {
        loop {
            if let Some(cur) = self.current.as_mut() {
                if let Some(op) = cur.next_op() {
                    return Some(op);
                }
                self.current = None;
                self.phase_idx += 1;
                if self.phase_idx == self.specs.len() {
                    self.phase_idx = 0;
                    self.iteration += 1;
                }
            } else {
                self.current = Some(self.specs[self.phase_idx].build(
                    self.iteration,
                    self.seed,
                    self.thread_id,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    fn take(w: &mut PhasedWorkload, n: usize) -> Vec<MicroOp> {
        (0..n).map(|_| w.next_op().unwrap()).collect()
    }

    #[test]
    fn workload_cycles_phases_forever() {
        let mut w = PhasedWorkload::new(
            vec![
                PhaseSpec::Memset {
                    bytes: 256,
                    region: CodeRegion::Memset,
                    footprint_pages: 4,
                },
                PhaseSpec::Compute(ComputeParams {
                    count: 10,
                    ..Default::default()
                }),
            ],
            1,
        );
        let ops = take(&mut w, 5_000);
        assert_eq!(ops.len(), 5_000);
        assert!(w.iterations() > 10);
    }

    #[test]
    fn footprint_walks_across_iterations_then_wraps() {
        let spec = PhaseSpec::Memset {
            bytes: 4096,
            region: CodeRegion::Memset,
            footprint_pages: 4,
        };
        let first_store_addr = |iter: u64| {
            let mut g = spec.build(iter, 9, 0);
            loop {
                let op = g.next_op().unwrap();
                if let OpKind::Store { addr, .. } = op.kind() {
                    return addr;
                }
            }
        };
        // A 4096-byte memset spans one page plus a one-page guard gap, so
        // successive iterations start two pages apart.
        let a0 = first_store_addr(0);
        let a1 = first_store_addr(1);
        let a2 = first_store_addr(2);
        assert_eq!(a1 - a0, 2 * 4096);
        assert_eq!(a2, a0, "footprint of 4 pages must wrap after 2 iterations");
    }

    #[test]
    fn threads_use_disjoint_private_regions() {
        let spec = PhaseSpec::Memset {
            bytes: 4096,
            region: CodeRegion::Memset,
            footprint_pages: 1,
        };
        let addr_of = |tid: u32| {
            let mut g = spec.build(0, 9, tid);
            loop {
                if let OpKind::Store { addr, .. } = g.next_op().unwrap().kind() {
                    return addr;
                }
            }
        };
        let d = addr_of(1) - addr_of(0);
        assert_eq!(d, AddressSpace::THREAD_STRIDE);
    }

    #[test]
    fn deterministic_under_seed() {
        let specs = vec![
            PhaseSpec::SparseStores {
                count: 50,
                footprint_pages: 16,
                gap: 2,
            },
            PhaseSpec::Compute(ComputeParams {
                count: 100,
                ..Default::default()
            }),
        ];
        let mut a = PhasedWorkload::new(specs.clone(), 42);
        let mut b = PhasedWorkload::new(specs, 42);
        assert_eq!(take(&mut a, 2_000), take(&mut b, 2_000));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_spec_list_panics() {
        let _ = PhasedWorkload::new(vec![], 0);
    }

    #[test]
    fn multi_stream_spec_builds_disjoint_streams() {
        let spec = PhaseSpec::MultiStreamCopy {
            streams: 3,
            bytes_per_stream: 512,
            chunk_blocks: 2,
            footprint_pages: 8,
        };
        let mut g = spec.build(0, 3, 0);
        let mut store_addrs = Vec::new();
        while let Some(op) = g.next_op() {
            if let OpKind::Store { addr, .. } = op.kind() {
                store_addrs.push(addr);
            }
        }
        assert!(!store_addrs.is_empty());
        // Streams are spaced a footprint apart.
        let spacing = 8 * PAGE_BYTES;
        let bases: std::collections::BTreeSet<u64> = store_addrs
            .iter()
            .map(|a| (a - AddressSpace::HEAP_BASE) / spacing)
            .collect();
        assert_eq!(bases.len(), 3);
    }

    #[test]
    fn clear_pages_are_page_aligned() {
        let spec = PhaseSpec::ClearPages {
            pages: 2,
            footprint_pages: 16,
        };
        for iter in 0..5 {
            let mut g = spec.build(iter, 1, 0);
            let first = loop {
                if let OpKind::Store { addr, .. } = g.next_op().unwrap().kind() {
                    break addr;
                }
            };
            assert_eq!(first % PAGE_BYTES, 0);
        }
    }
}

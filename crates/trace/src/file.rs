//! A compact binary trace file format.
//!
//! Synthetic generation is deterministic, but shipping and diffing
//! traces is still useful: record a workload once, replay it against
//! different simulator versions, or hand a trace to another tool. The
//! format is deliberately simple:
//!
//! ```text
//! header:  magic "SPBT" | version u16 LE | reserved u16 | count u64 LE
//! record:  tag u8 | payload…
//!   tag 0 IntAlu   : latency u8
//!   tag 1 FpAlu    : latency u8
//!   tag 2 Load     : size u8 | addr u64 LE
//!   tag 3 Store    : size u8 | addr u64 LE
//!   tag 4 Branch   : mispredict u8 (0/1)
//! every record then carries: pc u64 LE | dep0 u16 LE | dep1 u16 LE
//! ```
//!
//! # Examples
//!
//! ```
//! use spb_trace::file::{TraceReader, TraceWriter};
//! use spb_trace::generators::MemsetGen;
//! use spb_trace::{CodeRegion, TraceSource};
//!
//! let mut buf = Vec::new();
//! let mut w = TraceWriter::new(&mut buf);
//! let mut gen = MemsetGen::new(0x1000, 512, CodeRegion::Memset, 1);
//! while let Some(op) = gen.next_op() {
//!     w.write_op(&op).unwrap();
//! }
//! w.finish().unwrap();
//!
//! let mut r = TraceReader::new(buf.as_slice()).unwrap();
//! assert!(r.len() > 0);
//! let first = r.next_op().unwrap();
//! println!("{first}");
//! ```

use crate::op::{MicroOp, OpKind};
use crate::TraceSource;
use std::io::{self, Read, Write};

/// File magic: "SPBT".
pub const MAGIC: [u8; 4] = *b"SPBT";
/// Current format version.
pub const VERSION: u16 = 1;

const TAG_INT: u8 = 0;
const TAG_FP: u8 = 1;
const TAG_LOAD: u8 = 2;
const TAG_STORE: u8 = 3;
const TAG_BRANCH: u8 = 4;

/// Errors produced by the trace-file reader.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the SPBT magic.
    BadMagic([u8; 4]),
    /// The file's version is not supported.
    UnsupportedVersion(u16),
    /// A record carried an unknown tag byte.
    BadTag(u8),
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ReadTraceError::BadMagic(m) => write!(f, "not a trace file (magic {m:02x?})"),
            ReadTraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::BadTag(t) => write!(f, "corrupt trace: unknown record tag {t}"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Streaming writer for trace files.
///
/// The op count lives in the header, so the writer buffers records and
/// emits everything on [`TraceWriter::finish`]. A mutable reference can
/// be passed as the writer (`&mut Vec<u8>`, `&mut File`).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    records: Vec<u8>,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over `sink`.
    pub fn new(sink: W) -> Self {
        Self {
            sink,
            records: Vec::new(),
            count: 0,
        }
    }

    /// Number of ops written so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends one µop.
    ///
    /// # Errors
    ///
    /// Infallible in practice (records are buffered); the `Result`
    /// mirrors the I/O-backed API shape.
    pub fn write_op(&mut self, op: &MicroOp) -> io::Result<()> {
        let buf = &mut self.records;
        match op.kind() {
            OpKind::IntAlu { latency } => {
                buf.push(TAG_INT);
                buf.push(latency);
            }
            OpKind::FpAlu { latency } => {
                buf.push(TAG_FP);
                buf.push(latency);
            }
            OpKind::Load { addr, size } => {
                buf.push(TAG_LOAD);
                buf.push(size);
                buf.extend_from_slice(&addr.to_le_bytes());
            }
            OpKind::Store { addr, size } => {
                buf.push(TAG_STORE);
                buf.push(size);
                buf.extend_from_slice(&addr.to_le_bytes());
            }
            OpKind::Branch { mispredict } => {
                buf.push(TAG_BRANCH);
                buf.push(u8::from(mispredict));
            }
        }
        buf.extend_from_slice(&op.pc().to_le_bytes());
        buf.extend_from_slice(&op.deps()[0].to_le_bytes());
        buf.extend_from_slice(&op.deps()[1].to_le_bytes());
        self.count += 1;
        Ok(())
    }

    /// Writes header + records to the sink and flushes.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> io::Result<()> {
        self.sink.write_all(&MAGIC)?;
        self.sink.write_all(&VERSION.to_le_bytes())?;
        self.sink.write_all(&0u16.to_le_bytes())?;
        self.sink.write_all(&self.count.to_le_bytes())?;
        self.sink.write_all(&self.records)?;
        self.sink.flush()
    }
}

/// Streaming reader for trace files; implements [`TraceSource`] so a
/// recorded trace can drive a core directly.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    remaining: u64,
    total: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, bad magic, or an
    /// unsupported version.
    pub fn new(mut source: R) -> Result<Self, ReadTraceError> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(ReadTraceError::BadMagic(magic));
        }
        let mut u16buf = [0u8; 2];
        source.read_exact(&mut u16buf)?;
        let version = u16::from_le_bytes(u16buf);
        if version != VERSION {
            return Err(ReadTraceError::UnsupportedVersion(version));
        }
        source.read_exact(&mut u16buf)?; // reserved
        let mut u64buf = [0u8; 8];
        source.read_exact(&mut u64buf)?;
        let total = u64::from_le_bytes(u64buf);
        Ok(Self {
            source,
            remaining: total,
            total,
        })
    }

    /// Total ops in the trace.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the trace holds no ops.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Ops not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn read_record(&mut self) -> Result<MicroOp, ReadTraceError> {
        let mut tag = [0u8; 1];
        self.source.read_exact(&mut tag)?;
        let mut b1 = [0u8; 1];
        let mut b8 = [0u8; 8];
        let mut b2 = [0u8; 2];
        let kind = match tag[0] {
            TAG_INT => {
                self.source.read_exact(&mut b1)?;
                OpKind::IntAlu { latency: b1[0] }
            }
            TAG_FP => {
                self.source.read_exact(&mut b1)?;
                OpKind::FpAlu { latency: b1[0] }
            }
            TAG_LOAD => {
                self.source.read_exact(&mut b1)?;
                self.source.read_exact(&mut b8)?;
                OpKind::Load {
                    addr: u64::from_le_bytes(b8),
                    size: b1[0],
                }
            }
            TAG_STORE => {
                self.source.read_exact(&mut b1)?;
                self.source.read_exact(&mut b8)?;
                OpKind::Store {
                    addr: u64::from_le_bytes(b8),
                    size: b1[0],
                }
            }
            TAG_BRANCH => {
                self.source.read_exact(&mut b1)?;
                OpKind::Branch {
                    mispredict: b1[0] != 0,
                }
            }
            t => return Err(ReadTraceError::BadTag(t)),
        };
        self.source.read_exact(&mut b8)?;
        let pc = u64::from_le_bytes(b8);
        self.source.read_exact(&mut b2)?;
        let d0 = u16::from_le_bytes(b2);
        self.source.read_exact(&mut b2)?;
        let d1 = u16::from_le_bytes(b2);
        Ok(MicroOp::new(kind, pc).with_dep(d0).with_dep(d1))
    }
}

impl<R: Read> TraceSource for TraceReader<R> {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.remaining == 0 {
            return None;
        }
        match self.read_record() {
            Ok(op) => {
                self.remaining -= 1;
                Some(op)
            }
            Err(_) => {
                // A truncated/corrupt tail ends the trace; the header
                // count is advisory for streaming consumers.
                self.remaining = 0;
                None
            }
        }
    }
}

/// Records up to `max_ops` from `source` into `sink`, returning the
/// number written.
///
/// # Errors
///
/// Propagates sink I/O errors.
pub fn record<S: TraceSource, W: Write>(source: &mut S, sink: W, max_ops: u64) -> io::Result<u64> {
    let mut w = TraceWriter::new(sink);
    while w.len() < max_ops {
        match source.next_op() {
            Some(op) => w.write_op(&op)?,
            None => break,
        }
    }
    let n = w.len();
    w.finish()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{ComputeGen, ComputeParams, MemcpyGen};
    use crate::profile::AppProfile;
    use crate::CodeRegion;

    fn round_trip(ops: &[MicroOp]) -> Vec<MicroOp> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for op in ops {
            w.write_op(op).unwrap();
        }
        w.finish().unwrap();
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.len(), ops.len() as u64);
        let mut out = Vec::new();
        while let Some(op) = r.next_op() {
            out.push(op);
        }
        out
    }

    #[test]
    fn round_trips_every_op_kind() {
        let ops = vec![
            MicroOp::new(OpKind::IntAlu { latency: 1 }, 0x400),
            MicroOp::new(OpKind::FpAlu { latency: 22 }, 0x404).with_dep(1),
            MicroOp::new(
                OpKind::Load {
                    addr: 0xdead_beef,
                    size: 8,
                },
                0x408,
            )
            .with_dep(2)
            .with_dep(1),
            MicroOp::new(
                OpKind::Store {
                    addr: 0xfeed_f00d,
                    size: 4,
                },
                0x40c,
            )
            .with_dep(3),
            MicroOp::new(OpKind::Branch { mispredict: true }, 0x410),
            MicroOp::new(OpKind::Branch { mispredict: false }, 0x414),
        ];
        assert_eq!(round_trip(&ops), ops);
    }

    #[test]
    fn round_trips_a_real_generator() {
        let mut gen = MemcpyGen::new(0x10_0000, 0x20_0000, 4096, CodeRegion::Memcpy, 9);
        let mut ops = Vec::new();
        while let Some(op) = gen.next_op() {
            ops.push(op);
        }
        assert_eq!(round_trip(&ops), ops);
    }

    #[test]
    fn record_caps_at_max_ops() {
        let mut gen = ComputeGen::new(
            ComputeParams {
                count: 10_000,
                ..Default::default()
            },
            1,
        );
        let mut buf = Vec::new();
        let n = record(&mut gen, &mut buf, 500).unwrap();
        assert_eq!(n, 500);
        let r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.len(), 500);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TraceReader::new(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncated_trace_ends_cleanly() {
        let ops = vec![MicroOp::new(OpKind::IntAlu { latency: 1 }, 0x1); 10];
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for op in &ops {
            w.write_op(op).unwrap();
        }
        w.finish().unwrap();
        buf.truncate(buf.len() - 5); // chop the last record
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        let mut read = 0;
        while r.next_op().is_some() {
            read += 1;
        }
        assert_eq!(
            read, 9,
            "all complete records readable, corrupt tail dropped"
        );
    }

    #[test]
    fn recorded_profile_drives_a_core_identically() {
        use spb_stats::summary::normalize;
        // Record 5k ops of a profile, replay through the reader, and
        // check the op streams agree (the reader is a TraceSource).
        let app = AppProfile::by_name("gcc").unwrap();
        let mut live = app.build(3);
        let mut buf = Vec::new();
        let n = record(&mut app.build(3), &mut buf, 5_000).unwrap();
        assert_eq!(n, 5_000);
        let mut replay = TraceReader::new(buf.as_slice()).unwrap();
        for _ in 0..5_000 {
            assert_eq!(live.next_op(), replay.next_op());
        }
        assert_eq!(replay.next_op(), None);
        let _ = normalize(1.0, 1.0); // keep the dev-dependency honest
    }
}

//! Trace IR and synthetic workload generation for the SPB simulator.
//!
//! The paper evaluates on SPEC CPU 2017 and PARSEC running under gem5
//! full-system simulation. Neither benchmark suite can ship with this
//! repository, so this crate provides the substitution required by the
//! reproduction plan: a µop-level trace IR ([`MicroOp`]) plus synthetic
//! generators that produce exactly the access patterns the paper itself
//! identifies as the source of SB-induced stalls (§III-B, Figure 3):
//!
//! - `memcpy`/`memset`/`calloc` style contiguous 8-byte store bursts in
//!   library code ([`generators::MemcpyGen`], [`generators::MemsetGen`]);
//! - kernel `clear_page` bursts ([`generators::ClearPageGen`]);
//! - manual data-movement loops in application code, optionally shuffled
//!   by loop unrolling (the `roms` pathology);
//! - plus the surrounding "everything else": compute chains, strided
//!   loads, pointer chasing, sparse stores and branches.
//!
//! Each SPEC/PARSEC application is modelled by an [`profile::AppProfile`]
//! that mixes those primitives in proportions chosen so the application
//! lands in the paper's SB-bound or non-SB-bound class.
//!
//! Everything is deterministic under a fixed seed (ChaCha8 RNG).
//!
//! # Examples
//!
//! ```
//! use spb_trace::{profile::AppProfile, TraceSource};
//!
//! let bwaves = AppProfile::spec2017()
//!     .into_iter()
//!     .find(|p| p.name() == "bwaves")
//!     .unwrap();
//! let mut source = bwaves.build(42);
//! let op = source.next_op().expect("profiles generate unbounded traces");
//! println!("first µop: {op:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod file;
pub mod generators;
pub mod op;
pub mod phased;
pub mod profile;
pub mod region;
pub mod rng;
pub mod squash;

pub use op::{MicroOp, OpKind};
pub use phased::PhasedWorkload;
pub use region::CodeRegion;
pub use squash::{SquashConfig, SquashInjector};

/// A source of µops to feed a simulated core.
///
/// Implementations are either finite (one phase of a workload) or
/// unbounded (a whole application profile, which loops its region of
/// interest forever — the simulator decides when to stop).
pub trait TraceSource {
    /// Produces the next µop, or `None` when the source is exhausted.
    fn next_op(&mut self) -> Option<MicroOp>;
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_op(&mut self) -> Option<MicroOp> {
        (**self).next_op()
    }
}

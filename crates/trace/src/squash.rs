//! Seeded misprediction model: wrong-path store streams and squashes.
//!
//! The paper's policies differ in *when* they expose a store to the
//! memory system: at-commit waits until the store is architectural,
//! at-execute and SPB act while it is still speculative. That gap only
//! matters when speculation is wrong — a squashed wrong-path store burst
//! has already pulled remote lines into M state by the time the pipeline
//! recovers, which is exactly the footprint the transient-execution
//! literature (ret2spec, speculative buffer overflows) exploits.
//!
//! [`SquashConfig`] describes a deterministic misprediction workload:
//! with probability `rate` a branch *group* (groups of `storm`
//! consecutive branches, so storms of back-to-back squashes can be
//! modeled) mispredicts, and each misprediction fetches a run of
//! `depth_min..=depth_max` wrong-path stores before the squash.
//! [`SquashInjector`] wraps any [`TraceSource`] and splices those runs —
//! marked with [`MicroOp::is_wrong_path`] — into the stream after the
//! triggering branch. Wrong-path stores target a reserved address region
//! disjoint from every application footprint and disjoint per core, one
//! fresh page span per episode, so every speculatively-touched block is
//! attributable and never architecturally stored.
//!
//! Everything is a pure function of `(seed, core, branch index, episode
//! index)`: the trigger stream does not depend on the depth draws, so
//! deepening the depth distribution never changes *which* branches
//! squash — the property the monotonicity tests in `spb-verify` rely on.
//! With `rate == 0` no draw is ever made and the injector is never even
//! constructed by the simulator, keeping the baseline bit-identical.

use crate::op::{MicroOp, OpKind, BLOCKS_PER_PAGE, BLOCK_BYTES, PAGE_BYTES};
use crate::TraceSource;

/// Base of the reserved wrong-path address region (well above every
/// synthetic application footprint, which top out below a terabyte).
const WRONG_PATH_BASE: u64 = 0x6000_0000_0000;
/// Address span reserved per core (1 TiB): episodes never collide
/// across cores.
const WRONG_PATH_CORE_SPAN: u64 = 1 << 40;
/// Synthetic PC for injected wrong-path stores (outside every
/// [`crate::region::CodeRegion`] window used by the generators).
const WRONG_PATH_PC: u64 = 0xDEAD_0000;
/// Fixed-point denominator for the trigger rate (1e-4 resolution).
const RATE_DENOM: u64 = 10_000;

/// SplitMix64 finalizer (local copy of the [`crate::rng`] idiom; that
/// one is module-private and stateful, this one is used statelessly).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless draw: a well-mixed 64-bit hash of `(a, b)`.
fn hash2(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// A seeded misprediction workload description.
///
/// The canonical textual form round-trips through
/// [`SquashConfig::parse`] / [`SquashConfig::label`]:
///
/// ```
/// use spb_trace::squash::SquashConfig;
///
/// let p = SquashConfig::parse("rate=0.05,depth=8..32,storm=4,ret2spec=on,seed=7").unwrap();
/// assert_eq!(SquashConfig::parse(&p.label()).unwrap(), p);
/// assert!(p.enabled());
/// assert!(!SquashConfig::none().enabled());
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct SquashConfig {
    /// Probability that a branch group mispredicts (0.0 disables the
    /// model entirely; resolution 1e-4).
    pub rate: f64,
    /// Minimum wrong-path stores per squash episode.
    pub depth_min: u32,
    /// Maximum wrong-path stores per squash episode (inclusive).
    pub depth_max: u32,
    /// Branches per trigger group: one draw covers `storm` consecutive
    /// branches, so a hit produces that many back-to-back episodes — a
    /// squash storm. `1` = independent branches.
    pub storm: u32,
    /// ret2spec-style mode: wrong-path stores walk *downward* (a
    /// corrupted return-stack speculation writing down the stack)
    /// instead of upward memcpy-style.
    pub ret2spec: bool,
    /// Seed for the trigger and depth draws (salted per core).
    pub seed: u64,
}

impl SquashConfig {
    /// The disabled model: no draws, no injection, bit-identical runs.
    pub fn none() -> Self {
        Self {
            rate: 0.0,
            depth_min: 8,
            depth_max: 32,
            storm: 1,
            ret2spec: false,
            seed: 0,
        }
    }

    /// Whether any squash episode can ever trigger.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0 && self.depth_max > 0
    }

    /// The trigger rate in fixed-point tenth-of-percent units.
    pub fn threshold(&self) -> u64 {
        (self.rate * RATE_DENOM as f64).round() as u64
    }

    /// Canonical textual form (see [`SquashConfig::parse`]).
    pub fn label(&self) -> String {
        format!(
            "rate={},depth={}..{},storm={},ret2spec={},seed={}",
            self.rate,
            self.depth_min,
            self.depth_max,
            self.storm,
            if self.ret2spec { "on" } else { "off" },
            self.seed
        )
    }

    /// Parses `key=value` pairs: `rate=0.05,depth=8..32,storm=4,`
    /// `ret2spec=on,seed=7`. Omitted keys keep the [`SquashConfig::none`]
    /// defaults (so `rate=0.1` alone is a valid spec); `parse(label())`
    /// is the identity.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key and its valid range.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = Self::none();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("squash spec {part:?}: expected key=value"))?;
            match key {
                "rate" => {
                    let r: f64 = value
                        .parse()
                        .map_err(|_| format!("squash rate {value:?}: expected a number"))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(format!("squash rate {r} out of range 0.0..=1.0"));
                    }
                    cfg.rate = r;
                }
                "depth" => {
                    let (lo, hi) = value
                        .split_once("..")
                        .ok_or_else(|| format!("squash depth {value:?}: expected MIN..MAX"))?;
                    cfg.depth_min = lo
                        .parse()
                        .map_err(|_| format!("squash depth min {lo:?}: expected an integer"))?;
                    cfg.depth_max = hi
                        .parse()
                        .map_err(|_| format!("squash depth max {hi:?}: expected an integer"))?;
                    if cfg.depth_min > cfg.depth_max {
                        return Err(format!(
                            "squash depth {}..{}: min exceeds max",
                            cfg.depth_min, cfg.depth_max
                        ));
                    }
                    if cfg.depth_max > 4096 {
                        return Err(format!(
                            "squash depth max {} out of range 0..=4096",
                            cfg.depth_max
                        ));
                    }
                }
                "storm" => {
                    let s: u32 = value
                        .parse()
                        .map_err(|_| format!("squash storm {value:?}: expected an integer"))?;
                    if s == 0 || s > 1024 {
                        return Err(format!("squash storm {s} out of range 1..=1024"));
                    }
                    cfg.storm = s;
                }
                "ret2spec" => {
                    cfg.ret2spec = match value {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(format!("squash ret2spec {other:?}: expected on or off"))
                        }
                    };
                }
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("squash seed {value:?}: expected an integer"))?;
                }
                other => {
                    return Err(format!(
                        "unknown squash key {other:?}; valid keys: rate, depth, storm, ret2spec, seed"
                    ))
                }
            }
        }
        Ok(cfg)
    }

    /// Whether branch number `branch_idx` (0-based, per core) triggers a
    /// squash episode for `core`. Pure: independent of the depth draws.
    pub fn triggers(&self, core: usize, branch_idx: u64) -> bool {
        let threshold = self.threshold();
        if threshold == 0 {
            return false;
        }
        let salt = hash2(self.seed, core as u64 + 1);
        let group = branch_idx / u64::from(self.storm);
        hash2(salt, group) % RATE_DENOM < threshold
    }
}

impl std::fmt::Debug for SquashConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SquashConfig({})", self.label())
    }
}

/// One planned wrong-path store run: `depth` stores starting at `start`,
/// stepping by `step` bytes (negative in ret2spec mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrongPathRun {
    /// Number of wrong-path stores in the run.
    pub depth: u32,
    /// Byte address of the first store.
    pub start: u64,
    /// Byte step between consecutive stores (±[`BLOCK_BYTES`]).
    pub step: i64,
}

impl WrongPathRun {
    /// The byte address of store number `i` of the run.
    pub fn addr(&self, i: u32) -> u64 {
        (self.start as i64 + self.step * i64::from(i)) as u64
    }

    /// Every cache block the run touches, in store order.
    pub fn blocks(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.depth).map(|i| self.addr(i) / BLOCK_BYTES)
    }
}

/// The pure address/depth plan for one core's squash episodes.
///
/// Both [`SquashInjector`] (live, inside the simulated front end) and
/// the leak oracle in `spb-verify` (offline, replaying the first `E`
/// episodes) walk this plan, which is what makes the oracle exact:
/// episode `i` deterministically maps to a depth and a fresh, private
/// page span.
#[derive(Debug, Clone)]
pub struct EpisodePlan {
    cfg: SquashConfig,
    salt: u64,
    region_base: u64,
    episodes: u64,
    pages_used: u64,
}

impl EpisodePlan {
    /// The plan for `core` under `cfg`.
    pub fn new(cfg: &SquashConfig, core: usize) -> Self {
        Self {
            cfg: *cfg,
            salt: hash2(cfg.seed, core as u64 + 1),
            region_base: WRONG_PATH_BASE + core as u64 * WRONG_PATH_CORE_SPAN,
            episodes: 0,
            pages_used: 0,
        }
    }

    /// Plans the next episode: a depth draw plus a fresh page span no
    /// earlier episode (of any core) touches.
    pub fn next_episode(&mut self) -> WrongPathRun {
        let span = u64::from(self.cfg.depth_max - self.cfg.depth_min) + 1;
        let depth = self.cfg.depth_min
            + (hash2(self.salt ^ 0xD3_17, self.episodes) % span) as u32;
        self.episodes += 1;
        let pages = u64::from(depth).div_ceil(BLOCKS_PER_PAGE).max(1);
        let first_page = self.pages_used;
        self.pages_used += pages;
        let lo = self.region_base + first_page * PAGE_BYTES;
        if self.cfg.ret2spec {
            // Stack-like: walk downward from the top of the span.
            WrongPathRun {
                depth,
                start: lo + pages * PAGE_BYTES - BLOCK_BYTES,
                step: -(BLOCK_BYTES as i64),
            }
        } else {
            // memcpy-like: walk upward from the bottom.
            WrongPathRun {
                depth,
                start: lo,
                step: BLOCK_BYTES as i64,
            }
        }
    }

    /// Episodes planned so far.
    pub fn planned(&self) -> u64 {
        self.episodes
    }
}

/// Wraps a [`TraceSource`], splicing wrong-path store runs in after
/// triggering branches (see the module docs for the model).
///
/// The wrapped stream's *correct-path* ops are exactly the inner
/// stream's ops, in order: injection never consumes or reorders an
/// inner op, so committed work is independent of the squash model.
pub struct SquashInjector<T> {
    inner: T,
    cfg: SquashConfig,
    core: usize,
    plan: EpisodePlan,
    branches_seen: u64,
    /// Remaining wrong-path stores of the active episode.
    pending: u32,
    run: WrongPathRun,
}

impl<T: TraceSource> SquashInjector<T> {
    /// Wraps `inner` with the squash model for `core`.
    pub fn new(inner: T, cfg: SquashConfig, core: usize) -> Self {
        Self {
            inner,
            cfg,
            core,
            plan: EpisodePlan::new(&cfg, core),
            branches_seen: 0,
            pending: 0,
            run: WrongPathRun {
                depth: 0,
                start: 0,
                step: 0,
            },
        }
    }

    /// Episodes triggered so far.
    pub fn episodes(&self) -> u64 {
        self.plan.planned()
    }
}

impl<T: TraceSource> TraceSource for SquashInjector<T> {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.pending > 0 {
            let i = self.run.depth - self.pending;
            self.pending -= 1;
            let addr = self.run.addr(i);
            return Some(
                MicroOp::new(OpKind::Store { addr, size: 8 }, WRONG_PATH_PC).with_wrong_path(),
            );
        }
        let op = self.inner.next_op()?;
        if matches!(op.kind(), OpKind::Branch { .. }) {
            let idx = self.branches_seen;
            self.branches_seen += 1;
            if self.cfg.triggers(self.core, idx) {
                self.run = self.plan.next_episode();
                self.pending = self.run.depth;
            }
        }
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed finite op sequence.
    struct Fixed(std::vec::IntoIter<MicroOp>);
    impl TraceSource for Fixed {
        fn next_op(&mut self) -> Option<MicroOp> {
            self.0.next()
        }
    }

    fn branchy(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    MicroOp::new(OpKind::Branch { mispredict: false }, 0x100 + i as u64)
                } else {
                    MicroOp::new(OpKind::IntAlu { latency: 1 }, 0x100 + i as u64)
                }
            })
            .collect()
    }

    #[test]
    fn label_parse_round_trip() {
        for spec in [
            "rate=0.05,depth=8..32,storm=4,ret2spec=on,seed=7",
            "rate=0.2",
            "rate=0.0001,depth=1..1,storm=1,ret2spec=off,seed=0",
            "",
        ] {
            let p = SquashConfig::parse(spec).unwrap();
            assert_eq!(SquashConfig::parse(&p.label()).unwrap(), p, "{spec}");
        }
    }

    #[test]
    fn parse_rejects_bad_specs_with_named_keys() {
        for (spec, needle) in [
            ("rate=2.0", "rate"),
            ("rate=x", "rate"),
            ("depth=9..3", "min exceeds max"),
            ("depth=8", "MIN..MAX"),
            ("depth=0..9000", "4096"),
            ("storm=0", "storm"),
            ("ret2spec=maybe", "ret2spec"),
            ("seed=abc", "seed"),
            ("bogus=1", "valid keys"),
            ("rate", "key=value"),
        ] {
            let err = SquashConfig::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn none_is_disabled_and_triggers_nothing() {
        let cfg = SquashConfig::none();
        assert!(!cfg.enabled());
        assert!((0..10_000).all(|i| !cfg.triggers(0, i)));
    }

    #[test]
    fn rate_zero_injector_is_a_passthrough() {
        let ops = branchy(200);
        let mut plain = Fixed(ops.clone().into_iter());
        let mut wrapped = SquashInjector::new(Fixed(ops.into_iter()), SquashConfig::none(), 0);
        loop {
            let (a, b) = (plain.next_op(), wrapped.next_op());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn injection_preserves_the_correct_path_stream() {
        let cfg = SquashConfig::parse("rate=0.5,depth=4..8,seed=3").unwrap();
        let ops = branchy(300);
        let mut wrapped = SquashInjector::new(Fixed(ops.clone().into_iter()), cfg, 0);
        let mut correct = Vec::new();
        let mut wrong = 0u32;
        while let Some(op) = wrapped.next_op() {
            if op.is_wrong_path() {
                assert!(op.kind().is_store());
                wrong += 1;
            } else {
                correct.push(op);
            }
        }
        assert_eq!(correct, ops, "inner stream must pass through untouched");
        assert!(wrong >= 4, "rate 0.5 over 100 branches must trigger");
        assert!(wrapped.episodes() > 0);
    }

    #[test]
    fn trigger_stream_is_independent_of_depth() {
        let shallow = SquashConfig::parse("rate=0.3,depth=1..2,seed=9").unwrap();
        let deep = SquashConfig::parse("rate=0.3,depth=64..128,seed=9").unwrap();
        for core in 0..3 {
            for i in 0..5_000 {
                assert_eq!(shallow.triggers(core, i), deep.triggers(core, i));
            }
        }
    }

    #[test]
    fn storms_trigger_consecutive_branch_groups() {
        let cfg = SquashConfig::parse("rate=0.2,storm=8,seed=1").unwrap();
        // Every branch in a triggered group of 8 triggers with it.
        let mut any_group = None;
        for g in 0..1_000 {
            if cfg.triggers(0, g * 8) {
                any_group = Some(g);
                break;
            }
        }
        let g = any_group.expect("rate 0.2 must trigger within 1000 groups");
        for b in g * 8..(g + 1) * 8 {
            assert!(cfg.triggers(0, b));
        }
    }

    #[test]
    fn episode_plan_spans_are_disjoint_and_in_the_reserved_region() {
        let cfg = SquashConfig::parse("rate=1,depth=1..200,seed=5").unwrap();
        let mut seen = std::collections::HashSet::new();
        for core in 0..2 {
            let mut plan = EpisodePlan::new(&cfg, core);
            for _ in 0..100 {
                let run = plan.next_episode();
                assert!(run.depth >= 1 && run.depth <= 200);
                for b in run.blocks() {
                    assert!(b * BLOCK_BYTES >= WRONG_PATH_BASE, "block {b:#x}");
                    assert!(seen.insert(b), "block {b:#x} reused across episodes");
                }
            }
        }
    }

    #[test]
    fn ret2spec_walks_downward() {
        let cfg = SquashConfig::parse("rate=1,depth=16..16,ret2spec=on,seed=2").unwrap();
        let mut plan = EpisodePlan::new(&cfg, 0);
        let run = plan.next_episode();
        assert_eq!(run.step, -(BLOCK_BYTES as i64));
        let blocks: Vec<u64> = run.blocks().collect();
        assert!(blocks.windows(2).all(|w| w[1] + 1 == w[0]), "{blocks:?}");
    }

    #[test]
    fn plans_are_deterministic() {
        let cfg = SquashConfig::parse("rate=0.1,depth=4..64,seed=11").unwrap();
        let mut a = EpisodePlan::new(&cfg, 1);
        let mut b = EpisodePlan::new(&cfg, 1);
        for _ in 0..50 {
            assert_eq!(a.next_episode(), b.next_episode());
        }
    }

    #[test]
    fn debug_renders_the_label() {
        let cfg = SquashConfig::parse("rate=0.05,seed=3").unwrap();
        assert_eq!(
            format!("{cfg:?}"),
            "SquashConfig(rate=0.05,depth=8..32,storm=1,ret2spec=off,seed=3)"
        );
    }
}

//! Application profiles standing in for SPEC CPU 2017 and PARSEC.
//!
//! The paper's evaluation is driven by which applications are *SB-bound*
//! (more than 2% of cycles stalled on a full 56-entry SB): `bwaves`,
//! `cactuBSSN`, `x264`, `blender`, `cam4`, `deepsjeng`, `fotonik3d` and
//! `roms` for SPEC; `bodytrack`, `dedup`, `ferret` and `x264` for PARSEC.
//! Each [`AppProfile`] here mixes the generator primitives so the
//! application lands in the paper's class and exhibits the stall *source*
//! Figure 3 attributes to it (memcpy vs memset/calloc vs kernel
//! `clear_page` vs application code).
//!
//! The profiles are syntheses, not the real benchmarks: absolute IPCs are
//! meaningless, but the relative behaviour under SB sizing and prefetch
//! policy — which is all the paper's figures plot — is preserved by
//! construction.

use crate::generators::ComputeParams;
use crate::phased::{PhaseSpec, PhasedWorkload};
use crate::region::CodeRegion;

/// Which benchmark suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2017 (single-threaded rate runs).
    Spec2017,
    /// PARSEC 3.0 with 8 threads and `simlarge`-like behaviour.
    Parsec,
}

/// A synthetic stand-in for one benchmark application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    name: String,
    suite: Suite,
    sb_bound: bool,
    threads: u32,
    phases: Vec<PhaseSpec>,
}

impl AppProfile {
    /// Creates a profile from parts. Prefer the [`AppProfile::spec2017`]
    /// and [`AppProfile::parsec`] suites; this constructor exists for
    /// custom experiments.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or `threads` is zero.
    pub fn new(
        name: impl Into<String>,
        suite: Suite,
        sb_bound: bool,
        threads: u32,
        phases: Vec<PhaseSpec>,
    ) -> Self {
        assert!(threads > 0, "an application needs at least one thread");
        assert!(
            !phases.is_empty(),
            "an application needs at least one phase"
        );
        Self {
            name: name.into(),
            suite,
            sb_bound,
            threads,
            phases,
        }
    }

    /// The benchmark's name as used in the paper's figures.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The suite this application belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Whether the paper classifies this application as SB-bound
    /// (>2% SB-induced stalls with a 56-entry SB at-commit baseline).
    pub fn is_sb_bound(&self) -> bool {
        self.sb_bound
    }

    /// Number of threads the application runs (1 for SPEC, 8 for PARSEC).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The phase list backing this profile.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Builds the single-threaded trace source (thread 0).
    pub fn build(&self, seed: u64) -> PhasedWorkload {
        PhasedWorkload::for_thread(self.phases.clone(), seed, 0)
    }

    /// Builds one trace source per thread for multi-threaded runs.
    pub fn build_threads(&self, seed: u64) -> Vec<PhasedWorkload> {
        (0..self.threads)
            .map(|t| PhasedWorkload::for_thread(self.phases.clone(), seed, t))
            .collect()
    }

    /// The full SPEC CPU 2017 suite (23 applications).
    ///
    /// Convenience for [`AppCatalog::standard`]`().suite(Suite::Spec2017)`.
    pub fn spec2017() -> Vec<AppProfile> {
        AppCatalog::standard().suite(Suite::Spec2017)
    }

    /// The SB-bound subset of SPEC CPU 2017, in the paper's order.
    pub fn spec2017_sb_bound() -> Vec<AppProfile> {
        AppCatalog::standard().sb_bound(Suite::Spec2017)
    }

    /// The PARSEC suite (11 applications; `freqmine` and `raytrace` are
    /// excluded exactly as in the paper).
    ///
    /// Convenience for [`AppCatalog::standard`]`().suite(Suite::Parsec)`.
    pub fn parsec() -> Vec<AppProfile> {
        AppCatalog::standard().suite(Suite::Parsec)
    }

    /// Looks up a profile by name in both suites.
    ///
    /// # Errors
    ///
    /// Returns an [`UnknownApp`] carrying the failed name and the full
    /// list of valid names (its `Display` puts them in the message, so
    /// `.unwrap()`/`?` give a usable diagnostic instead of a bare
    /// `None`).
    pub fn by_name(name: &str) -> Result<AppProfile, UnknownApp> {
        AppCatalog::standard().by_name(name).cloned()
    }
}

/// The catalog of every synthetic application, with suite grouping.
///
/// Owns the iteration and lookup that used to be scattered across
/// hard-coded lists: CLI commands, suite runners and experiment
/// regenerators all pull their application sets from here, so the one
/// place that knows which applications exist — and which of them the
/// paper calls SB-bound — is this type. [`AppProfile::spec2017`],
/// [`AppProfile::parsec`] and [`AppProfile::by_name`] remain as thin
/// conveniences over [`AppCatalog::standard`].
#[derive(Debug, Clone, PartialEq)]
pub struct AppCatalog {
    apps: Vec<AppProfile>,
}

impl AppCatalog {
    /// The paper's evaluation set: SPEC CPU 2017 followed by PARSEC,
    /// each in the paper's figure order.
    pub fn standard() -> Self {
        let mut apps = spec2017_profiles();
        apps.extend(parsec_profiles());
        Self { apps }
    }

    /// A catalog over a custom application set (for experiments that
    /// mix their own profiles with the standard ones).
    pub fn from_apps(apps: Vec<AppProfile>) -> Self {
        Self { apps }
    }

    /// Every application, SPEC first, in figure order.
    pub fn all(&self) -> &[AppProfile] {
        &self.apps
    }

    /// The applications of one suite, in figure order.
    pub fn suite(&self, suite: Suite) -> Vec<AppProfile> {
        self.apps
            .iter()
            .filter(|p| p.suite() == suite)
            .cloned()
            .collect()
    }

    /// Resolves a user-facing suite name (`"spec"`, `"spec2017"`,
    /// `"parsec"`) to its applications; `None` for unknown names.
    pub fn suite_named(&self, name: &str) -> Option<Vec<AppProfile>> {
        match name {
            "spec" | "spec2017" => Some(self.suite(Suite::Spec2017)),
            "parsec" => Some(self.suite(Suite::Parsec)),
            _ => None,
        }
    }

    /// The SB-bound subset of one suite, in figure order.
    pub fn sb_bound(&self, suite: Suite) -> Vec<AppProfile> {
        self.apps
            .iter()
            .filter(|p| p.suite() == suite && p.is_sb_bound())
            .cloned()
            .collect()
    }

    /// Looks an application up by name.
    ///
    /// # Errors
    ///
    /// Returns an [`UnknownApp`] listing every valid name.
    pub fn by_name(&self, name: &str) -> Result<&AppProfile, UnknownApp> {
        self.apps
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| UnknownApp {
                name: name.to_string(),
                valid: self.names().iter().map(ToString::to_string).collect(),
            })
    }

    /// Every application name, in catalog order.
    pub fn names(&self) -> Vec<&str> {
        self.apps.iter().map(|p| p.name.as_str()).collect()
    }
}

/// The error [`AppProfile::by_name`] returns for a name that matches no
/// application in either suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownApp {
    /// The name that failed to resolve.
    pub name: String,
    /// Every valid application name (SPEC 2017 first, then PARSEC).
    pub valid: Vec<String>,
}

impl std::fmt::Display for UnknownApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown application {:?}; valid names: {}",
            self.name,
            self.valid.join(", ")
        )
    }
}

impl std::error::Error for UnknownApp {}

/// Compute filler with "typical" behaviour.
fn compute(count: u64, fp_ratio: f64, mispredict_rate: f64) -> PhaseSpec {
    PhaseSpec::Compute(ComputeParams {
        count,
        fp_ratio,
        mispredict_rate,
        branch_every: 6,
        dep_density: 0.4,
    })
}

/// A big footprint that never fits in the 16 MiB L3, so data-movement
/// phases keep missing all the way to memory (compulsory misses), which
/// is what exposes store latency and fills the SB.
const BIG_FOOTPRINT_PAGES: u64 = 1 << 15; // 128 MiB

/// A small, cache-resident pool for latency-bound pointer chasing.
const SMALL_POOL_PAGES: u64 = 256; // 1 MiB
fn spec2017_profiles() -> Vec<AppProfile> {
    use CodeRegion::*;
    let mut v = Vec::new();
    let app = |name: &str, sb: bool, phases: Vec<PhaseSpec>| {
        AppProfile::new(name, Suite::Spec2017, sb, 1, phases)
    };

    // ---- SB-bound applications (paper SectionV) --------------------------
    // Burst intensities are calibrated so the at-commit SB56 baseline
    // shows a few percent of SB-induced stalls (the paper's >2%
    // SB-bound criterion) and small SBs hurt roughly as Figure 6 shows:
    // bwaves/x264/fotonik3d/roms severely, the others mildly.

    // bwaves: FP stencil; the OS hands it fresh pages it then fills —
    // kernel clear_page bursts (Figure 3) plus FP streaming.
    v.push(app(
        "bwaves",
        true,
        vec![
            compute(48000, 0.7, 0.004),
            PhaseSpec::ClearPages {
                pages: 4,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
            PhaseSpec::StrideLoads {
                count: 700,
                stride: 8,
                fp: true,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
            compute(32000, 0.7, 0.004),
        ],
    ));

    // cactuBSSN: grid relaxation with calloc'd buffers; mild bursts.
    v.push(app(
        "cactuBSSN",
        true,
        vec![
            compute(64000, 0.8, 0.003),
            PhaseSpec::Memset {
                bytes: 4096,
                region: Calloc,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
            PhaseSpec::StrideLoads {
                count: 1000,
                stride: 8,
                fp: true,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
            compute(32000, 0.8, 0.003),
        ],
    ));

    // x264: motion compensation memcpy's frames around — the canonical
    // library-located store burst; severely hurt by small SBs.
    v.push(app(
        "x264",
        true,
        vec![
            compute(44000, 0.2, 0.012),
            PhaseSpec::Memcpy {
                bytes: 10240,
                region: Memcpy,
                footprint_pages: BIG_FOOTPRINT_PAGES,
                shuffle: false,
            },
            compute(28000, 0.2, 0.012),
            PhaseSpec::StrideLoads {
                count: 400,
                stride: 16,
                fp: false,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
        ],
    ));

    // blender: render buffers memcpy'd between passes; mild.
    v.push(app(
        "blender",
        true,
        vec![
            compute(72000, 0.5, 0.008),
            PhaseSpec::Memcpy {
                bytes: 8192,
                region: Memcpy,
                footprint_pages: BIG_FOOTPRINT_PAGES,
                shuffle: false,
            },
            compute(40000, 0.5, 0.008),
            PhaseSpec::PointerChase {
                count: 200,
                pool_pages: SMALL_POOL_PAGES,
            },
        ],
    ));

    // cam4: memset of accumulation arrays plus halo-exchange memcpy; mild.
    v.push(app(
        "cam4",
        true,
        vec![
            compute(56000, 0.7, 0.005),
            PhaseSpec::Memset {
                bytes: 4096,
                region: Memset,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
            compute(32000, 0.7, 0.005),
            PhaseSpec::Memcpy {
                bytes: 2048,
                region: Memcpy,
                footprint_pages: BIG_FOOTPRINT_PAGES,
                shuffle: false,
            },
        ],
    ));

    // deepsjeng: hand-written "for"-loop copies in application code
    // (SectionIII-D: does not rely on library calls); mild.
    v.push(app(
        "deepsjeng",
        true,
        vec![
            compute(48000, 0.05, 0.02),
            PhaseSpec::Memcpy {
                bytes: 8192,
                region: Application,
                footprint_pages: BIG_FOOTPRINT_PAGES,
                shuffle: false,
            },
            PhaseSpec::PointerChase {
                count: 300,
                pool_pages: SMALL_POOL_PAGES,
            },
            compute(32000, 0.05, 0.02),
        ],
    ));

    // fotonik3d: FDTD field arrays zeroed on allocation (kernel +
    // calloc) then streamed; severely hurt by small SBs, big SPB winner.
    v.push(app(
        "fotonik3d",
        true,
        vec![
            compute(60000, 0.8, 0.003),
            PhaseSpec::StrideLoads {
                count: 700,
                stride: 8,
                fp: true,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
            PhaseSpec::Memset {
                bytes: 8192,
                region: Calloc,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
            compute(32000, 0.8, 0.003),
        ],
    ));

    // roms: the pathological case. Loop unrolling interleaves stores
    // from several array streams in application code; SPB's page bursts
    // for every stream evict live data (L1 conflict misses, SectionVI-A)
    // that the re-referenced stride loads immediately miss on.
    v.push(app(
        "roms",
        true,
        vec![
            compute(40000, 0.75, 0.004),
            PhaseSpec::MultiStreamCopy {
                streams: 4,
                bytes_per_stream: 4096,
                chunk_blocks: 8,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
            PhaseSpec::StrideLoads {
                count: 900,
                stride: 8,
                fp: true,
                footprint_pages: 10,
            },
            compute(24000, 0.75, 0.004),
        ],
    ));

    // ---- non-SB-bound applications --------------------------------------

    // perlbench: branchy interpreter, pointer-heavy, tiny copies.
    v.push(app(
        "perlbench",
        false,
        vec![
            compute(6000, 0.02, 0.03),
            PhaseSpec::PointerChase {
                count: 400,
                pool_pages: SMALL_POOL_PAGES,
            },
            PhaseSpec::SparseStores {
                count: 150,
                footprint_pages: 4,
                gap: 6,
            },
            PhaseSpec::Memcpy {
                bytes: 384,
                region: Memcpy,
                footprint_pages: 1024,
                shuffle: false,
            },
        ],
    ));

    // gcc: allocation-heavy but short-lived objects, mostly resident.
    v.push(app(
        "gcc",
        false,
        vec![
            compute(5000, 0.02, 0.025),
            PhaseSpec::PointerChase {
                count: 350,
                pool_pages: SMALL_POOL_PAGES,
            },
            PhaseSpec::Memset {
                bytes: 512,
                region: Calloc,
                footprint_pages: 16,
            },
            PhaseSpec::SparseStores {
                count: 200,
                footprint_pages: 4,
                gap: 5,
            },
        ],
    ));

    // mcf: the classic memory-latency benchmark — dependent loads.
    v.push(app(
        "mcf",
        false,
        vec![
            compute(1500, 0.05, 0.02),
            PhaseSpec::PointerChase {
                count: 900,
                pool_pages: 1 << 14,
            },
            PhaseSpec::SparseStores {
                count: 120,
                footprint_pages: 4,
                gap: 8,
            },
        ],
    ));

    // omnetpp: discrete event simulation, pointer chasing + small writes.
    v.push(app(
        "omnetpp",
        false,
        vec![
            compute(3000, 0.05, 0.025),
            PhaseSpec::PointerChase {
                count: 600,
                pool_pages: 1 << 12,
            },
            PhaseSpec::SparseStores {
                count: 180,
                footprint_pages: 4,
                gap: 6,
            },
        ],
    ));

    // xalancbmk: XML transform; string handling with small copies.
    v.push(app(
        "xalancbmk",
        false,
        vec![
            compute(4200, 0.02, 0.028),
            PhaseSpec::Memcpy {
                bytes: 384,
                region: Memcpy,
                footprint_pages: 2048,
                shuffle: false,
            },
            PhaseSpec::PointerChase {
                count: 450,
                pool_pages: 2048,
            },
        ],
    ));

    // exchange2: pure integer compute.
    v.push(app(
        "exchange2",
        false,
        vec![
            compute(9000, 0.0, 0.015),
            PhaseSpec::SparseStores {
                count: 80,
                footprint_pages: 2,
                gap: 10,
            },
        ],
    ));

    // xz: compression; match-finding loads dominate, stores sparse.
    v.push(app(
        "xz",
        false,
        vec![
            compute(3500, 0.02, 0.02),
            PhaseSpec::StrideLoads {
                count: 800,
                stride: 32,
                fp: false,
                footprint_pages: 1 << 13,
            },
            PhaseSpec::SparseStores {
                count: 200,
                footprint_pages: 4,
                gap: 6,
            },
        ],
    ));

    // leela: MCTS game tree, branchy with small random accesses.
    v.push(app(
        "leela",
        false,
        vec![
            compute(5200, 0.05, 0.03),
            PhaseSpec::PointerChase {
                count: 380,
                pool_pages: SMALL_POOL_PAGES,
            },
            PhaseSpec::SparseStores {
                count: 120,
                footprint_pages: 4,
                gap: 7,
            },
        ],
    ));

    // namd: FP-dense molecular dynamics on cache-blocked data.
    v.push(app(
        "namd",
        false,
        vec![
            compute(7000, 0.85, 0.002),
            PhaseSpec::StrideLoads {
                count: 900,
                stride: 8,
                fp: true,
                footprint_pages: 512,
            },
            PhaseSpec::SparseStores {
                count: 140,
                footprint_pages: 4,
                gap: 6,
            },
        ],
    ));

    // parest: FE solver, sparse matrix loads.
    v.push(app(
        "parest",
        false,
        vec![
            compute(4800, 0.8, 0.004),
            PhaseSpec::StrideLoads {
                count: 700,
                stride: 24,
                fp: true,
                footprint_pages: 1 << 12,
            },
            PhaseSpec::SparseStores {
                count: 150,
                footprint_pages: 4,
                gap: 6,
            },
        ],
    ));

    // povray: ray tracer, almost pure FP compute.
    v.push(app(
        "povray",
        false,
        vec![
            compute(8500, 0.75, 0.006),
            PhaseSpec::PointerChase {
                count: 180,
                pool_pages: 128,
            },
        ],
    ));

    // lbm: streaming FP loads with strided writes the stride prefetcher
    // and at-commit policy already cover well.
    v.push(app(
        "lbm",
        false,
        vec![
            compute(1800, 0.85, 0.002),
            PhaseSpec::StrideLoads {
                count: 1100,
                stride: 8,
                fp: true,
                footprint_pages: BIG_FOOTPRINT_PAGES,
            },
            PhaseSpec::SparseStores {
                count: 250,
                footprint_pages: 4,
                gap: 6,
            },
        ],
    ));

    // wrf: weather model, FP compute over resident tiles.
    v.push(app(
        "wrf",
        false,
        vec![
            compute(5600, 0.8, 0.003),
            PhaseSpec::StrideLoads {
                count: 650,
                stride: 8,
                fp: true,
                footprint_pages: 2048,
            },
            PhaseSpec::Memset {
                bytes: 512,
                region: Memset,
                footprint_pages: 16,
            },
        ],
    ));

    // imagick: image filters on resident rows.
    v.push(app(
        "imagick",
        false,
        vec![
            compute(6200, 0.6, 0.004),
            PhaseSpec::StrideLoads {
                count: 800,
                stride: 8,
                fp: true,
                footprint_pages: 1024,
            },
            PhaseSpec::SparseStores {
                count: 220,
                footprint_pages: 4,
                gap: 5,
            },
        ],
    ));

    // nab: molecular modelling, FP compute dominated.
    v.push(app(
        "nab",
        false,
        vec![
            compute(7400, 0.8, 0.003),
            PhaseSpec::StrideLoads {
                count: 500,
                stride: 8,
                fp: true,
                footprint_pages: 512,
            },
            PhaseSpec::SparseStores {
                count: 130,
                footprint_pages: 4,
                gap: 7,
            },
        ],
    ));

    v
}

fn parsec_profiles() -> Vec<AppProfile> {
    use CodeRegion::*;
    let mut v = Vec::new();
    let app = |name: &str, sb: bool, phases: Vec<PhaseSpec>| {
        AppProfile::new(name, Suite::Parsec, sb, 8, phases)
    };

    // ---- SB-bound PARSEC applications -----------------------------------

    // bodytrack: per-frame image buffers copied and zeroed per thread.
    v.push(app(
        "bodytrack",
        true,
        vec![
            compute(40000, 0.4, 0.01),
            PhaseSpec::Memcpy {
                bytes: 8192,
                region: Memcpy,
                footprint_pages: 1 << 13,
                shuffle: false,
            },
            compute(24000, 0.4, 0.01),
            PhaseSpec::Memset {
                bytes: 4096,
                region: Memset,
                footprint_pages: 1 << 13,
            },
        ],
    ));

    // dedup: pipeline stages hand chunks around with memcpy.
    v.push(app(
        "dedup",
        true,
        vec![
            compute(36000, 0.05, 0.015),
            PhaseSpec::Memcpy {
                bytes: 16384,
                region: Memcpy,
                footprint_pages: 1 << 14,
                shuffle: false,
            },
            PhaseSpec::PointerChase {
                count: 300,
                pool_pages: 512,
            },
            compute(24000, 0.05, 0.015),
        ],
    ));

    // ferret: feature vectors copied between pipeline queues.
    v.push(app(
        "ferret",
        true,
        vec![
            compute(44000, 0.5, 0.012),
            PhaseSpec::Memcpy {
                bytes: 8192,
                region: Memcpy,
                footprint_pages: 1 << 13,
                shuffle: false,
            },
            PhaseSpec::StrideLoads {
                count: 500,
                stride: 8,
                fp: true,
                footprint_pages: 1 << 13,
            },
            compute(28000, 0.5, 0.012),
        ],
    ));

    // x264 (PARSEC build): same frame-copy behaviour as the SPEC one.
    v.push(app(
        "x264",
        true,
        vec![
            compute(36000, 0.2, 0.012),
            PhaseSpec::Memcpy {
                bytes: 16384,
                region: Memcpy,
                footprint_pages: 1 << 14,
                shuffle: false,
            },
            compute(28000, 0.2, 0.012),
        ],
    ));

    // ---- non-SB-bound PARSEC applications --------------------------------

    v.push(app(
        "blackscholes",
        false,
        vec![
            compute(6000, 0.85, 0.002),
            PhaseSpec::StrideLoads {
                count: 700,
                stride: 8,
                fp: true,
                footprint_pages: 1024,
            },
            PhaseSpec::SparseStores {
                count: 150,
                footprint_pages: 4,
                gap: 6,
            },
        ],
    ));

    v.push(app(
        "canneal",
        false,
        vec![
            compute(1800, 0.1, 0.02),
            PhaseSpec::PointerChase {
                count: 800,
                pool_pages: 1 << 14,
            },
            PhaseSpec::SparseStores {
                count: 200,
                footprint_pages: 4,
                gap: 5,
            },
        ],
    ));

    v.push(app(
        "facesim",
        false,
        vec![
            compute(5200, 0.8, 0.004),
            PhaseSpec::StrideLoads {
                count: 600,
                stride: 8,
                fp: true,
                footprint_pages: 2048,
            },
            PhaseSpec::Memset {
                bytes: 512,
                region: Memset,
                footprint_pages: 2048,
            },
        ],
    ));

    v.push(app(
        "fluidanimate",
        false,
        vec![
            compute(4600, 0.75, 0.006),
            PhaseSpec::StrideLoads {
                count: 700,
                stride: 16,
                fp: true,
                footprint_pages: 2048,
            },
            PhaseSpec::SparseStores {
                count: 250,
                footprint_pages: 4,
                gap: 6,
            },
        ],
    ));

    v.push(app(
        "streamcluster",
        false,
        vec![
            compute(3000, 0.7, 0.004),
            PhaseSpec::StrideLoads {
                count: 1000,
                stride: 8,
                fp: true,
                footprint_pages: 1 << 13,
            },
            PhaseSpec::SparseStores {
                count: 180,
                footprint_pages: 4,
                gap: 6,
            },
        ],
    ));

    v.push(app(
        "swaptions",
        false,
        vec![
            compute(8000, 0.8, 0.003),
            PhaseSpec::SparseStores {
                count: 120,
                footprint_pages: 2,
                gap: 8,
            },
        ],
    ));

    v.push(app(
        "vips",
        false,
        vec![
            compute(4800, 0.55, 0.006),
            PhaseSpec::StrideLoads {
                count: 700,
                stride: 8,
                fp: true,
                footprint_pages: 2048,
            },
            PhaseSpec::Memcpy {
                bytes: 384,
                region: Memcpy,
                footprint_pages: 2048,
                shuffle: false,
            },
        ],
    ));

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, TraceSource};

    #[test]
    fn spec_suite_has_23_apps_and_paper_sb_bound_set() {
        let suite = AppProfile::spec2017();
        assert_eq!(suite.len(), 23);
        let sb: Vec<&str> = suite
            .iter()
            .filter(|p| p.is_sb_bound())
            .map(|p| p.name())
            .collect();
        assert_eq!(
            sb,
            [
                "bwaves",
                "cactuBSSN",
                "x264",
                "blender",
                "cam4",
                "deepsjeng",
                "fotonik3d",
                "roms"
            ]
        );
    }

    #[test]
    fn parsec_suite_has_11_apps_and_paper_sb_bound_set() {
        let suite = AppProfile::parsec();
        assert_eq!(suite.len(), 11);
        let sb: Vec<&str> = suite
            .iter()
            .filter(|p| p.is_sb_bound())
            .map(|p| p.name())
            .collect();
        assert_eq!(sb, ["bodytrack", "dedup", "ferret", "x264"]);
        assert!(suite.iter().all(|p| p.threads() == 8));
        for excluded in ["freqmine", "raytrace"] {
            assert!(suite.iter().all(|p| p.name() != excluded));
        }
    }

    #[test]
    fn by_name_finds_spec_apps() {
        assert!(AppProfile::by_name("roms").is_ok());
        let err = AppProfile::by_name("nonexistent").unwrap_err();
        assert_eq!(err.name, "nonexistent");
        let msg = err.to_string();
        assert!(msg.contains("unknown application"), "{msg}");
        assert!(msg.contains("roms"), "lists valid names: {msg}");
        assert!(msg.contains("dedup"), "lists PARSEC names too: {msg}");
    }

    #[test]
    fn every_profile_generates_ops() {
        for p in AppProfile::spec2017()
            .iter()
            .chain(AppProfile::parsec().iter())
        {
            let mut src = p.build(1);
            for _ in 0..1000 {
                assert!(
                    src.next_op().is_some(),
                    "{} stopped producing ops",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn sb_bound_profiles_have_more_burst_stores() {
        // Count stores in 200k ops; SB-bound profiles must have a clearly
        // higher contiguous-store density than, say, povray.
        let density = |name: &str| {
            let p = AppProfile::by_name(name).unwrap();
            let mut src = p.build(3);
            let mut stores = 0u64;
            let mut contiguous = 0u64;
            let mut last_block = u64::MAX - 10;
            for _ in 0..200_000 {
                let op = src.next_op().unwrap();
                if let OpKind::Store { addr, .. } = op.kind() {
                    stores += 1;
                    let b = addr / 64;
                    if b == last_block || b == last_block + 1 {
                        contiguous += 1;
                    }
                    last_block = b;
                }
            }
            contiguous as f64 / stores.max(1) as f64
        };
        assert!(density("bwaves") > 0.5);
        assert!(density("x264") > 0.5);
        assert!(density("povray") < 0.2);
        assert!(density("mcf") < 0.2);
    }

    #[test]
    fn multithreaded_build_yields_one_source_per_thread() {
        let p = AppProfile::by_name("dedup").unwrap();
        let sources = p.build_threads(5);
        assert_eq!(sources.len(), 8);
    }

    #[test]
    fn profiles_are_deterministic() {
        let p = AppProfile::by_name("gcc").unwrap();
        let mut a = p.build(9);
        let mut b = p.build(9);
        for _ in 0..5_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_rejected() {
        let _ = AppProfile::new("empty", Suite::Spec2017, false, 1, vec![]);
    }

    #[test]
    fn catalog_groups_suites_and_resolves_names() {
        let catalog = AppCatalog::standard();
        assert_eq!(catalog.suite(Suite::Spec2017).len(), 23);
        assert_eq!(catalog.suite(Suite::Parsec).len(), 11);
        assert_eq!(
            catalog.all().len(),
            catalog.suite(Suite::Spec2017).len() + catalog.suite(Suite::Parsec).len()
        );
        assert_eq!(
            catalog.suite_named("spec").unwrap(),
            catalog.suite_named("spec2017").unwrap()
        );
        assert!(catalog.suite_named("splash").is_none());
        assert_eq!(catalog.by_name("x264").unwrap().name(), "x264");
        let err = catalog.by_name("quake").unwrap_err();
        assert!(err.to_string().contains("valid names"));
        // The paper's SB-bound SPEC set, in order.
        let sb: Vec<_> = catalog
            .sb_bound(Suite::Spec2017)
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        assert_eq!(
            sb,
            [
                "bwaves",
                "cactuBSSN",
                "x264",
                "blender",
                "cam4",
                "deepsjeng",
                "fotonik3d",
                "roms"
            ]
        );
    }

    #[test]
    fn app_profile_conveniences_delegate_to_the_catalog() {
        let catalog = AppCatalog::standard();
        assert_eq!(AppProfile::spec2017(), catalog.suite(Suite::Spec2017));
        assert_eq!(AppProfile::parsec(), catalog.suite(Suite::Parsec));
        assert_eq!(
            AppProfile::spec2017_sb_bound(),
            catalog.sb_bound(Suite::Spec2017)
        );
    }
}

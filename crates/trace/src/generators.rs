//! Primitive workload generators.
//!
//! Each generator is a finite [`TraceSource`] producing one *phase* of an
//! application: a `memcpy` call, a stretch of compute, a pointer-chase
//! walk, and so on. [`crate::PhasedWorkload`] strings phases together and
//! loops them to form a region of interest.
//!
//! The generators mirror §III of the paper:
//!
//! - [`MemsetGen`] / [`MemcpyGen`] / [`ClearPageGen`] produce long runs of
//!   contiguous 8-byte stores — the access pattern of Figure 2 that fills
//!   the SB and causes most SB-induced stalls.
//! - [`MultiStreamCopyGen`] produces the `roms`-style interleaving of
//!   several store streams created by loop unrolling; its page-sized SPB
//!   bursts create the L1 conflict-miss pathology of §VI-A.
//! - [`StrideLoadGen`], [`PointerChaseGen`], [`ComputeGen`] and
//!   [`SparseStoreGen`] provide the surrounding non-bursty behaviour that
//!   keeps most SPEC applications *off* the SB-bound list.

use crate::op::{MicroOp, OpKind};
use crate::region::CodeRegion;
use crate::rng::TraceRng;
use crate::TraceSource;

/// Well-predicted loop-branch misprediction rate.
const LOOP_BRANCH_MISS_RATE: f64 = 0.0005;

fn rng_for(seed: u64, salt: u64) -> TraceRng {
    TraceRng::seed_from_u64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Emits the two loop-overhead µops (induction add + backward branch)
/// used by all the loopy generators.
fn loop_overhead(pcs: (u64, u64), rng: &mut TraceRng, out: &mut Vec<MicroOp>) {
    out.push(MicroOp::new(OpKind::IntAlu { latency: 1 }, pcs.0));
    let miss = rng.gen_bool(LOOP_BRANCH_MISS_RATE);
    out.push(MicroOp::new(OpKind::Branch { mispredict: miss }, pcs.1).with_dep(1));
}

/// A generator that buffers a small batch of µops at a time.
///
/// All concrete generators fill `pending` lazily so `next_op` stays
/// allocation-free in the steady state.
#[derive(Debug)]
struct OpQueue {
    pending: Vec<MicroOp>,
    cursor: usize,
}

impl OpQueue {
    fn new() -> Self {
        Self {
            pending: Vec::with_capacity(32),
            cursor: 0,
        }
    }

    fn pop(&mut self) -> Option<MicroOp> {
        if self.cursor < self.pending.len() {
            let op = self.pending[self.cursor];
            self.cursor += 1;
            Some(op)
        } else {
            None
        }
    }

    fn refill<F: FnOnce(&mut Vec<MicroOp>)>(&mut self, f: F) {
        self.pending.clear();
        self.cursor = 0;
        f(&mut self.pending);
    }
}

// ---------------------------------------------------------------------------
// MemsetGen
// ---------------------------------------------------------------------------

/// `memset`-style generator: a tight loop of contiguous 8-byte stores.
///
/// With 64-byte blocks this produces exactly the pattern of the paper's
/// Figure 2: eight stores per block, block addresses increasing by one.
///
/// # Examples
///
/// ```
/// use spb_trace::{generators::MemsetGen, CodeRegion, TraceSource};
///
/// let mut g = MemsetGen::new(0x1000, 128, CodeRegion::Memset, 1);
/// let mut stores = 0;
/// while let Some(op) = g.next_op() {
///     if op.kind().is_store() { stores += 1; }
/// }
/// assert_eq!(stores, 16); // 128 bytes / 8-byte stores
/// ```
#[derive(Debug)]
pub struct MemsetGen {
    dst: u64,
    bytes: u64,
    written: u64,
    region: CodeRegion,
    unroll: u64,
    queue: OpQueue,
    rng: TraceRng,
}

impl MemsetGen {
    /// Creates a memset of `bytes` bytes starting at `dst`, attributed to
    /// `region` (use [`CodeRegion::Memset`] or [`CodeRegion::Calloc`]).
    pub fn new(dst: u64, bytes: u64, region: CodeRegion, seed: u64) -> Self {
        Self {
            dst,
            bytes,
            written: 0,
            region,
            unroll: 8,
            queue: OpQueue::new(),
            rng: rng_for(seed, dst),
        }
    }
}

impl TraceSource for MemsetGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        if let Some(op) = self.queue.pop() {
            return Some(op);
        }
        if self.written >= self.bytes {
            return None;
        }
        let region = self.region;
        let dst = self.dst;
        let written = &mut self.written;
        let bytes = self.bytes;
        let unroll = self.unroll;
        let rng = &mut self.rng;
        self.queue.refill(|out| {
            for _ in 0..unroll {
                if *written >= bytes {
                    break;
                }
                let addr = dst + *written;
                out.push(MicroOp::new(
                    OpKind::Store { addr, size: 8 },
                    region.pc_at(0x10),
                ));
                *written += 8;
            }
            loop_overhead((region.pc_at(0x20), region.pc_at(0x28)), rng, out);
        });
        self.queue.pop()
    }
}

// ---------------------------------------------------------------------------
// MemcpyGen
// ---------------------------------------------------------------------------

/// `memcpy`-style generator: paired 8-byte load/store streams.
///
/// Stores depend on their loads (distance 1). `shuffle_in_block` emulates
/// compiler reordering after unrolling: the eight accesses inside each
/// 64-byte block are emitted in a permuted order, which breaks
/// *address*-contiguity but keeps *block*-contiguity — exactly the case
/// SPB's block-delta detector is designed to tolerate (§IV).
#[derive(Debug)]
pub struct MemcpyGen {
    src: u64,
    dst: u64,
    bytes: u64,
    done: u64,
    region: CodeRegion,
    shuffle_in_block: bool,
    queue: OpQueue,
    rng: TraceRng,
}

impl MemcpyGen {
    /// Creates a copy of `bytes` bytes from `src` to `dst`.
    pub fn new(src: u64, dst: u64, bytes: u64, region: CodeRegion, seed: u64) -> Self {
        Self {
            src,
            dst,
            bytes,
            done: 0,
            region,
            shuffle_in_block: false,
            queue: OpQueue::new(),
            rng: rng_for(seed, src ^ dst),
        }
    }

    /// Enables intra-block shuffling of the copy order.
    #[must_use]
    pub fn with_intra_block_shuffle(mut self) -> Self {
        self.shuffle_in_block = true;
        self
    }
}

impl TraceSource for MemcpyGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        if let Some(op) = self.queue.pop() {
            return Some(op);
        }
        if self.done >= self.bytes {
            return None;
        }
        let (src, dst, region) = (self.src, self.dst, self.region);
        let done = &mut self.done;
        let bytes = self.bytes;
        let shuffle = self.shuffle_in_block;
        let rng = &mut self.rng;
        self.queue.refill(|out| {
            // One 64-byte block (or the tail) per refill.
            let mut offsets: [u64; 8] = [0, 8, 16, 24, 32, 40, 48, 56];
            if shuffle {
                // Fisher-Yates on the intra-block order.
                for i in (1..8).rev() {
                    let j = rng.gen_range(0..=i);
                    offsets.swap(i, j);
                }
            }
            let base = *done;
            for &off in &offsets {
                if base + off >= bytes {
                    continue;
                }
                let a = base + off;
                out.push(MicroOp::new(
                    OpKind::Load {
                        addr: src + a,
                        size: 8,
                    },
                    region.pc_at(0x40),
                ));
                out.push(
                    MicroOp::new(
                        OpKind::Store {
                            addr: dst + a,
                            size: 8,
                        },
                        region.pc_at(0x48),
                    )
                    .with_dep(1),
                );
            }
            *done = base + 64;
            loop_overhead((region.pc_at(0x50), region.pc_at(0x58)), rng, out);
        });
        self.queue.pop()
    }
}

// ---------------------------------------------------------------------------
// ClearPageGen
// ---------------------------------------------------------------------------

/// Kernel `clear_page` generator: zeroes whole 4 KiB pages with 8-byte
/// stores, attributed to [`CodeRegion::ClearPage`].
///
/// The OS calls this each time a page is first handed to user code, which
/// is why allocation-heavy applications show kernel-located SB stalls in
/// Figure 3.
#[derive(Debug)]
pub struct ClearPageGen {
    inner: MemsetGen,
}

impl ClearPageGen {
    /// Clears `pages` pages starting at `first_page_addr` (page aligned).
    ///
    /// # Panics
    ///
    /// Panics if `first_page_addr` is not 4 KiB-aligned.
    pub fn new(first_page_addr: u64, pages: u64, seed: u64) -> Self {
        assert_eq!(
            first_page_addr % 4096,
            0,
            "clear_page needs a page-aligned base"
        );
        Self {
            inner: MemsetGen::new(first_page_addr, pages * 4096, CodeRegion::ClearPage, seed),
        }
    }
}

impl TraceSource for ClearPageGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        self.inner.next_op()
    }
}

// ---------------------------------------------------------------------------
// MultiStreamCopyGen
// ---------------------------------------------------------------------------

/// Interleaved multi-stream store bursts (the `roms` pattern).
///
/// An unrolled Fortran loop writing several arrays interleaves chunks of
/// stores from each stream. SPB still detects block-contiguity inside a
/// chunk when `chunk_blocks` is large enough, triggers page bursts for
/// *every* stream, and the burst-prefetched blocks then fight for L1 sets
/// with the streams' own loads — the conflict-miss pathology reported for
/// `roms` in §VI-A.
#[derive(Debug)]
pub struct MultiStreamCopyGen {
    streams: Vec<(u64, u64)>, // (src, dst) base per stream
    bytes_per_stream: u64,
    chunk_blocks: u64,
    progressed: u64, // bytes completed per stream
    current: usize,
    chunk_left: u64,
    region: CodeRegion,
    queue: OpQueue,
    rng: TraceRng,
}

impl MultiStreamCopyGen {
    /// Creates `streams.len()` interleaved copy streams, each moving
    /// `bytes_per_stream` bytes, switching streams every `chunk_blocks`
    /// cache blocks.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or `chunk_blocks` is zero.
    pub fn new(
        streams: Vec<(u64, u64)>,
        bytes_per_stream: u64,
        chunk_blocks: u64,
        seed: u64,
    ) -> Self {
        assert!(!streams.is_empty(), "need at least one stream");
        assert!(chunk_blocks > 0, "chunk must be at least one block");
        Self {
            streams,
            bytes_per_stream,
            chunk_blocks,
            progressed: 0,
            current: 0,
            chunk_left: chunk_blocks,
            region: CodeRegion::Application,
            queue: OpQueue::new(),
            rng: rng_for(seed, 0x6d73),
        }
    }
}

impl TraceSource for MultiStreamCopyGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        if let Some(op) = self.queue.pop() {
            return Some(op);
        }
        if self.progressed >= self.bytes_per_stream {
            return None;
        }
        let (src, dst) = self.streams[self.current];
        // Streams advance in lock-step; within the current chunk, walk
        // block by block.
        let block_in_chunk = self.chunk_blocks - self.chunk_left;
        let offset = self.progressed + block_in_chunk * 64;
        let region = self.region;
        let pc_salt = (self.current as u64) * 0x100;
        let rng = &mut self.rng;
        self.queue.refill(|out| {
            for i in 0..8u64 {
                let a = offset + i * 8;
                out.push(MicroOp::new(
                    OpKind::Load {
                        addr: src + a,
                        size: 8,
                    },
                    region.pc_at(0x100 + pc_salt),
                ));
                out.push(
                    MicroOp::new(
                        OpKind::Store {
                            addr: dst + a,
                            size: 8,
                        },
                        region.pc_at(0x108 + pc_salt),
                    )
                    .with_dep(1),
                );
            }
            loop_overhead(
                (region.pc_at(0x110 + pc_salt), region.pc_at(0x118 + pc_salt)),
                rng,
                out,
            );
        });
        // Advance a block within the current stream's chunk.
        self.chunk_left -= 1;
        if self.chunk_left == 0 {
            self.chunk_left = self.chunk_blocks;
            self.current += 1;
            if self.current == self.streams.len() {
                self.current = 0;
                self.progressed += self.chunk_blocks * 64;
            }
        }
        self.queue.pop()
    }
}

// ---------------------------------------------------------------------------
// StrideLoadGen
// ---------------------------------------------------------------------------

/// Strided load stream with light compute per element (a vector kernel).
#[derive(Debug)]
pub struct StrideLoadGen {
    base: u64,
    stride: u64,
    remaining: u64,
    idx: u64,
    fp: bool,
    queue: OpQueue,
    rng: TraceRng,
}

impl StrideLoadGen {
    /// Creates a stream of `count` loads at `base + i * stride`.
    /// `fp` selects floating-point (vs integer) companion compute.
    pub fn new(base: u64, stride: u64, count: u64, fp: bool, seed: u64) -> Self {
        Self {
            base,
            stride: stride.max(1),
            remaining: count,
            idx: 0,
            fp,
            queue: OpQueue::new(),
            rng: rng_for(seed, base),
        }
    }
}

impl TraceSource for StrideLoadGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        if let Some(op) = self.queue.pop() {
            return Some(op);
        }
        if self.remaining == 0 {
            return None;
        }
        let n = self.remaining.min(4);
        self.remaining -= n;
        let (base, stride, fp) = (self.base, self.stride, self.fp);
        let idx = &mut self.idx;
        let rng = &mut self.rng;
        self.queue.refill(|out| {
            for _ in 0..n {
                let addr = base + *idx * stride;
                *idx += 1;
                out.push(MicroOp::new(
                    OpKind::Load { addr, size: 8 },
                    CodeRegion::Application.pc_at(0x200),
                ));
                let kind = if fp {
                    OpKind::FpAlu { latency: 5 }
                } else {
                    OpKind::IntAlu { latency: 1 }
                };
                out.push(MicroOp::new(kind, CodeRegion::Application.pc_at(0x208)).with_dep(1));
            }
            loop_overhead(
                (
                    CodeRegion::Application.pc_at(0x210),
                    CodeRegion::Application.pc_at(0x218),
                ),
                rng,
                out,
            );
        });
        self.queue.pop()
    }
}

// ---------------------------------------------------------------------------
// PointerChaseGen
// ---------------------------------------------------------------------------

/// Serially dependent loads over a randomized node pool (linked-list or
/// tree traversal). Every load's address depends on the previous load, so
/// there is no memory-level parallelism to exploit — latency-bound, not
/// SB-bound.
#[derive(Debug)]
pub struct PointerChaseGen {
    pool_base: u64,
    pool_blocks: u64,
    remaining: u64,
    state: u64,
    queue: OpQueue,
    rng: TraceRng,
}

impl PointerChaseGen {
    /// Creates a chase of `count` dependent loads over a pool of
    /// `pool_blocks` cache blocks starting at `pool_base`.
    pub fn new(pool_base: u64, pool_blocks: u64, count: u64, seed: u64) -> Self {
        Self {
            pool_base,
            pool_blocks: pool_blocks.max(1),
            remaining: count,
            state: seed | 1,
            queue: OpQueue::new(),
            rng: rng_for(seed, pool_base),
        }
    }

    fn next_node(&mut self) -> u64 {
        // xorshift over the pool keeps the walk deterministic but
        // effectively random (defeats stride prefetchers, like a real
        // pointer chase).
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        self.pool_base + (x % self.pool_blocks) * 64
    }
}

impl TraceSource for PointerChaseGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        if let Some(op) = self.queue.pop() {
            return Some(op);
        }
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = self.next_node();
        let use_branch = self.rng.gen_bool(0.25);
        let mispredict = use_branch && self.rng.gen_bool(0.05);
        self.queue.refill(|out| {
            // The load depends on the previous iteration's load (3 µops
            // back once compute + branch are interleaved).
            out.push(
                MicroOp::new(
                    OpKind::Load { addr, size: 8 },
                    CodeRegion::Application.pc_at(0x300),
                )
                .with_dep(3),
            );
            out.push(
                MicroOp::new(
                    OpKind::IntAlu { latency: 1 },
                    CodeRegion::Application.pc_at(0x308),
                )
                .with_dep(1),
            );
            if use_branch {
                out.push(
                    MicroOp::new(
                        OpKind::Branch { mispredict },
                        CodeRegion::Application.pc_at(0x310),
                    )
                    .with_dep(1),
                );
            } else {
                out.push(MicroOp::new(
                    OpKind::IntAlu { latency: 1 },
                    CodeRegion::Application.pc_at(0x318),
                ));
            }
        });
        self.queue.pop()
    }
}

// ---------------------------------------------------------------------------
// ComputeGen
// ---------------------------------------------------------------------------

/// Configuration for [`ComputeGen`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeParams {
    /// Number of µops to emit.
    pub count: u64,
    /// Fraction of ALU µops that are floating point.
    pub fp_ratio: f64,
    /// Probability that a branch is mispredicted.
    pub mispredict_rate: f64,
    /// Emit one branch every this many µops.
    pub branch_every: u32,
    /// Probability that a µop depends on its predecessor (chain density).
    pub dep_density: f64,
}

impl Default for ComputeParams {
    fn default() -> Self {
        Self {
            count: 1000,
            fp_ratio: 0.3,
            mispredict_rate: 0.02,
            branch_every: 6,
            dep_density: 0.4,
        }
    }
}

/// ALU-dominated compute with configurable dependency chains and branch
/// behaviour. This is the filler that keeps most SPEC applications busy
/// between memory phases.
#[derive(Debug)]
pub struct ComputeGen {
    params: ComputeParams,
    emitted: u64,
    since_branch: u32,
    rng: TraceRng,
}

impl ComputeGen {
    /// Creates a compute phase from `params`.
    pub fn new(params: ComputeParams, seed: u64) -> Self {
        Self {
            params,
            emitted: 0,
            since_branch: 0,
            rng: rng_for(seed, 0xC0_FF_EE),
        }
    }
}

impl TraceSource for ComputeGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.emitted >= self.params.count {
            return None;
        }
        self.emitted += 1;
        self.since_branch += 1;
        let region = CodeRegion::Application;
        if self.since_branch >= self.params.branch_every {
            self.since_branch = 0;
            let miss = self.rng.gen_bool(self.params.mispredict_rate);
            return Some(
                MicroOp::new(OpKind::Branch { mispredict: miss }, region.pc_at(0x400)).with_dep(1),
            );
        }
        let dep = if self.rng.gen_bool(self.params.dep_density) {
            1
        } else {
            0
        };
        let op = if self.rng.gen_bool(self.params.fp_ratio) {
            let latency = if self.rng.gen_bool(0.08) { 22 } else { 5 };
            MicroOp::new(OpKind::FpAlu { latency }, region.pc_at(0x408))
        } else {
            let latency = if self.rng.gen_bool(0.05) { 4 } else { 1 };
            MicroOp::new(OpKind::IntAlu { latency }, region.pc_at(0x410))
        };
        Some(op.with_dep(dep))
    }
}

// ---------------------------------------------------------------------------
// SparseStoreGen
// ---------------------------------------------------------------------------

/// Random (non-contiguous) stores over a footprint, with compute between
/// them: store traffic that should *not* trigger SPB.
#[derive(Debug)]
pub struct SparseStoreGen {
    base: u64,
    footprint_blocks: u64,
    remaining: u64,
    gap: u32,
    queue: OpQueue,
    rng: TraceRng,
}

impl SparseStoreGen {
    /// Creates `count` random 8-byte stores into `footprint_blocks` blocks
    /// at `base`, separated by `gap` compute µops.
    pub fn new(base: u64, footprint_blocks: u64, count: u64, gap: u32, seed: u64) -> Self {
        Self {
            base,
            footprint_blocks: footprint_blocks.max(1),
            remaining: count,
            gap,
            queue: OpQueue::new(),
            rng: rng_for(seed, base ^ 0x5a5a),
        }
    }
}

impl TraceSource for SparseStoreGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        if let Some(op) = self.queue.pop() {
            return Some(op);
        }
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let block = self.rng.gen_range(0..self.footprint_blocks);
        let slot = self.rng.gen_range(0..8u64);
        let addr = self.base + block * 64 + slot * 8;
        let gap = self.gap;
        let rng = &mut self.rng;
        self.queue.refill(|out| {
            for _ in 0..gap {
                let dep = if rng.gen_bool(0.3) { 1 } else { 0 };
                out.push(
                    MicroOp::new(
                        OpKind::IntAlu { latency: 1 },
                        CodeRegion::Application.pc_at(0x500),
                    )
                    .with_dep(dep),
                );
            }
            out.push(MicroOp::new(
                OpKind::Store { addr, size: 8 },
                CodeRegion::Application.pc_at(0x508),
            ));
        });
        self.queue.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut g: impl TraceSource) -> Vec<MicroOp> {
        let mut ops = Vec::new();
        while let Some(op) = g.next_op() {
            ops.push(op);
            assert!(ops.len() < 3_000_000, "generator failed to terminate");
        }
        ops
    }

    #[test]
    fn memset_covers_every_byte_once() {
        let ops = drain(MemsetGen::new(0x1000, 512, CodeRegion::Memset, 7));
        let stores: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind() {
                OpKind::Store { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(stores.len(), 64);
        for (i, a) in stores.iter().enumerate() {
            assert_eq!(*a, 0x1000 + (i as u64) * 8);
        }
    }

    #[test]
    fn memset_pcs_are_in_requested_region() {
        let ops = drain(MemsetGen::new(0, 64, CodeRegion::Calloc, 7));
        for op in ops.iter().filter(|o| o.kind().is_store()) {
            assert_eq!(CodeRegion::of_pc(op.pc()), CodeRegion::Calloc);
        }
    }

    #[test]
    fn memcpy_pairs_loads_and_stores_with_dependency() {
        let ops = drain(MemcpyGen::new(0x10000, 0x20000, 128, CodeRegion::Memcpy, 1));
        let loads = ops.iter().filter(|o| o.kind().is_load()).count();
        let stores = ops.iter().filter(|o| o.kind().is_store()).count();
        assert_eq!(loads, 16);
        assert_eq!(stores, 16);
        for op in ops.iter().filter(|o| o.kind().is_store()) {
            assert_eq!(op.deps()[0], 1, "store must depend on its load");
        }
    }

    #[test]
    fn shuffled_memcpy_keeps_block_contiguity() {
        let ops = drain(
            MemcpyGen::new(0, 0x100000, 64 * 8, CodeRegion::Memcpy, 3).with_intra_block_shuffle(),
        );
        let store_blocks: Vec<u64> = ops
            .iter()
            .filter(|o| o.kind().is_store())
            .filter_map(|o| o.block())
            .collect();
        // Every group of 8 stores must hit a single block, and block
        // addresses must be non-decreasing across groups.
        for chunk in store_blocks.chunks(8) {
            assert!(chunk.iter().all(|b| *b == chunk[0]));
        }
        let firsts: Vec<u64> = store_blocks.chunks(8).map(|c| c[0]).collect();
        assert!(firsts.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn shuffled_memcpy_addresses_are_permuted() {
        let ops = drain(
            MemcpyGen::new(0, 0x100000, 64 * 4, CodeRegion::Memcpy, 3).with_intra_block_shuffle(),
        );
        let addrs: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind() {
                OpKind::Store { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        // At least one block must have a non-monotonic intra-block order.
        let any_shuffled = addrs.chunks(8).any(|c| c.windows(2).any(|w| w[1] < w[0]));
        assert!(any_shuffled, "expected a permuted copy order");
    }

    #[test]
    fn clear_page_requires_alignment() {
        let result = std::panic::catch_unwind(|| ClearPageGen::new(5, 1, 0));
        assert!(result.is_err());
    }

    #[test]
    fn clear_page_zeroes_whole_pages_in_kernel_region() {
        let ops = drain(ClearPageGen::new(0x8000, 2, 0));
        let stores: Vec<&MicroOp> = ops.iter().filter(|o| o.kind().is_store()).collect();
        assert_eq!(stores.len(), 2 * 512);
        for op in stores {
            assert_eq!(CodeRegion::of_pc(op.pc()), CodeRegion::ClearPage);
        }
    }

    #[test]
    fn multi_stream_interleaves_chunks() {
        let streams = vec![(0x0, 0x100000), (0x40000, 0x200000)];
        let ops = drain(MultiStreamCopyGen::new(streams, 64 * 8, 4, 9));
        let store_blocks: Vec<u64> = ops
            .iter()
            .filter(|o| o.kind().is_store())
            .filter_map(|o| o.block())
            .collect();
        // First 4 blocks belong to stream 0's dst, next 4 to stream 1's.
        assert!(store_blocks[..32].iter().all(|b| *b < 0x200000 / 64));
        assert!(store_blocks[32..64].iter().all(|b| *b >= 0x200000 / 64));
    }

    #[test]
    fn stride_loads_follow_the_stride() {
        let ops = drain(StrideLoadGen::new(0x100, 256, 10, false, 2));
        let addrs: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind() {
                OpKind::Load { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(addrs.len(), 10);
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 256);
        }
    }

    #[test]
    fn pointer_chase_loads_depend_on_previous() {
        let ops = drain(PointerChaseGen::new(0x1000, 64, 20, 5));
        for op in ops.iter().filter(|o| o.kind().is_load()) {
            assert_eq!(op.deps()[0], 3);
        }
    }

    #[test]
    fn pointer_chase_stays_in_pool() {
        let pool_blocks = 16;
        let ops = drain(PointerChaseGen::new(0x1000, pool_blocks, 200, 5));
        for op in ops.iter().filter(|o| o.kind().is_load()) {
            let addr = op.kind().addr().unwrap();
            assert!(addr >= 0x1000 && addr < 0x1000 + pool_blocks * 64);
        }
    }

    #[test]
    fn compute_emits_exact_count_and_branch_cadence() {
        let params = ComputeParams {
            count: 600,
            branch_every: 6,
            ..Default::default()
        };
        let ops = drain(ComputeGen::new(params, 11));
        assert_eq!(ops.len(), 600);
        let branches = ops
            .iter()
            .filter(|o| matches!(o.kind(), OpKind::Branch { .. }))
            .count();
        assert_eq!(branches, 100);
    }

    #[test]
    fn compute_is_deterministic_per_seed() {
        let a = drain(ComputeGen::new(ComputeParams::default(), 4));
        let b = drain(ComputeGen::new(ComputeParams::default(), 4));
        let c = drain(ComputeGen::new(ComputeParams::default(), 5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_stores_do_not_form_contiguous_runs() {
        let ops = drain(SparseStoreGen::new(0x0, 1 << 16, 500, 3, 8));
        let blocks: Vec<u64> = ops
            .iter()
            .filter(|o| o.kind().is_store())
            .filter_map(|o| o.block())
            .collect();
        assert_eq!(blocks.len(), 500);
        let contiguous = blocks.windows(2).filter(|w| w[1] == w[0] + 1).count();
        // With a 64 Ki-block footprint the chance of adjacency is tiny.
        assert!(
            contiguous < 5,
            "sparse stores were contiguous {contiguous} times"
        );
    }
}

// ---------------------------------------------------------------------------
// StridedStoreGen
// ---------------------------------------------------------------------------

/// Strided stores (matrix-transpose / column-major writes).
///
/// With a stride of one block (64 B) the *block* deltas are +1 — SPB
/// legitimately detects it even though only one qword per block is
/// written. With larger strides the deltas exceed +1 and SPB must stay
/// silent: this generator is the canonical "looks regular but is not a
/// burst" counterexample used by the selectivity tests.
#[derive(Debug)]
pub struct StridedStoreGen {
    base: u64,
    stride: u64,
    remaining: u64,
    idx: u64,
    queue: OpQueue,
    rng: TraceRng,
}

impl StridedStoreGen {
    /// Creates `count` stores at `base + i * stride`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(base: u64, stride: u64, count: u64, seed: u64) -> Self {
        assert!(stride > 0, "a strided store stream needs a nonzero stride");
        Self {
            base,
            stride,
            remaining: count,
            idx: 0,
            queue: OpQueue::new(),
            rng: rng_for(seed, base ^ stride),
        }
    }
}

impl TraceSource for StridedStoreGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        if let Some(op) = self.queue.pop() {
            return Some(op);
        }
        if self.remaining == 0 {
            return None;
        }
        let n = self.remaining.min(4);
        self.remaining -= n;
        let (base, stride) = (self.base, self.stride);
        let idx = &mut self.idx;
        let rng = &mut self.rng;
        self.queue.refill(|out| {
            for _ in 0..n {
                let addr = base + *idx * stride;
                *idx += 1;
                out.push(MicroOp::new(
                    OpKind::Store { addr, size: 8 },
                    CodeRegion::Application.pc_at(0x600),
                ));
                out.push(MicroOp::new(
                    OpKind::IntAlu { latency: 1 },
                    CodeRegion::Application.pc_at(0x608),
                ));
            }
            loop_overhead(
                (
                    CodeRegion::Application.pc_at(0x610),
                    CodeRegion::Application.pc_at(0x618),
                ),
                rng,
                out,
            );
        });
        self.queue.pop()
    }
}

// ---------------------------------------------------------------------------
// GatherScatterGen
// ---------------------------------------------------------------------------

/// Gather-scatter (hash-join build side): random loads from a probe
/// table followed by dependent stores to random bucket slots. Heavy
/// store traffic that is *not* a burst — SPB must ignore it, and the
/// at-commit baseline is the best one can do.
#[derive(Debug)]
pub struct GatherScatterGen {
    table_base: u64,
    table_blocks: u64,
    bucket_base: u64,
    bucket_blocks: u64,
    remaining: u64,
    queue: OpQueue,
    rng: TraceRng,
}

impl GatherScatterGen {
    /// Creates `count` gather-scatter pairs over a probe table of
    /// `table_blocks` blocks and a bucket array of `bucket_blocks`.
    pub fn new(
        table_base: u64,
        table_blocks: u64,
        bucket_base: u64,
        bucket_blocks: u64,
        count: u64,
        seed: u64,
    ) -> Self {
        Self {
            table_base,
            table_blocks: table_blocks.max(1),
            bucket_base,
            bucket_blocks: bucket_blocks.max(1),
            remaining: count,
            queue: OpQueue::new(),
            rng: rng_for(seed, table_base ^ bucket_base),
        }
    }
}

impl TraceSource for GatherScatterGen {
    fn next_op(&mut self) -> Option<MicroOp> {
        if let Some(op) = self.queue.pop() {
            return Some(op);
        }
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let load_addr = self.table_base + self.rng.gen_range(0..self.table_blocks) * 64;
        let store_addr = self.bucket_base
            + self.rng.gen_range(0..self.bucket_blocks) * 64
            + self.rng.gen_range(0..8u64) * 8;
        self.queue.refill(|out| {
            // gather…
            out.push(MicroOp::new(
                OpKind::Load {
                    addr: load_addr,
                    size: 8,
                },
                CodeRegion::Application.pc_at(0x700),
            ));
            // …hash…
            out.push(
                MicroOp::new(
                    OpKind::IntAlu { latency: 4 },
                    CodeRegion::Application.pc_at(0x708),
                )
                .with_dep(1),
            );
            // …scatter (depends on the hash).
            out.push(
                MicroOp::new(
                    OpKind::Store {
                        addr: store_addr,
                        size: 8,
                    },
                    CodeRegion::Application.pc_at(0x710),
                )
                .with_dep(1),
            );
        });
        self.queue.pop()
    }
}

#[cfg(test)]
mod extra_generator_tests {
    use super::*;

    fn drain(mut g: impl TraceSource) -> Vec<MicroOp> {
        let mut ops = Vec::new();
        while let Some(op) = g.next_op() {
            ops.push(op);
            assert!(ops.len() < 3_000_000);
        }
        ops
    }

    #[test]
    fn strided_stores_follow_the_stride() {
        let ops = drain(StridedStoreGen::new(0x1000, 4096, 16, 3));
        let addrs: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind() {
                OpKind::Store { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(addrs.len(), 16);
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 4096);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero stride")]
    fn zero_stride_rejected() {
        let _ = StridedStoreGen::new(0, 0, 1, 0);
    }

    #[test]
    fn gather_scatter_stores_depend_on_hash() {
        let ops = drain(GatherScatterGen::new(
            0x10_0000, 1024, 0x20_0000, 512, 50, 9,
        ));
        let stores: Vec<&MicroOp> = ops.iter().filter(|o| o.kind().is_store()).collect();
        assert_eq!(stores.len(), 50);
        for s in stores {
            assert_eq!(s.deps()[0], 1, "scatter must depend on the hash op");
        }
    }

    #[test]
    fn gather_scatter_stays_in_bounds() {
        let ops = drain(GatherScatterGen::new(0x10_0000, 16, 0x20_0000, 8, 400, 9));
        for op in &ops {
            match op.kind() {
                OpKind::Load { addr, .. } => {
                    assert!((0x10_0000..0x10_0000 + 16 * 64).contains(&addr))
                }
                OpKind::Store { addr, .. } => {
                    assert!((0x20_0000..0x20_0000 + 8 * 64).contains(&addr))
                }
                _ => {}
            }
        }
    }
}

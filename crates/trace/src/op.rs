//! The µop intermediate representation consumed by the core model.

use std::fmt;

/// Cache block size in bytes (64 B, as in Table I / the paper's examples).
pub const BLOCK_BYTES: u64 = 64;
/// Page size in bytes (4 KiB x86 pages; SPB never prefetches past a page).
pub const PAGE_BYTES: u64 = 4096;
/// Cache blocks per page (64).
pub const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / BLOCK_BYTES;

/// What a µop does, with the operands the timing model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Integer ALU operation with the given execution latency in cycles
    /// (add 1c, mul 4c, div 22c per Table I).
    IntAlu {
        /// Execution latency in cycles.
        latency: u8,
    },
    /// Floating-point operation (add 5c, mul 5c, div 22c per Table I).
    FpAlu {
        /// Execution latency in cycles.
        latency: u8,
    },
    /// A load of `size` bytes from virtual address `addr`.
    Load {
        /// Virtual byte address.
        addr: u64,
        /// Access size in bytes (1–64).
        size: u8,
    },
    /// A store of `size` bytes to virtual address `addr`.
    Store {
        /// Virtual byte address.
        addr: u64,
        /// Access size in bytes (1–64).
        size: u8,
    },
    /// A conditional branch. `mispredict` marks whether the front end
    /// guessed wrong; the squash cost is paid when the branch *resolves*,
    /// which waits on the branch's dependencies.
    Branch {
        /// Whether the branch was mispredicted.
        mispredict: bool,
    },
}

impl OpKind {
    /// Whether this µop reads or writes memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// Whether this µop is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, OpKind::Store { .. })
    }

    /// Whether this µop is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, OpKind::Load { .. })
    }

    /// The memory address, if this is a memory µop.
    pub fn addr(&self) -> Option<u64> {
        match *self {
            OpKind::Load { addr, .. } | OpKind::Store { addr, .. } => Some(addr),
            _ => None,
        }
    }
}

/// One micro-operation of the trace.
///
/// Dependencies are encoded as *backward distances in µops*: `deps[i] == d`
/// (with `d > 0`) means this µop reads the result of the µop `d` positions
/// earlier in program order; `0` means "no dependency". This compact
/// encoding lets generators express streaming (independent) versus
/// pointer-chasing (serially dependent) behaviour without a register
/// allocator.
///
/// # Examples
///
/// ```
/// use spb_trace::{MicroOp, OpKind};
///
/// // A store whose data comes from the immediately preceding load.
/// let op = MicroOp::new(OpKind::Store { addr: 0x1000, size: 8 }, 0x4000_0000)
///     .with_dep(1);
/// assert_eq!(op.deps(), [1, 0]);
/// assert!(op.kind().is_store());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroOp {
    kind: OpKind,
    pc: u64,
    deps: [u16; 2],
    wrong_path: bool,
}

impl MicroOp {
    /// Creates a µop with no dependencies.
    pub fn new(kind: OpKind, pc: u64) -> Self {
        Self {
            kind,
            pc,
            deps: [0, 0],
            wrong_path: false,
        }
    }

    /// Marks this µop as wrong-path: fetched down a mispredicted branch,
    /// executed speculatively, and squashed before commit. Wrong-path
    /// µops never enter the ROB or the store buffer and never count as
    /// committed work; they exist so speculation-side effects (the RFOs
    /// an at-execute or SPB-style policy issues for them) can be modeled
    /// and attributed.
    #[must_use]
    pub fn with_wrong_path(mut self) -> Self {
        self.wrong_path = true;
        self
    }

    /// Whether this µop is on the wrong path (see [`Self::with_wrong_path`]).
    pub fn is_wrong_path(&self) -> bool {
        self.wrong_path
    }

    /// Adds a backward dependency distance, filling the first free slot.
    ///
    /// A µop has at most two dependency slots; further calls overwrite
    /// the second slot. Distance `0` is ignored (means "no dep").
    #[must_use]
    pub fn with_dep(mut self, distance: u16) -> Self {
        if distance == 0 {
            return self;
        }
        if self.deps[0] == 0 {
            self.deps[0] = distance;
        } else {
            self.deps[1] = distance;
        }
        self
    }

    /// The operation payload.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The program counter this µop was "fetched" from. Used for
    /// prefetcher training and for the Figure 3 attribution of stalls to
    /// code regions.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Backward dependency distances (`0` = unused slot).
    pub fn deps(&self) -> [u16; 2] {
        self.deps
    }

    /// The cache-block address (`addr / 64`) for memory µops.
    pub fn block(&self) -> Option<u64> {
        self.kind.addr().map(|a| a / BLOCK_BYTES)
    }

    /// The page address (`addr / 4096`) for memory µops.
    pub fn page(&self) -> Option<u64> {
        self.kind.addr().map(|a| a / PAGE_BYTES)
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            OpKind::IntAlu { latency } => write!(f, "int({latency}c)"),
            OpKind::FpAlu { latency } => write!(f, "fp({latency}c)"),
            OpKind::Load { addr, size } => write!(f, "ld [{addr:#x}]/{size}"),
            OpKind::Store { addr, size } => write!(f, "st [{addr:#x}]/{size}"),
            OpKind::Branch { mispredict } => {
                write!(f, "br{}", if mispredict { "!miss" } else { "" })
            }
        }?;
        write!(f, " @{:#x}", self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_page_derive_from_address() {
        let op = MicroOp::new(
            OpKind::Store {
                addr: 4096 + 65,
                size: 8,
            },
            0,
        );
        assert_eq!(op.block(), Some((4096 + 65) / 64));
        assert_eq!(op.page(), Some(1));
    }

    #[test]
    fn non_mem_ops_have_no_address() {
        let op = MicroOp::new(OpKind::IntAlu { latency: 1 }, 0);
        assert_eq!(op.block(), None);
        assert_eq!(op.page(), None);
        assert!(!op.kind().is_mem());
    }

    #[test]
    fn with_dep_fills_slots_in_order() {
        let op = MicroOp::new(OpKind::Branch { mispredict: false }, 0)
            .with_dep(3)
            .with_dep(7);
        assert_eq!(op.deps(), [3, 7]);
    }

    #[test]
    fn with_dep_ignores_zero() {
        let op = MicroOp::new(OpKind::IntAlu { latency: 1 }, 0).with_dep(0);
        assert_eq!(op.deps(), [0, 0]);
    }

    #[test]
    fn kind_predicates() {
        assert!(OpKind::Load { addr: 0, size: 8 }.is_load());
        assert!(OpKind::Store { addr: 0, size: 8 }.is_store());
        assert!(!OpKind::Branch { mispredict: true }.is_mem());
    }

    #[test]
    fn display_shows_kind_and_pc() {
        let op = MicroOp::new(
            OpKind::Load {
                addr: 0x40,
                size: 8,
            },
            0x400123,
        );
        let s = format!("{op}");
        assert!(s.contains("ld"));
        assert!(s.contains("0x400123"));
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(BLOCKS_PER_PAGE, 64);
        assert_eq!(PAGE_BYTES % BLOCK_BYTES, 0);
    }
}

//! Benchmark harness support for the SPB reproduction.
//!
//! The Criterion benches (under `benches/`) come in two flavours:
//!
//! - `figures`: one benchmark per paper table/figure, timing a
//!   miniaturized version of the corresponding experiment (the full
//!   regeneration lives in the `spb-experiments` binaries — run
//!   `cargo run --release -p spb-experiments --bin all` for the real
//!   rows/series).
//! - `kernels`: throughput of the simulator's hot kernels (core cycle
//!   loop, cache hierarchy, SPB detector), which is what determines how
//!   much evaluation a time budget buys.
//!
//! This library crate provides the shared miniature configurations so
//! bench code stays declarative.

pub mod harness;
pub mod snapshot;

use spb_sim::config::{PolicyKind, SimConfig};
use spb_trace::profile::AppProfile;

/// A short but representative simulation budget for benches: covers at
/// least one full iteration of every profile's phase list.
pub fn bench_config() -> SimConfig {
    let mut cfg = SimConfig::quick();
    cfg.warmup_uops = 20_000;
    cfg.measure_uops = 150_000;
    cfg
}

/// A small app set spanning the behaviours the figures exercise:
/// a clear_page-bound app, a memcpy-bound app, and a compute-bound app.
pub fn bench_apps() -> Vec<AppProfile> {
    ["bwaves", "x264", "povray"]
        .iter()
        .map(|n| AppProfile::by_name(n).expect("suite app"))
        .collect()
}

/// The SB-bound pair used by per-app figure benches.
pub fn bench_sb_bound_apps() -> Vec<AppProfile> {
    ["bwaves", "x264"]
        .iter()
        .map(|n| AppProfile::by_name(n).expect("suite app"))
        .collect()
}

/// The three policies the main figures compare.
pub fn bench_policies() -> [PolicyKind; 3] {
    [
        PolicyKind::AtCommit,
        PolicyKind::spb_default(),
        PolicyKind::IdealSb,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_fixtures_are_valid() {
        assert_eq!(bench_apps().len(), 3);
        assert_eq!(bench_sb_bound_apps().len(), 2);
        assert!(bench_config().measure_uops >= 150_000);
    }
}

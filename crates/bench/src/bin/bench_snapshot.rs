//! Wall-time snapshots of the quick SPEC grid, and snapshot comparison.
//!
//! Three modes:
//!
//! ```text
//! bench_snapshot --kernel tick|event|wheel --out BENCH_X.json [--samples N]
//! bench_snapshot --compare BENCH_BASELINE.json BENCH_NEW.json
//! bench_snapshot --gate BENCH_BASELINE.json BENCH_NEW.json
//! ```
//!
//! The first times every SPEC app under the quick budget (at-commit and
//! SPB policies, SB 14) through the public `Simulation` entry point and
//! writes an `spb-bench-v1` snapshot. `--compare` schema-validates both
//! files, prints the per-cell ratios and the geometric-mean speedup,
//! and warns — without failing — about cells that regressed more than
//! the tolerance; only a schema/parse problem exits non-zero. `--gate`
//! is the blocking variant CI uses: it exits 1 when any bench's
//! min-of-samples ratio regresses beyond the machine-calibrated limit (see
//! `BenchSnapshot::gate_failures`).

use spb_bench::snapshot::{
    record_quick_grid, BenchSnapshot, GATE_TOLERANCE, REGRESSION_TOLERANCE, SCHEMA,
};
use spb_sim::KernelMode;

fn usage() -> ! {
    eprintln!(
        "usage: bench_snapshot --kernel tick|event|wheel --out FILE [--samples N]\n       bench_snapshot --compare BASELINE NEW\n       bench_snapshot --gate BASELINE NEW"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernel = None;
    let mut out = None;
    let mut samples = 3usize;
    let mut compare = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kernel" => {
                kernel = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--out" => {
                out = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--samples" => {
                samples = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--compare" | "--gate" => {
                let blocking = args[i] == "--gate";
                let a = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                let b = args.get(i + 2).cloned().unwrap_or_else(|| usage());
                compare = Some((a, b, blocking));
                i += 3;
            }
            _ => usage(),
        }
    }

    if let Some((base_path, new_path, blocking)) = compare {
        compare_snapshots(&base_path, &new_path, blocking);
        return;
    }

    let (Some(kernel), Some(out)) = (kernel, out) else {
        usage()
    };
    let mode = KernelMode::parse(&kernel).unwrap_or_else(|e| {
        eprintln!("bench_snapshot: {e}");
        std::process::exit(2);
    });
    let snap = record_quick_grid(mode, samples, |rec| println!("{}", rec.to_json()));
    std::fs::write(&out, snap.to_json_string()).unwrap_or_else(|e| {
        eprintln!("bench_snapshot: writing {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out} ({} benches, kernel {kernel})", snap.records.len());
}

/// Loads, validates, and diffs two snapshots. In advisory mode
/// (`--compare`) slowness never fails; in blocking mode (`--gate`)
/// calibrated min-sample regressions exit 1.
fn compare_snapshots(base_path: &str, new_path: &str, blocking: bool) {
    let load = |path: &str| -> BenchSnapshot {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_snapshot: reading {path}: {e}");
            std::process::exit(1);
        });
        BenchSnapshot::parse(&text).unwrap_or_else(|e| {
            eprintln!("bench_snapshot: {path} is not a valid {SCHEMA} snapshot: {e}");
            std::process::exit(1);
        })
    };
    let base = load(base_path);
    let new = load(new_path);
    println!(
        "comparing {} (kernel {}) -> {} (kernel {})",
        base_path, base.kernel, new_path, new.kernel
    );
    for b in &base.records {
        if let Some(n) = new.records.iter().find(|r| r.name == b.name) {
            println!(
                "{:<44} {:>9.2}ms -> {:>9.2}ms  ({:>5.2}x)",
                b.name,
                b.min_ns() as f64 / 1e6,
                n.min_ns() as f64 / 1e6,
                b.min_ns() as f64 / (n.min_ns() as f64).max(1.0)
            );
        }
    }
    match base.geomean_speedup(&new) {
        Some(g) => println!("geomean speedup: {g:.2}x"),
        None => println!("geomean speedup: no common benchmarks"),
    }
    if let (Some(b), Some(n)) = (base.geomean_mops(), new.geomean_mops()) {
        println!("geomean throughput: {b:.3} -> {n:.3} Mops/s");
    }
    if blocking {
        let report = base.gate_report(&new);
        println!(
            "bench gate: machine factor {:.3}, limit {:.3} ({}x tolerance)",
            report.machine, report.limit, GATE_TOLERANCE
        );
        // Every bench gets a verdict line, so a failing gate is
        // attributable to the exact app-policy cells that regressed
        // relative to their peers — not just a failure count.
        for b in &report.benches {
            println!(
                "bench gate: {:<4} {:<44} calibrated ratio {:.3}/{:.3}",
                if b.failed { "FAIL" } else { "ok" },
                b.name,
                b.ratio,
                report.limit
            );
        }
        for name in &report.missing {
            eprintln!("bench gate: FAIL {name}: missing from new snapshot");
        }
        if report.passed() {
            println!("bench gate: PASS (no calibrated min-sample regression beyond {GATE_TOLERANCE}x)");
        } else {
            let failed =
                report.missing.len() + report.benches.iter().filter(|b| b.failed).count();
            for f in base.gate_failures(&new) {
                eprintln!("bench gate: FAIL: {f}");
            }
            eprintln!("bench gate: {failed} benchmark(s) failed");
            std::process::exit(1);
        }
        return;
    }
    let warnings = base.regressions(&new);
    if warnings.is_empty() {
        println!("no regressions beyond {REGRESSION_TOLERANCE}x tolerance");
    } else {
        for w in &warnings {
            println!("warning: regression: {w}");
        }
        println!(
            "{} benchmark(s) regressed beyond {REGRESSION_TOLERANCE}x (non-blocking)",
            warnings.len()
        );
    }
}

//! Wall-time snapshots of the quick SPEC grid, and snapshot comparison.
//!
//! Two modes:
//!
//! ```text
//! bench_snapshot --kernel tick|event --out BENCH_X.json [--samples N]
//! bench_snapshot --compare BENCH_BASELINE.json BENCH_NEW.json
//! ```
//!
//! The first times every SPEC app under the quick budget (at-commit and
//! SPB policies, SB 14) through the public `Simulation` entry point and
//! writes an `spb-bench-v1` snapshot. The second schema-validates both
//! files, prints the per-cell ratios and the geometric-mean speedup,
//! and warns — without failing — about cells that regressed more than
//! the tolerance. Only a schema/parse problem exits non-zero, so CI
//! treats performance as advisory and correctness as binding.

use spb_bench::snapshot::{BenchRecord, BenchSnapshot, REGRESSION_TOLERANCE, SCHEMA};
use spb_sim::{KernelMode, PolicyKind, SimConfig, Simulation};
use spb_trace::profile::AppProfile;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: bench_snapshot --kernel tick|event --out FILE [--samples N]\n       bench_snapshot --compare BASELINE NEW"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernel = None;
    let mut out = None;
    let mut samples = 3usize;
    let mut compare = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kernel" => {
                kernel = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--out" => {
                out = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--samples" => {
                samples = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--compare" => {
                let a = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                let b = args.get(i + 2).cloned().unwrap_or_else(|| usage());
                compare = Some((a, b));
                i += 3;
            }
            _ => usage(),
        }
    }

    if let Some((base_path, new_path)) = compare {
        compare_snapshots(&base_path, &new_path);
        return;
    }

    let (Some(kernel), Some(out)) = (kernel, out) else {
        usage()
    };
    let mode = KernelMode::parse(&kernel).unwrap_or_else(|e| {
        eprintln!("bench_snapshot: {e}");
        std::process::exit(2);
    });
    let snap = run_quick_grid(mode, samples.max(1));
    std::fs::write(&out, snap.to_json_string()).unwrap_or_else(|e| {
        eprintln!("bench_snapshot: writing {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out} ({} benches, kernel {kernel})", snap.records.len());
}

/// Times every SPEC app × {at-commit, spb} quick cell under `mode`.
fn run_quick_grid(mode: KernelMode, samples: usize) -> BenchSnapshot {
    let policies = [
        ("at-commit", PolicyKind::AtCommit),
        ("spb", PolicyKind::spb_default()),
    ];
    let mut records = Vec::new();
    for app in AppProfile::spec2017() {
        for (label, policy) in &policies {
            let cfg = SimConfig::quick()
                .with_sb(14)
                .with_policy(policy.clone())
                .with_kernel(mode);
            let name = format!("quick_grid/{}-{label}-sb14", app.name());
            let mut samples_ns = Vec::with_capacity(samples);
            let mut uops = 0;
            // One untimed warm-up run, then `samples` timed runs.
            for timed in 0..=samples {
                let start = Instant::now();
                let r = Simulation::with_config(&app, &cfg).run_or_panic();
                let elapsed = start.elapsed();
                if timed > 0 {
                    samples_ns.push(elapsed.as_nanos() as u64);
                }
                uops = r.uops;
            }
            let rec = BenchRecord {
                name,
                samples_ns,
                elements: Some(uops),
            };
            println!("{}", rec.to_json());
            records.push(rec);
        }
    }
    BenchSnapshot {
        kernel: mode.label().to_string(),
        records,
    }
}

/// Loads, validates, and diffs two snapshots; never fails on slowness.
fn compare_snapshots(base_path: &str, new_path: &str) {
    let load = |path: &str| -> BenchSnapshot {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_snapshot: reading {path}: {e}");
            std::process::exit(1);
        });
        BenchSnapshot::parse(&text).unwrap_or_else(|e| {
            eprintln!("bench_snapshot: {path} is not a valid {SCHEMA} snapshot: {e}");
            std::process::exit(1);
        })
    };
    let base = load(base_path);
    let new = load(new_path);
    println!(
        "comparing {} (kernel {}) -> {} (kernel {})",
        base_path, base.kernel, new_path, new.kernel
    );
    for b in &base.records {
        if let Some(n) = new.records.iter().find(|r| r.name == b.name) {
            println!(
                "{:<44} {:>9.2}ms -> {:>9.2}ms  ({:>5.2}x)",
                b.name,
                b.min_ns() as f64 / 1e6,
                n.min_ns() as f64 / 1e6,
                b.min_ns() as f64 / (n.min_ns() as f64).max(1.0)
            );
        }
    }
    match base.geomean_speedup(&new) {
        Some(g) => println!("geomean speedup: {g:.2}x"),
        None => println!("geomean speedup: no common benchmarks"),
    }
    let warnings = base.regressions(&new);
    if warnings.is_empty() {
        println!("no regressions beyond {REGRESSION_TOLERANCE}x tolerance");
    } else {
        for w in &warnings {
            println!("warning: regression: {w}");
        }
        println!(
            "{} benchmark(s) regressed beyond {REGRESSION_TOLERANCE}x (non-blocking)",
            warnings.len()
        );
    }
}

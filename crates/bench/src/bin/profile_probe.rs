//! Ablation timings for hot-path work: full run vs checker-off vs pure
//! trace generation. Dev tool; not part of CI.

use spb_sim::{PolicyKind, SimConfig, Simulation};
use spb_trace::profile::AppProfile;
use spb_trace::TraceSource;
use std::time::Instant;

fn main() {
    for name in ["x264", "gcc", "mcf", "omnetpp", "xalancbmk"] {
        let app = AppProfile::by_name(name).unwrap();
        for (plabel, policy) in [
            ("at-commit", PolicyKind::AtCommit),
            ("spb", PolicyKind::spb_default()),
        ] {
            let cfg = SimConfig::quick().with_sb(14).with_policy(policy.clone());
            let mut nochk = cfg.clone();
            nochk.mem.checker_interval = 0;
            nochk.watchdog_cycles = 0;

            let t0 = Instant::now();
            let r = Simulation::with_config(&app, &cfg).run_or_panic();
            let full = t0.elapsed().as_secs_f64() * 1e3;

            let t0 = Instant::now();
            let r2 = Simulation::with_config(&app, &nochk).run_or_panic();
            let off = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(r.cycles, r2.cycles);

            // Pure trace generation for the same number of committed ops.
            let mut trace = app.build(cfg.seed);
            let t0 = Instant::now();
            let mut n = 0u64;
            let total = r.uops + r.per_core.iter().map(|c| c.warmup_uops).sum::<u64>();
            while n < total {
                if trace.next_op().is_none() {
                    break;
                }
                n += 1;
            }
            let gen = t0.elapsed().as_secs_f64() * 1e3;

            println!(
                "{name:10} {plabel:9}  cycles {:>9}  full {full:8.2}ms  checker-off {off:8.2}ms  ({:4.1}% checker)  tracegen {gen:6.2}ms ({:4.1}%)",
                r.cycles,
                (full - off) / full * 100.0,
                gen / full * 100.0
            );
        }
    }
}

//! Machine-readable benchmark snapshots (`BENCH_*.json`).
//!
//! The harness prints one JSON line per benchmark; this module gives
//! that line a schema (`spb-bench-v1`), collects lines into a snapshot
//! file tagged with the kernel that produced it, and compares two
//! snapshots (the committed `BENCH_BASELINE.json` against a fresh run)
//! with non-blocking regression warnings.

use spb_sim::{KernelMode, PolicyKind, SimConfig, Simulation};
use spb_stats::json::Json;
use spb_trace::profile::AppProfile;
use std::time::Instant;

/// Snapshot schema identifier; bump on layout changes. Derived fields
/// (`mops_per_sec`, `geomean_mops`) are additive — old snapshots parse
/// fine without them, so they do not bump the schema.
pub const SCHEMA: &str = "spb-bench-v1";

/// Warn when a benchmark's minimum regresses by more than this factor.
pub const REGRESSION_TOLERANCE: f64 = 1.15;

/// Fail the bench gate when a benchmark's median regresses more than
/// this factor beyond the snapshot-wide median ratio (see
/// [`BenchSnapshot::gate_failures`]).
pub const GATE_TOLERANCE: f64 = 1.25;

/// One benchmark's timing samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (`group/id`).
    pub name: String,
    /// Wall time of each timed iteration, in nanoseconds.
    pub samples_ns: Vec<u64>,
    /// Logical elements processed per iteration, if the group declared
    /// a throughput.
    pub elements: Option<u64>,
}

impl BenchRecord {
    /// Fastest sample, in nanoseconds.
    pub fn min_ns(&self) -> u64 {
        self.samples_ns.iter().copied().min().unwrap_or(0)
    }

    /// Arithmetic mean, in (fractional) nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().map(|&n| n as f64).sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Median sample, in nanoseconds (midpoint average for even counts).
    pub fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mut s = self.samples_ns.clone();
        s.sort_unstable();
        let mid = s.len() / 2;
        if s.len() % 2 == 1 {
            s[mid] as f64
        } else {
            (s[mid - 1] + s[mid]) as f64 / 2.0
        }
    }

    /// Elements per second at the median, if a throughput was declared.
    pub fn per_sec(&self) -> Option<f64> {
        let med = self.median_ns();
        self.elements
            .filter(|_| med > 0.0)
            .map(|n| n as f64 / (med / 1e9))
    }

    /// Millions of operations per second at the median — the
    /// human-facing throughput number the snapshot records per bench.
    pub fn mops_per_sec(&self) -> Option<f64> {
        self.per_sec().map(|p| p / 1e6)
    }

    /// The record as a JSON value (one line when rendered compact).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::str(&*self.name)),
            (
                "samples_ns",
                Json::arr(self.samples_ns.iter().map(|&n| Json::from(n))),
            ),
            ("min_ns", Json::from(self.min_ns())),
            ("mean_ns", Json::from(self.mean_ns())),
            ("median_ns", Json::from(self.median_ns())),
        ];
        if let Some(n) = self.elements {
            pairs.push(("elements", Json::from(n)));
        }
        if let Some(m) = self.mops_per_sec() {
            pairs.push(("mops_per_sec", Json::from(m)));
        }
        Json::obj(pairs)
    }

    /// Parses a record back from [`BenchRecord::to_json`]'s layout.
    pub fn from_json(v: &Json) -> Result<BenchRecord, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("record missing \"name\"")?
            .to_string();
        let samples_ns = v
            .get("samples_ns")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("record {name} missing \"samples_ns\""))?
            .iter()
            .map(|s| s.as_u64().ok_or_else(|| format!("{name}: bad sample")))
            .collect::<Result<Vec<u64>, _>>()?;
        if samples_ns.is_empty() {
            return Err(format!("record {name} has no samples"));
        }
        let elements = v.get("elements").and_then(Json::as_u64);
        Ok(BenchRecord {
            name,
            samples_ns,
            elements,
        })
    }
}

/// A set of benchmark records produced by one binary/kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Simulation kernel label (`tick` / `event`) the run used.
    pub kernel: String,
    /// One record per benchmark.
    pub records: Vec<BenchRecord>,
}

impl BenchSnapshot {
    /// Geometric mean of per-bench median throughput (Mops/s), across
    /// records that declared a throughput. The single headline number a
    /// snapshot carries.
    pub fn geomean_mops(&self) -> Option<f64> {
        let mut log_sum = 0.0;
        let mut n = 0u32;
        for r in &self.records {
            if let Some(m) = r.mops_per_sec() {
                if m > 0.0 {
                    log_sum += m.ln();
                    n += 1;
                }
            }
        }
        (n > 0).then(|| (log_sum / f64::from(n)).exp())
    }

    /// Renders the snapshot as pretty-printed `spb-bench-v1` JSON.
    pub fn to_json_string(&self) -> String {
        let mut pairs = vec![
            ("schema", Json::str(SCHEMA)),
            ("kernel", Json::str(&*self.kernel)),
        ];
        if let Some(g) = self.geomean_mops() {
            pairs.push(("geomean_mops", Json::from(g)));
        }
        pairs.push((
            "benches",
            Json::arr(self.records.iter().map(BenchRecord::to_json)),
        ));
        let v = Json::obj(pairs);
        format!("{v:#}\n")
    }

    /// Parses and schema-validates a snapshot file's contents.
    pub fn parse(text: &str) -> Result<BenchSnapshot, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        match v.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("expected schema {SCHEMA:?}, found {other:?}")),
        }
        let kernel = v
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or("snapshot missing \"kernel\"")?
            .to_string();
        let records = v
            .get("benches")
            .and_then(Json::as_arr)
            .ok_or("snapshot missing \"benches\"")?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if records.is_empty() {
            return Err("snapshot has no benchmark records".into());
        }
        Ok(BenchSnapshot {
            kernel,
            records,
        })
    }

    /// Geometric-mean speedup of `new` over `self`, across benchmarks
    /// present in both (>1 means `new` is faster). Compares the
    /// **minimum** samples: benches run on shared machines, and
    /// contention only ever inflates a sample, so the minimum is the
    /// least-noisy estimate of true cost.
    pub fn geomean_speedup(&self, new: &BenchSnapshot) -> Option<f64> {
        let mut log_sum = 0.0;
        let mut n = 0u32;
        for base in &self.records {
            let Some(fresh) = new.records.iter().find(|r| r.name == base.name) else {
                continue;
            };
            let (b, f) = (base.min_ns() as f64, fresh.min_ns() as f64);
            if b > 0.0 && f > 0.0 {
                log_sum += (b / f).ln();
                n += 1;
            }
        }
        (n > 0).then(|| (log_sum / f64::from(n)).exp())
    }

    /// Per-benchmark regression warnings: `new` minima more than
    /// [`REGRESSION_TOLERANCE`] above this baseline's. Informational —
    /// callers print them without failing the build.
    pub fn regressions(&self, new: &BenchSnapshot) -> Vec<String> {
        let mut out = Vec::new();
        for base in &self.records {
            let Some(fresh) = new.records.iter().find(|r| r.name == base.name) else {
                out.push(format!("{}: missing from new snapshot", base.name));
                continue;
            };
            let (b, f) = (base.min_ns() as f64, fresh.min_ns() as f64);
            if b > 0.0 && f > b * REGRESSION_TOLERANCE {
                out.push(format!(
                    "{}: min {:.2}ms vs baseline {:.2}ms ({:+.1}%)",
                    base.name,
                    f / 1e6,
                    b / 1e6,
                    (f / b - 1.0) * 100.0
                ));
            }
        }
        out
    }

    /// Blocking gate check: per-bench **min-of-samples** ratios of
    /// `new` over this baseline, calibrated by the snapshot-wide
    /// median of those ratios.
    ///
    /// The calibration makes the gate portable across machines: if the
    /// runner is uniformly 20% slower than the box that recorded the
    /// baseline, every ratio shifts by the same factor and the median
    /// absorbs it. What the gate then catches is a *relative*
    /// regression — a bench that got slower than its peers did — which
    /// is exactly what a code change (as opposed to a machine change)
    /// produces. The per-bench estimator is the minimum sample
    /// (contention only inflates samples, so the minimum is the
    /// least-noisy cost estimate), and [`GATE_TOLERANCE`] is set above
    /// the measured same-code run-to-run spread of those minima on a
    /// noisy shared box (~±15%): a flaky gate teaches people to ignore
    /// it, so the threshold is deliberately coarse and reliable. A
    /// bench exceeding the calibrated limit, or missing from `new`,
    /// is a failure. An empty return means the gate passes.
    pub fn gate_failures(&self, new: &BenchSnapshot) -> Vec<String> {
        let report = self.gate_report(new);
        let mut out: Vec<String> = report
            .missing
            .iter()
            .map(|name| format!("{name}: missing from new snapshot"))
            .collect();
        for b in report.benches.iter().filter(|b| b.failed) {
            out.push(format!(
                "{}: min-sample ratio {:.3} exceeds limit {:.3} \
                 (machine factor {:.3} x tolerance {GATE_TOLERANCE})",
                b.name, b.ratio, report.limit, report.machine,
            ));
        }
        out
    }

    /// The full per-bench view behind [`BenchSnapshot::gate_failures`]:
    /// every common bench with its calibrated ratio and verdict, so a
    /// failing gate is attributable to the specific `app-policy` cells
    /// that regressed instead of a bare summary count.
    pub fn gate_report(&self, new: &BenchSnapshot) -> GateReport {
        let mut report = GateReport::default();
        let mut ratios = Vec::new();
        for base in &self.records {
            let Some(fresh) = new.records.iter().find(|r| r.name == base.name) else {
                report.missing.push(base.name.clone());
                continue;
            };
            let (b, f) = (base.min_ns(), fresh.min_ns());
            if b > 0 && f > 0 {
                ratios.push((base.name.clone(), f as f64 / b as f64));
            }
        }
        if ratios.is_empty() {
            return report;
        }
        let mut sorted: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        report.machine = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        };
        report.limit = report.machine * GATE_TOLERANCE;
        report.benches = ratios
            .into_iter()
            .map(|(name, ratio)| GateBench {
                name,
                ratio,
                failed: ratio > report.limit,
            })
            .collect();
        report
    }
}

/// One bench's verdict in a [`GateReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct GateBench {
    /// Bench name (`quick_grid/<app>-<policy>-sb14`).
    pub name: String,
    /// Min-of-samples ratio of new over baseline (>1 = slower).
    pub ratio: f64,
    /// Whether the ratio exceeds the calibrated limit.
    pub failed: bool,
}

/// Structured result of a gate comparison (see
/// [`BenchSnapshot::gate_report`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Snapshot-wide median ratio — the machine-speed calibration.
    pub machine: f64,
    /// The failure threshold: `machine × GATE_TOLERANCE`.
    pub limit: f64,
    /// Every bench present in both snapshots, in baseline order.
    pub benches: Vec<GateBench>,
    /// Baseline benches absent from the new snapshot (always failures).
    pub missing: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (no missing benches, nothing over the
    /// limit).
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.benches.iter().all(|b| !b.failed)
    }
}

/// Times every SPEC app × {at-commit, spb} quick cell (SB 14) under
/// `mode` through the public [`Simulation`] entry point: one untimed
/// warm-up run per cell, then `samples` timed runs. `on_record` fires
/// as each cell finishes (progress reporting); the returned snapshot
/// carries every record. Shared by the `bench_snapshot` binary and
/// `spbsim bench`.
pub fn record_quick_grid(
    mode: KernelMode,
    samples: usize,
    mut on_record: impl FnMut(&BenchRecord),
) -> BenchSnapshot {
    let samples = samples.max(1);
    let policies = [
        ("at-commit", PolicyKind::AtCommit),
        ("spb", PolicyKind::spb_default()),
    ];
    let mut records = Vec::new();
    for app in AppProfile::spec2017() {
        for (label, policy) in &policies {
            let cfg = SimConfig::quick()
                .with_sb(14)
                .with_policy(policy.clone())
                .with_kernel(mode);
            let name = format!("quick_grid/{}-{label}-sb14", app.name());
            let mut samples_ns = Vec::with_capacity(samples);
            let mut uops = 0;
            for timed in 0..=samples {
                let start = Instant::now();
                let r = Simulation::with_config(&app, &cfg).run_or_panic();
                let elapsed = start.elapsed();
                if timed > 0 {
                    samples_ns.push(elapsed.as_nanos() as u64);
                }
                uops = r.uops;
            }
            let rec = BenchRecord {
                name,
                samples_ns,
                elements: Some(uops),
            };
            on_record(&rec);
            records.push(rec);
        }
    }
    BenchSnapshot {
        kernel: mode.label().to_string(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, samples: &[u64]) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            samples_ns: samples.to_vec(),
            elements: Some(1000),
        }
    }

    #[test]
    fn stats_are_exact_on_small_samples() {
        let r = rec("a", &[30, 10, 20]);
        assert_eq!(r.min_ns(), 10);
        assert_eq!(r.mean_ns(), 20.0);
        assert_eq!(r.median_ns(), 20.0);
        let even = rec("b", &[10, 20, 30, 100]);
        assert_eq!(even.median_ns(), 25.0);
        assert_eq!(rec("c", &[2_000_000]).per_sec(), Some(500_000.0));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = BenchSnapshot {
            kernel: "event".into(),
            records: vec![rec("grid/mcf", &[5, 6, 7]), rec("grid/xz", &[1, 2, 3])],
        };
        let text = snap.to_json_string();
        assert_eq!(BenchSnapshot::parse(&text).unwrap(), snap);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_empty_snapshots() {
        assert!(BenchSnapshot::parse("{\"schema\":\"v0\"}").is_err());
        assert!(
            BenchSnapshot::parse("{\"schema\":\"spb-bench-v1\",\"kernel\":\"tick\",\"benches\":[]}")
                .is_err()
        );
        assert!(BenchSnapshot::parse("not json").is_err());
    }

    #[test]
    fn compare_warns_on_regressions_and_computes_geomean() {
        let base = BenchSnapshot {
            kernel: "tick".into(),
            records: vec![rec("a", &[100]), rec("b", &[100]), rec("gone", &[1])],
        };
        let new = BenchSnapshot {
            kernel: "event".into(),
            records: vec![rec("a", &[50]), rec("b", &[130])],
        };
        let warnings = base.regressions(&new);
        assert_eq!(warnings.len(), 2, "{warnings:?}"); // b regressed, gone missing
        assert!(warnings.iter().any(|w| w.starts_with("b:")));
        // geomean of 100/50 and 100/130
        let g = base.geomean_speedup(&new).unwrap();
        assert!((g - (2.0f64 * (100.0 / 130.0)).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn throughput_fields_are_derived_and_serialized() {
        // 1000 elements in a median of 2000ns -> 500 Mops/s.
        let r = rec("a", &[2_000]);
        assert_eq!(r.mops_per_sec(), Some(500.0));
        let snap = BenchSnapshot {
            kernel: "wheel".into(),
            records: vec![rec("a", &[2_000]), rec("b", &[8_000])],
        };
        // geomean of 500 and 125 Mops/s = 250.
        assert!((snap.geomean_mops().unwrap() - 250.0).abs() < 1e-9);
        let text = snap.to_json_string();
        assert!(text.contains("\"mops_per_sec\""), "{text}");
        assert!(text.contains("\"geomean_mops\""), "{text}");
        // Derived fields are additive: the snapshot still round-trips.
        assert_eq!(BenchSnapshot::parse(&text).unwrap(), snap);
    }

    #[test]
    fn gate_calibrates_out_uniform_machine_deltas() {
        let base = BenchSnapshot {
            kernel: "wheel".into(),
            records: vec![rec("a", &[100]), rec("b", &[100]), rec("c", &[100])],
        };
        // Uniformly 30% slower (a different machine): gate passes.
        let uniform = BenchSnapshot {
            kernel: "wheel".into(),
            records: vec![rec("a", &[130]), rec("b", &[130]), rec("c", &[130])],
        };
        assert!(base.gate_failures(&uniform).is_empty());
        // One bench 50% slower than its peers: gate fails exactly it.
        let relative = BenchSnapshot {
            kernel: "wheel".into(),
            records: vec![rec("a", &[100]), rec("b", &[100]), rec("c", &[150])],
        };
        let failures = base.gate_failures(&relative);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("c:"), "{failures:?}");
        // A bench missing from the fresh run always fails the gate.
        let missing = BenchSnapshot {
            kernel: "wheel".into(),
            records: vec![rec("a", &[100]), rec("b", &[100])],
        };
        let failures = base.gate_failures(&missing);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("missing"), "{failures:?}");
    }

    #[test]
    fn gate_report_names_every_bench_with_a_verdict() {
        let base = BenchSnapshot {
            kernel: "wheel".into(),
            records: vec![rec("a", &[100]), rec("b", &[100]), rec("c", &[100])],
        };
        let relative = BenchSnapshot {
            kernel: "wheel".into(),
            records: vec![rec("a", &[100]), rec("b", &[100]), rec("c", &[150])],
        };
        let report = base.gate_report(&relative);
        assert!(!report.passed());
        // Every common bench appears with its calibrated ratio — the
        // passing ones too, so a failure is attributable per app.
        assert_eq!(report.benches.len(), 3);
        assert_eq!(report.machine, 1.0);
        assert_eq!(report.limit, GATE_TOLERANCE);
        let verdicts: Vec<(&str, bool)> = report
            .benches
            .iter()
            .map(|b| (b.name.as_str(), b.failed))
            .collect();
        assert_eq!(verdicts, vec![("a", false), ("b", false), ("c", true)]);
        assert!((report.benches[2].ratio - 1.5).abs() < 1e-12);
        // The passing direction agrees with the string API.
        let uniform = BenchSnapshot {
            kernel: "wheel".into(),
            records: vec![rec("a", &[130]), rec("b", &[130]), rec("c", &[130])],
        };
        assert!(base.gate_report(&uniform).passed());
    }
}

//! A `std`-only stand-in for the subset of the Criterion API the bench
//! targets use.
//!
//! The build environment is offline, so the real `criterion` crate is
//! unavailable. This harness keeps the bench sources structurally
//! identical (same `criterion_group!`/`criterion_main!`/`bench_function`
//! shape) while timing with `std::time::Instant`: each benchmark runs
//! one untimed warm-up iteration, then `sample_size` timed iterations,
//! and reports mean/min wall time per iteration plus throughput when the
//! group declared one.

use crate::snapshot::BenchRecord;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Top-level bench driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(name, &b.samples, None);
    }

    /// Opens a named group of benchmarks sharing a throughput setting.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A benchmark group (stand-in for `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(&mut self, id: S, mut f: F) {
        let mut b = Bencher {
            sample_size: self.parent.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id.as_ref());
        report(&full, &b.samples, self.throughput);
    }

    /// Closes the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Per-benchmark timing context handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then `sample_size` timed
    /// calls.
    ///
    /// Calling `iter` again **accumulates** further samples into the
    /// same benchmark (Criterion semantics); it must never discard the
    /// samples an earlier call collected.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Samples collected so far (all `iter` calls combined).
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }
}

/// Builds the machine-readable record for one finished benchmark.
fn record(name: &str, samples: &[Duration], throughput: Option<Throughput>) -> BenchRecord {
    BenchRecord {
        name: name.to_string(),
        samples_ns: samples.iter().map(|d| d.as_nanos() as u64).collect(),
        elements: throughput.map(|t| match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }),
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let rec = record(name, samples, throughput);
    let mean = Duration::from_nanos(rec.mean_ns() as u64);
    let median = Duration::from_nanos(rec.median_ns() as u64);
    let min = Duration::from_nanos(rec.min_ns());
    let rate = throughput.map(|t| {
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        let per_sec = rec.per_sec().expect("throughput declared");
        format!("  {per_sec:>12.3e} {unit}")
    });
    println!(
        "{name:<44} mean {:>10.3?}  median {:>10.3?}  min {:>10.3?}{}",
        mean,
        median,
        min,
        rate.unwrap_or_default()
    );
    // One machine-readable line per benchmark; `bench_snapshot` and the
    // CI smoke collect these into a BENCH_*.json snapshot.
    println!("{}", rec.to_json());
}

/// Declares a bench group function calling each target with a shared
/// [`Criterion`] (stand-in for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed bench groups (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_accumulates_across_calls() {
        // Regression test: a second `iter` call used to clear the
        // samples of the first, silently halving long benchmarks.
        let mut b = Bencher {
            sample_size: 3,
            samples: Vec::new(),
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.samples().len(), 3);
        b.iter(|| 2 + 2);
        assert_eq!(b.samples().len(), 6, "second iter must accumulate");
    }

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("inner", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }
}

//! One Criterion benchmark per paper table/figure.
//!
//! Each benchmark times a miniaturized slice of the corresponding
//! experiment (small app set, short budget) so `cargo bench` finishes in
//! minutes while still exercising every figure's code path. The full
//! regenerators are the `spb-experiments` binaries.

use spb_bench::harness::Criterion;
use spb_bench::{bench_apps, bench_config, bench_sb_bound_apps};
use spb_bench::{criterion_group, criterion_main};
use spb_mem::prefetch::PrefetcherKind;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_sim::Simulation;
use std::hint::black_box;

fn bench_grid_slice(c: &mut Criterion, name: &str, sb: usize, policy: PolicyKind) {
    c.bench_function(name, |b| {
        let apps = bench_sb_bound_apps();
        let cfg = bench_config().with_sb(sb).with_policy(policy);
        b.iter(|| black_box(SuiteResult::run(&apps, &cfg)));
    });
}

fn figures(c: &mut Criterion) {
    // Table I: configuration dump (static — trivially fast, kept for
    // one-bench-per-table completeness).
    c.bench_function("tab1_config_dump", |b| {
        b.iter(|| black_box(spb_experiments::tab1::run(spb_experiments::Budget::Quick)));
    });

    // Figure 1: SB-stall ratios under at-commit across SB sizes.
    c.bench_function("fig01_sb_stall_ratio", |b| {
        let apps = bench_sb_bound_apps();
        b.iter(|| {
            for sb in [14usize, 56] {
                let cfg = bench_config().with_sb(sb);
                black_box(SuiteResult::run(&apps, &cfg));
            }
        });
    });

    // Figure 3: region attribution of SB stalls.
    c.bench_function("fig03_region_attribution", |b| {
        let app = &bench_sb_bound_apps()[0];
        let cfg = bench_config();
        b.iter(|| {
            let r = Simulation::with_config(app, &cfg).run_or_panic();
            black_box(r.cpu.sb_stall_by_region)
        });
    });

    // Figures 5/6: the policy × SB-size grid (perf vs ideal).
    bench_grid_slice(
        c,
        "fig05_policy_grid_at_commit_sb14",
        14,
        PolicyKind::AtCommit,
    );
    bench_grid_slice(
        c,
        "fig06_policy_grid_spb_sb14",
        14,
        PolicyKind::spb_default(),
    );

    // Figure 7: energy model evaluation on top of a run.
    c.bench_function("fig07_energy_breakdown", |b| {
        let app = &bench_apps()[0];
        let cfg = bench_config();
        b.iter(|| {
            let r = Simulation::with_config(app, &cfg).run_or_panic();
            black_box(r.energy.total_nj())
        });
    });

    // Figures 8/9: SB-stall normalization across policies.
    c.bench_function("fig08_sb_stall_normalization", |b| {
        let apps = bench_sb_bound_apps();
        b.iter(|| {
            let base = SuiteResult::run(&apps, &bench_config().with_sb(14));
            let spb = SuiteResult::run(
                &apps,
                &bench_config()
                    .with_sb(14)
                    .with_policy(PolicyKind::spb_default()),
            );
            black_box(spb_experiments::fig08::norm_sb_stalls(&spb, &base, true))
        });
    });
    bench_grid_slice(c, "fig09_per_app_sb_stalls", 28, PolicyKind::spb_default());

    // Figure 10: issue-stall split (same grid data, different view).
    bench_grid_slice(c, "fig10_issue_stall_split", 14, PolicyKind::IdealSb);

    // Figure 11: prefetch outcome classification.
    c.bench_function("fig11_prefetch_classification", |b| {
        let app = &bench_sb_bound_apps()[0];
        let cfg = bench_config().with_policy(PolicyKind::spb_default());
        b.iter(|| {
            let r = Simulation::with_config(app, &cfg).run_or_panic();
            black_box((r.mem.prefetch_successful, r.mem.prefetch_late))
        });
    });

    // Figures 12/13: traffic and tag-check overheads.
    c.bench_function("fig12_fig13_traffic_overheads", |b| {
        let app = &bench_sb_bound_apps()[1];
        b.iter(|| {
            let ac = Simulation::with_config(app, &bench_config()).run_or_panic();
            let spb = Simulation::with_config(
                app,
                &bench_config().with_policy(PolicyKind::spb_default()),
            )
            .run_or_panic();
            black_box((
                spb.mem.l1_tag_checks as f64 / ac.mem.l1_tag_checks.max(1) as f64,
                spb.mem.prefetch_requests,
            ))
        });
    });

    // Figures 14/15: L1D-miss-pending execution stalls.
    c.bench_function("fig14_fig15_l1d_miss_pending", |b| {
        let app = &bench_sb_bound_apps()[0];
        b.iter(|| {
            let r = Simulation::with_config(app, &bench_config().with_sb(14)).run_or_panic();
            black_box(r.topdown.l1d_miss_pending_stalls())
        });
    });

    // Figure 16: SPB under an aggressive generic prefetcher.
    c.bench_function("fig16_aggressive_prefetcher", |b| {
        let app = &bench_sb_bound_apps()[0];
        let mut cfg = bench_config().with_policy(PolicyKind::spb_default());
        cfg.mem.prefetcher = PrefetcherKind::Aggressive;
        b.iter(|| black_box(Simulation::with_config(app, &cfg).run_or_panic()));
    });

    // Figure 17: a Table II core (Silvermont) configuration.
    c.bench_function("fig17_silvermont_core", |b| {
        let app = &bench_sb_bound_apps()[0];
        let mut cfg = bench_config().with_policy(PolicyKind::spb_default());
        cfg.core = spb_cpu::CoreConfig::silvermont();
        b.iter(|| black_box(Simulation::with_config(app, &cfg).run_or_panic()));
    });

    // Figure 18: an 8-thread PARSEC run over the coherent hierarchy.
    c.bench_function("fig18_parsec_8_threads", |b| {
        let app = spb_trace::profile::AppProfile::by_name("dedup").unwrap();
        let mut cfg = bench_config().with_policy(PolicyKind::spb_default());
        cfg.warmup_uops = 5_000;
        cfg.measure_uops = 30_000;
        b.iter(|| black_box(Simulation::with_config(&app, &cfg).run_or_panic()));
    });

    // §IV-C sensitivity: one off-default N.
    c.bench_function("sens_n_window_24", |b| {
        let app = &bench_sb_bound_apps()[0];
        let cfg = bench_config().with_sb(14).with_policy(PolicyKind::spb(24, true));
        b.iter(|| black_box(Simulation::with_config(app, &cfg).run_or_panic()));
    });

    // SB-shrink claim: the 20-entry SPB configuration.
    c.bench_function("sb20_shrunk_store_buffer", |b| {
        let app = &bench_sb_bound_apps()[1];
        let cfg = bench_config()
            .with_sb(20)
            .with_policy(PolicyKind::spb_default());
        b.iter(|| black_box(Simulation::with_config(app, &cfg).run_or_panic()));
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = figures
}
criterion_main!(benches);

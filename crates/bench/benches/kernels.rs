//! Throughput benchmarks for the simulator's hot kernels.
//!
//! These are the numbers that determine how much evaluation a wall-clock
//! budget buys: simulated µops per second through the full core + memory
//! stack, raw cache-array and detector operation rates, and the burst
//! queue's drain cost.

use spb_bench::harness::{Criterion, Throughput};
use spb_bench::{criterion_group, criterion_main};
use spb_core::detector::{SpbConfig, SpbDetector};
use spb_mem::cache::{CacheArray, CacheGeometry};
use spb_mem::line::CoherenceState;
use spb_mem::{MemoryConfig, MemorySystem};
use spb_sim::{KernelMode, SimConfig, Simulation};
use spb_trace::profile::AppProfile;
use std::hint::black_box;

fn kernels(c: &mut Criterion) {
    // Full-stack simulation throughput (µops/second) through the
    // public `Simulation` entry point — the same code path every
    // experiment takes — under each kernel. A hand-rolled
    // mem.tick/core.cycle loop here would silently drift from the real
    // runner (and did: it skipped warm-up and the invariant checker),
    // so instead the bench pins both kernels to the cycle count of a
    // reference `Simulation` run.
    let mut g = c.benchmark_group("sim_throughput");
    const UOPS: u64 = 100_000;
    g.throughput(Throughput::Elements(UOPS));
    for name in ["x264", "povray"] {
        let app = AppProfile::by_name(name).unwrap();
        let mut cfg = SimConfig::quick();
        cfg.measure_uops = UOPS;
        let reference = Simulation::with_config(&app, &cfg).run_or_panic().cycles;
        for kernel in [KernelMode::Tick, KernelMode::Event] {
            let cfg = cfg.clone().with_kernel(kernel);
            g.bench_function(format!("{}_{name}", kernel.label()), |b| {
                b.iter(|| {
                    let r = Simulation::with_config(&app, &cfg).run_or_panic();
                    assert_eq!(
                        r.cycles, reference,
                        "{name}: {} kernel diverged from the reference run",
                        kernel.label()
                    );
                    black_box(r.cycles)
                });
            });
        }
    }
    g.finish();

    // SPB detector: pure observe throughput on a contiguous stream.
    let mut g = c.benchmark_group("spb_detector");
    const STORES: u64 = 1_000_000;
    g.throughput(Throughput::Elements(STORES));
    g.bench_function("observe_contiguous_stream", |b| {
        b.iter(|| {
            let mut d = SpbDetector::new(SpbConfig::default());
            let mut triggers = 0u64;
            for i in 0..STORES {
                if d.observe_store(i * 8).is_some() {
                    triggers += 1;
                }
            }
            black_box(triggers)
        });
    });
    g.finish();

    // Cache array: lookup/insert mix at L1 geometry.
    let mut g = c.benchmark_group("cache_array");
    const OPS: u64 = 1_000_000;
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("l1_lookup_insert_mix", |b| {
        b.iter(|| {
            let mut l1 = CacheArray::new(CacheGeometry::new(32 * 1024, 8));
            let mut hits = 0u64;
            let mut x = 1234567u64;
            for _ in 0..OPS {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let block = x % 2048; // 4x the L1 capacity: plenty of misses
                if l1.lookup(block).is_some() {
                    hits += 1;
                    l1.touch(block);
                } else {
                    l1.insert(block, CoherenceState::Exclusive, 0, None);
                }
            }
            black_box(hits)
        });
    });
    g.finish();

    // Burst queue drain: enqueue a page burst and tick it dry.
    let mut g = c.benchmark_group("burst_queue");
    g.bench_function("enqueue_and_drain_page", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            mem.enqueue_burst(0, 0..64u64, 0);
            let mut now = 0;
            while mem.burst_queue_len(0) > 0 {
                mem.tick(now);
                now += 1;
            }
            black_box(now)
        });
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = kernels
}
criterion_main!(benches);

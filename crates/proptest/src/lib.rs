//! A self-contained, `std`-only stand-in for the subset of the
//! [proptest](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment is fully offline (no crates.io registry), so
//! the real `proptest` cannot be fetched. This crate re-implements just
//! enough of its surface — the [`proptest!`] macro, integer-range and
//! tuple strategies, `prop_map`, [`collection::vec`], `any::<T>()`, and
//! the `prop_assert*` macros — that the existing property tests compile
//! and run unchanged.
//!
//! Semantics differ from the real proptest in two deliberate ways:
//!
//! - **No shrinking.** A failing case reports the generated inputs and
//!   the case seed, but does not minimize them.
//! - **Fully deterministic.** Case generation is seeded from the test
//!   name and case index, so every run (and every machine) explores the
//!   same inputs. Failures are therefore always reproducible.

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Number of generated cases per property unless overridden with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
pub const DEFAULT_CASES: u32 = 48;

/// Runner configuration (only the case count is modelled).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

/// Deterministic split-mix/xoshiro-style PRNG used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds the generator (xoshiro256** seeded via splitmix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (`bound` > 0; modulo method — fine
    /// for test-case generation).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A source of values for one property argument.
///
/// The associated-type shape matches real proptest closely enough that
/// `impl Strategy<Value = T>` return types keep working.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize);

// u64 needs its own impl: the span itself can overflow u64.
impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let span = end.wrapping_sub(start).wrapping_add(1);
        if span == 0 {
            return rng.next_u64();
        }
        start + rng.below(span)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// A strategy producing any value of `T` (proptest's `any::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates arbitrary values of `T` over its whole domain.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with elements from `element` and a length
    /// drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length lies in `len` (proptest's
    /// `collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Best-effort extraction of the human-readable message from a panic
/// payload (`assert!` and `panic!` produce `String` or `&'static str`).
#[doc(hidden)]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
        .unwrap_or("<non-string panic payload>")
}

/// Runs `f` once per case with a deterministic per-case RNG.
///
/// On panic the failure is re-raised with the property name, failing
/// case index, and case seed *in the panic message itself*, so a CI log
/// that captures nothing but the panic is enough to reproduce: seed a
/// [`TestRng::seed_from_u64`] with the printed seed and re-run the body.
///
/// # Panics
///
/// Panics if any case's body panics.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: ProptestConfig, name: &str, mut f: F) {
    // FNV-1a over the test name so each property explores its own space.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let seed = h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            panic!(
                "property {name:?} failed at case {case} of {} (seed {seed:#x}): {}",
                config.cases,
                panic_message(payload.as_ref()),
            );
        }
    }
}

/// Declares deterministic property tests (subset of proptest's macro).
///
/// Supports an optional `#![proptest_config(...)]` header, doc comments
/// and attributes per property, and `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    let __case = format!(
                        concat!("(", $(stringify!($arg), " = {:?}, ",)* ")"),
                        $(&$arg),*
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(payload) = __outcome {
                        // Fold the generated inputs into the payload so the
                        // outer `run_cases` panic carries inputs + seed.
                        ::std::panic::panic_any(format!(
                            "failing inputs {__case}: {}",
                            $crate::panic_message(payload.as_ref()),
                        ));
                    }
                });
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
            let w = Strategy::generate(&(3usize..=9), &mut rng);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(0u64..1000, 1..50);
        let mut a = TestRng::seed_from_u64(99);
        let mut b = TestRng::seed_from_u64(99);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn prop_map_applies() {
        let strat = (0u64..10).prop_map(|v| v * 8);
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 8, 0);
        }
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(x in 1u64..100, v in collection::vec(0u32..7, 1..20)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(!v.is_empty());
            for e in v {
                prop_assert!(e < 7, "element {e} escaped range");
            }
        }
    }

    /// A failing property's panic message alone must be enough to
    /// reproduce it: it names the property, the failing case index, and
    /// the case seed, plus the assertion's own message.
    #[test]
    fn failure_panic_message_carries_seed_and_case() {
        let payload = std::panic::catch_unwind(|| {
            crate::run_cases(ProptestConfig::with_cases(16), "demo_property", |rng| {
                let v = rng.below(1000);
                assert!(v % 7 != 3, "value {v} hit the bad residue");
            });
        })
        .expect_err("the property must fail within 16 cases");
        let msg = crate::panic_message(payload.as_ref()).to_string();
        assert!(
            msg.contains("demo_property"),
            "panic names the property: {msg}"
        );
        assert!(
            msg.contains("failed at case "),
            "panic carries the case index: {msg}"
        );
        assert!(msg.contains("seed 0x"), "panic carries the seed: {msg}");
        assert!(
            msg.contains("bad residue"),
            "panic keeps the original assertion message: {msg}"
        );
        // The printed seed really reproduces the failure.
        let seed_hex = msg
            .split("seed 0x")
            .nth(1)
            .and_then(|s| s.split(')').next())
            .expect("seed parses back out of the message");
        let seed = u64::from_str_radix(seed_hex, 16).expect("hex seed");
        let mut rng = TestRng::seed_from_u64(seed);
        assert_eq!(rng.below(1000) % 7, 3, "replaying the seed re-fails");
    }

    /// The macro path folds the generated inputs into the panic message.
    #[test]
    fn macro_failure_reports_inputs_in_panic() {
        proptest! {
            fn inner_always_fails(x in 10u64..20) {
                prop_assert!(x < 10, "x was {x}");
            }
        }
        let payload =
            std::panic::catch_unwind(inner_always_fails).expect_err("property always fails");
        let msg = crate::panic_message(payload.as_ref()).to_string();
        assert!(
            msg.contains("failing inputs (x = "),
            "inputs appear in the panic: {msg}"
        );
        assert!(
            msg.contains("inner_always_fails"),
            "property name appears: {msg}"
        );
    }
}

//! The out-of-order core: dispatch, completion, commit, and SB drain.

use crate::config::CoreConfig;
use crate::rob::{RobEntry, RobRing, SbRing};
use spb_mem::blockmap::BlockMap;
use crate::policy::StorePrefetchPolicy;
use spb_mem::MemorySystem;
use spb_obs::{Event, EventKind, Observer};
use spb_stats::{Histogram, StallCause, TopDown};
use spb_trace::{CodeRegion, MicroOp, OpKind, TraceSource};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Size of the completion ring (max dependency distance honoured).
const RING: usize = 1024;

/// Fraction of wrong-path µops that access the L1D (loads on the wrong
/// path), used for the energy/L1-traffic accounting of Figures 7 and 13.
const WRONG_PATH_LOAD_RATIO: f64 = 0.25;
/// Fraction of wrong-path µops that are stores (drives the at-execute
/// policy's wasted RFOs).
const WRONG_PATH_STORE_RATIO: f64 = 0.125;

/// Counters specific to the core model (the Top-Down breakdown lives in
/// [`TopDown`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed branches.
    pub committed_branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Estimated wrong-path µops fetched while redirects were pending.
    pub wrong_path_uops: u64,
    /// Estimated wrong-path L1D accesses (energy model input).
    pub wrong_path_l1_accesses: u64,
    /// Loads satisfied by store-to-load forwarding from the SB (no L1
    /// access; the load reads the youngest older store's data).
    pub store_forwards: u64,
    /// Stores merged into an existing SB entry (coalescing mode only).
    pub coalesced_stores: u64,
    /// SB-stall cycles attributed to the code region of the blocking
    /// store (Figure 3), indexed parallel to [`CodeRegion::ALL`].
    pub sb_stall_by_region: [u64; 5],
    /// Explicitly modeled wrong-path stores fetched from the trace (the
    /// squash injector's streams), as opposed to the synthesized
    /// [`CpuStats::wrong_path_uops`] estimate.
    pub wrong_path_stores_injected: u64,
    /// Squash episodes resolved: each ends one injected wrong-path run
    /// and triggers waste attribution in the memory system.
    pub squash_episodes: u64,
}

impl CpuStats {
    /// SB-stall cycles charged to `region`.
    pub fn sb_stalls_in(&self, region: CodeRegion) -> u64 {
        let idx = CodeRegion::ALL
            .iter()
            .position(|r| *r == region)
            .expect("every region is in ALL");
        self.sb_stall_by_region[idx]
    }
}

/// One simulated out-of-order core.
///
/// Drive it by calling [`Core::cycle`] once per cycle (after
/// [`MemorySystem::tick`]), or use [`Core::run_until_committed`] for
/// single-core runs. See the crate docs for the modelling rationale.
pub struct Core {
    id: usize,
    config: CoreConfig,
    trace: Box<dyn TraceSource + Send>,
    policy: Box<dyn StorePrefetchPolicy + Send>,
    rob: RobRing,
    pending_op: Option<MicroOp>,
    completion_ring: [u64; RING],
    seq: u64,
    iq: BinaryHeap<Reverse<u64>>,
    loads_in_flight: usize,
    stores_in_machine: usize,
    sb_pending: SbRing, // (addr, pc, commit cycle)
    /// Post-commit SB residency (cycles from commit to drain).
    sb_residency: Histogram,
    /// Qword addresses with at least one store still in the machine
    /// (dispatched, not yet drained), for store-to-load forwarding.
    pending_store_qwords: BlockMap<u32>,
    sb_next_attempt: u64,
    fetch_resume_at: u64,
    last_store_addr: u64,
    /// Whether the front end is currently feeding an injected wrong-path
    /// store run; cleared (and the squash charged) when the next
    /// correct-path µop arrives.
    in_wrong_path: bool,
    trace_done: bool,
    topdown: TopDown,
    stats: CpuStats,
    obs: Observer,
    /// Open dispatch-stall episode: (cause, start cycle, stalled cycles).
    /// Tracked only while an observer is attached.
    stall_episode: Option<(StallCause, u64, u32)>,
    /// Dispatch-stall cause (and blocking code-region index for SB
    /// stalls) captured by the last idle [`Core::next_event_at`] probe,
    /// replayed over the skipped span by [`Core::skip_span`].
    skip_stall: Option<(StallCause, usize)>,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("config", &self.config)
            .field("rob_occupancy", &self.rob.len())
            .field("sb_occupancy", &self.stores_in_machine)
            .field("committed", &self.topdown.committed_uops())
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core with the given id, configuration, instruction
    /// source and store-prefetch policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(
        id: usize,
        config: CoreConfig,
        trace: Box<dyn TraceSource + Send>,
        policy: Box<dyn StorePrefetchPolicy + Send>,
    ) -> Self {
        config.validate();
        Self {
            id,
            config,
            trace,
            policy,
            rob: RobRing::new(config.rob_entries),
            pending_op: None,
            completion_ring: [0; RING],
            seq: 0,
            iq: BinaryHeap::new(),
            loads_in_flight: 0,
            stores_in_machine: 0,
            sb_pending: SbRing::new(config.sb_entries),
            sb_residency: Histogram::new("sb_residency_cycles", 16, 64),
            pending_store_qwords: BlockMap::new(),
            sb_next_attempt: 0,
            fetch_resume_at: 0,
            last_store_addr: 0,
            in_wrong_path: false,
            trace_done: false,
            topdown: TopDown::new(),
            stats: CpuStats::default(),
            obs: Observer::off(),
            stall_episode: None,
            skip_stall: None,
        }
    }

    /// Attaches an observability sink. Emitted events are pure reads of
    /// core state, so attaching one never changes a simulated number.
    pub fn set_observer(&mut self, obs: Observer) {
        self.obs = obs;
    }

    /// Emits the still-open dispatch-stall episode, if any. The runner
    /// calls this when a run ends so a run-ending stall is not lost.
    pub fn flush_stall_episode(&mut self) {
        if let Some((cause, start, cycles)) = self.stall_episode.take() {
            self.obs.emit(|| Event {
                cycle: start,
                core: self.id as u8,
                kind: EventKind::StallEpisode { cause, cycles },
            });
        }
    }

    /// The core's id (index into the memory system).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Committed µops so far.
    pub fn committed_uops(&self) -> u64 {
        self.topdown.committed_uops()
    }

    /// The Top-Down cycle accounting.
    pub fn topdown(&self) -> &TopDown {
        &self.topdown
    }

    /// Core-specific counters.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Whether the trace ended and all in-flight work has retired.
    pub fn is_drained(&self) -> bool {
        self.trace_done && self.rob.is_empty() && self.sb_pending.is_empty()
    }

    /// Current SB occupancy (dispatched-but-undrained stores).
    pub fn sb_occupancy(&self) -> usize {
        self.stores_in_machine
    }

    /// Post-commit SB residency distribution (cycles from commit to
    /// drain) of the stores drained so far.
    pub fn sb_residency(&self) -> &Histogram {
        &self.sb_residency
    }

    /// Clears all measurement state (end of warm-up) without touching
    /// pipeline occupancy.
    pub fn reset_stats(&mut self) {
        self.topdown.reset();
        self.stats = CpuStats::default();
        self.sb_residency.reset();
    }

    /// Advances the core by one cycle against `mem`.
    ///
    /// Call [`MemorySystem::tick`] for the same cycle first so the SPB
    /// burst queue drains before stores retry.
    pub fn cycle(&mut self, mem: &mut MemorySystem, now: u64) {
        let committed = self.commit(mem, now);
        self.drain_store_buffer(mem, now);
        self.dispatch(mem, now);
        self.topdown.tick();
        self.topdown.record_commit(committed);
        // "Execution stalls with L1D miss pending" (Intel Top-Down):
        // nothing retired this cycle, there is in-flight work — in the
        // ROB *or* waiting in the SB (a drain blocked on a store miss
        // keeps the counter ticking even if dispatch starvation drained
        // the ROB) — and a demand L1D miss is outstanding.
        if committed == 0
            && (!self.rob.is_empty() || !self.sb_pending.is_empty())
            && mem.has_pending_demand_miss(self.id, now)
        {
            self.topdown.record_l1d_miss_pending_stall();
        }
    }

    /// Accounts one cycle in which this hardware thread does not own
    /// the pipeline (SMT round-robin): the clock advances and the
    /// memory-boundness metric keeps ticking, but no dispatch, commit,
    /// or drain happens.
    pub fn tick_idle(&mut self, mem: &mut MemorySystem, now: u64) {
        self.topdown.tick();
        if (!self.rob.is_empty() || !self.sb_pending.is_empty())
            && mem.has_pending_demand_miss(self.id, now)
        {
            self.topdown.record_l1d_miss_pending_stall();
        }
    }

    /// Runs single-core until `uops` µops have committed; returns the
    /// cycle count consumed. Also drives [`MemorySystem::tick`].
    pub fn run_until_committed(&mut self, mem: &mut MemorySystem, uops: u64) -> u64 {
        let mut now = 0;
        let target = self.committed_uops() + uops;
        while self.committed_uops() < target && !self.is_drained() {
            mem.tick(now);
            self.cycle(mem, now);
            now += 1;
        }
        now
    }

    /// Probes whether this core has same-cycle work at `now`, and if
    /// not, when its state can next change (the skip-ahead kernel's
    /// per-core horizon).
    ///
    /// Returns `Some(now)` when the core would commit, drain, or
    /// dispatch this cycle (the kernel must run a normal cycle);
    /// `Some(t)` with `t > now` when the core is provably idle at every
    /// cycle in `now..t` (`t` is the earliest ROB-head completion, SB
    /// retry time, fetch-redirect resume, or issue-queue reclaim time);
    /// and `None` when the core is idle with no pending events at all
    /// (e.g. fully drained).
    ///
    /// An idle probe also captures the dispatch-stall cause for the
    /// span, which [`Core::skip_span`] replays. The probe performs
    /// exactly the state transitions dispatch itself would perform at
    /// `now` — pulling the next µop into the pending slot, reclaiming
    /// issued IQ entries, latching end-of-trace — so running a normal
    /// cycle at `now` after a probe is bit-identical to running one
    /// without it.
    pub fn next_event_at(&mut self, now: u64) -> Option<u64> {
        if let Some(t) = self.rob.head_complete_at() {
            if t <= now {
                return Some(now); // commit has work this cycle
            }
        }
        let drain_waiting = !self.sb_pending.is_empty();
        if drain_waiting && now >= self.sb_next_attempt {
            return Some(now); // the SB head would attempt a drain
        }
        // Commit and drain are idle, so dispatch sees exactly the state
        // it would see inside `cycle()`; replicate its gating.
        self.skip_stall = None;
        let mut iq_wake: Option<u64> = None;
        if now < self.fetch_resume_at {
            self.skip_stall = Some((StallCause::FrontEnd, 0));
        } else {
            match self.pending_op.take().or_else(|| self.trace.next_op()) {
                None => self.trace_done = true,
                Some(op) if op.is_wrong_path() || self.in_wrong_path => {
                    // Wrong-path work (or a squash waiting to resolve)
                    // always has same-cycle effects in `dispatch`.
                    self.pending_op = Some(op);
                    return Some(now);
                }
                Some(op) => match self.blocking_resource(&op, now) {
                    None => {
                        self.pending_op = Some(op);
                        return Some(now); // dispatch would issue this cycle
                    }
                    Some(cause) => {
                        let region = if cause == StallCause::StoreBuffer {
                            let pc = self.sb_pending.front_pc().unwrap_or(op.pc());
                            let region = CodeRegion::of_pc(pc);
                            CodeRegion::ALL.iter().position(|r| *r == region).unwrap()
                        } else {
                            0
                        };
                        self.skip_stall = Some((cause, region));
                        self.pending_op = Some(op);
                        // An IssueQueue stall can clear as soon as an
                        // in-flight µop's issue time passes (IQ
                        // reclaim), so never skip past the earliest
                        // one. Every other cause is a function of ROB
                        // occupancy and in-flight load/store counts,
                        // which only commit, drain, or issue can change
                        // — all covered by the other wake candidates.
                        if cause == StallCause::IssueQueue {
                            iq_wake = self.iq.peek().map(|&Reverse(t)| t).filter(|&t| t > now);
                        }
                    }
                },
            }
        }
        let mut next: Option<u64> = None;
        let mut merge = |t: u64| next = Some(next.map_or(t, |n: u64| n.min(t)));
        if let Some(t) = self.rob.head_complete_at() {
            merge(t);
        }
        if drain_waiting {
            merge(self.sb_next_attempt);
        }
        if self.fetch_resume_at > now {
            merge(self.fetch_resume_at);
        }
        if let Some(t) = iq_wake {
            merge(t);
        }
        next
    }

    /// Replays, in O(1), the per-cycle accounting that the `until - now`
    /// consecutive idle cycles established by [`Core::next_event_at`]
    /// would have produced under the lock-step kernel: cycle ticks, the
    /// captured dispatch-stall cause (and its Figure 3 region charge),
    /// L1D-miss-pending execution stalls, and the open stall episode.
    pub fn skip_span(&mut self, mem: &MemorySystem, now: u64, until: u64) {
        let n = until - now;
        self.topdown.tick_n(n);
        if let Some((cause, region)) = self.skip_stall {
            self.topdown.record_stall_n(cause, n);
            if cause == StallCause::StoreBuffer {
                self.stats.sb_stall_by_region[region] += n;
            }
        }
        if !self.rob.is_empty() || !self.sb_pending.is_empty() {
            // `demand_miss_until` cannot change over a span in which no
            // core touches the memory system, so the per-cycle check
            // collapses to a range intersection.
            let pending = mem
                .demand_miss_until(self.id)
                .min(until)
                .saturating_sub(now);
            self.topdown.record_l1d_miss_pending_stall_n(pending);
        }
        if self.obs.enabled() {
            match (self.stall_episode.as_mut(), self.skip_stall) {
                (Some((cause, _, cycles)), Some((new_cause, _))) if *cause == new_cause => {
                    *cycles += n as u32;
                }
                (_, stalled) => {
                    self.flush_stall_episode();
                    if let Some((cause, _)) = stalled {
                        self.stall_episode = Some((cause, now, n as u32));
                    }
                }
            }
        }
    }

    fn commit(&mut self, mem: &mut MemorySystem, now: u64) -> u64 {
        let mut committed = 0;
        while committed < u64::from(self.config.commit_width) {
            let Some(t) = self.rob.head_complete_at() else {
                break;
            };
            if t > now {
                break;
            }
            let e = self.rob.pop_front().expect("head exists");
            if e.is_store {
                self.stats.committed_stores += 1;
                let coalesced = self.config.coalescing
                    && self
                        .sb_pending
                        .back_addr()
                        .is_some_and(|prev| prev / 64 == e.addr / 64);
                if coalesced {
                    // The store merges into the tail entry: its SB slot
                    // frees immediately and the group drains as one
                    // write (non-speculative coalescing, §VII-B).
                    self.stats.coalesced_stores += 1;
                    self.stores_in_machine -= 1;
                    let q = e.addr & !7;
                    if let Some(n) = self.pending_store_qwords.get_mut(q) {
                        *n -= 1;
                        if *n == 0 {
                            self.pending_store_qwords.remove(q);
                        }
                    }
                } else {
                    self.sb_pending.push_back(e.addr, e.pc, now);
                    self.obs.emit(|| Event {
                        cycle: now,
                        core: self.id as u8,
                        kind: EventKind::SbEnqueue {
                            occupancy: self.sb_pending.len() as u32,
                        },
                    });
                }
                self.policy
                    .on_store_commit(mem, self.id, e.addr, e.size, e.pc, now);
            } else if e.is_load {
                self.stats.committed_loads += 1;
                self.loads_in_flight -= 1;
            } else if e.is_branch {
                self.stats.committed_branches += 1;
            }
            committed += 1;
        }
        committed
    }

    fn drain_store_buffer(&mut self, mem: &mut MemorySystem, now: u64) {
        if now < self.sb_next_attempt {
            return;
        }
        let Some((addr, _pc, committed_at)) = self.sb_pending.front() else {
            return;
        };
        match mem.store_drain(self.id, addr, now) {
            spb_mem::system::StoreDrainOutcome::Performed { .. } => {
                self.sb_residency.record(now - committed_at);
                self.sb_pending.pop_front();
                self.obs.emit(|| Event {
                    cycle: now,
                    core: self.id as u8,
                    kind: EventKind::SbDrain {
                        occupancy: self.sb_pending.len() as u32,
                        residency: (now - committed_at) as u32,
                    },
                });
                self.stores_in_machine -= 1;
                let q = addr & !7;
                if let Some(n) = self.pending_store_qwords.get_mut(q) {
                    *n -= 1;
                    if *n == 0 {
                        self.pending_store_qwords.remove(q);
                    }
                }
                // Pipelined L1 store port: one drain per cycle.
                self.sb_next_attempt = now + 1;
            }
            spb_mem::system::StoreDrainOutcome::Retry { at } => {
                self.sb_next_attempt = at.max(now + 1);
            }
        }
    }

    fn dispatch(&mut self, mem: &mut MemorySystem, now: u64) {
        let mut dispatched = 0u32;
        let mut stall: Option<StallCause> = None;

        while dispatched < self.config.dispatch_width {
            if now < self.fetch_resume_at {
                stall.get_or_insert(StallCause::FrontEnd);
                break;
            }
            let op = match self.pending_op.take().or_else(|| self.trace.next_op()) {
                Some(op) => op,
                None => {
                    self.trace_done = true;
                    break;
                }
            };
            if op.is_wrong_path() {
                // A wrong-path µop consumes a front-end slot but never
                // enters the ROB, IQ, or SB — it exists so speculative
                // policies see its address and pay for it.
                self.in_wrong_path = true;
                self.stats.wrong_path_uops += 1;
                if let OpKind::Store { addr, size } = op.kind() {
                    self.stats.wrong_path_stores_injected += 1;
                    self.policy
                        .on_wrong_path_store(mem, self.id, addr, size, op.pc(), now);
                }
                dispatched += 1;
                continue;
            }
            if self.in_wrong_path {
                // First correct-path µop after a wrong-path run: the
                // squash resolves here. Charge the memory system's waste
                // attribution, reset the policy's path-local state, and
                // pay the fetch redirect before the correct path resumes.
                self.in_wrong_path = false;
                self.stats.squash_episodes += 1;
                mem.attribute_squash(self.id, now);
                self.policy.on_wrong_path_squash(mem, self.id, now);
                self.fetch_resume_at = self
                    .fetch_resume_at
                    .max(now + self.config.redirect_penalty);
                self.pending_op = Some(op);
                continue;
            }
            if let Some(cause) = self.blocking_resource(&op, now) {
                if cause == StallCause::StoreBuffer {
                    // Figure 3: charge the stall to the code region of the
                    // store blocking the SB head.
                    let pc = self.sb_pending.front_pc().unwrap_or(op.pc());
                    let region = CodeRegion::of_pc(pc);
                    let idx = CodeRegion::ALL.iter().position(|r| *r == region).unwrap();
                    self.stats.sb_stall_by_region[idx] += 1;
                }
                self.pending_op = Some(op);
                stall.get_or_insert(cause);
                break;
            }
            self.issue_op(mem, op, now);
            dispatched += 1;
        }

        if dispatched == 0 {
            if let Some(cause) = stall {
                self.topdown.record_stall(cause);
            }
        }
        if self.obs.enabled() {
            self.track_stall_episode(if dispatched == 0 { stall } else { None }, now);
        }
    }

    /// Folds this cycle's dispatch outcome into the open stall episode:
    /// same cause extends it, anything else closes it (emitting a
    /// [`EventKind::StallEpisode`]) and possibly opens a new one. Only
    /// called while an observer is attached, so the disabled path keeps
    /// no state.
    fn track_stall_episode(&mut self, stalled_on: Option<StallCause>, now: u64) {
        match (self.stall_episode.as_mut(), stalled_on) {
            (Some((cause, _, cycles)), Some(new_cause)) if *cause == new_cause => {
                *cycles += 1;
            }
            (_, new_cause) => {
                self.flush_stall_episode();
                if let Some(cause) = new_cause {
                    self.stall_episode = Some((cause, now, 1));
                }
            }
        }
    }

    /// The oldest resource that blocks dispatching `op`, if any.
    fn blocking_resource(&mut self, op: &MicroOp, now: u64) -> Option<StallCause> {
        if self.rob.len() >= self.config.rob_entries {
            return Some(StallCause::Rob);
        }
        // Reclaim issued entries before checking IQ occupancy.
        while let Some(&Reverse(t)) = self.iq.peek() {
            if t <= now {
                self.iq.pop();
            } else {
                break;
            }
        }
        if self.iq.len() >= self.config.iq_entries {
            return Some(StallCause::IssueQueue);
        }
        if self.rob.len() >= self.config.int_regs + self.config.fp_regs {
            return Some(StallCause::Registers);
        }
        match op.kind() {
            OpKind::Load { .. } if self.loads_in_flight >= self.config.lq_entries => {
                Some(StallCause::LoadQueue)
            }
            OpKind::Store { .. } if self.stores_in_machine >= self.config.sb_entries => {
                Some(StallCause::StoreBuffer)
            }
            _ => None,
        }
    }

    fn issue_op(&mut self, mem: &mut MemorySystem, op: MicroOp, now: u64) {
        self.seq += 1;
        let seq = self.seq;
        let mut dep_ready = 0u64;
        for d in op.deps() {
            let d = u64::from(d);
            if d == 0 || d > seq || d as usize >= RING {
                continue;
            }
            dep_ready = dep_ready.max(self.completion_ring[((seq - d) as usize) % RING]);
        }
        let issue_at = dep_ready.max(now + 1);

        let (complete_at, is_store, is_load, is_branch, addr, size) = match op.kind() {
            OpKind::IntAlu { latency } | OpKind::FpAlu { latency } => {
                (issue_at + u64::from(latency), false, false, false, 0, 0)
            }
            OpKind::Load { addr, size } => {
                self.loads_in_flight += 1;
                // Store-to-load forwarding: a load whose qword has an
                // older store still in the SB reads the store's data
                // directly (one cycle, no L1 access).
                if self.pending_store_qwords.contains(addr & !7) {
                    self.stats.store_forwards += 1;
                    (issue_at + 1, false, true, false, addr, size)
                } else {
                    let res = mem.load_with_pc(self.id, addr, op.pc(), issue_at);
                    (res.ready, false, true, false, addr, size)
                }
            }
            OpKind::Store { addr, size } => {
                self.policy
                    .on_store_execute(mem, self.id, addr, size, op.pc(), issue_at);
                self.stores_in_machine += 1;
                let q = addr & !7;
                if let Some(n) = self.pending_store_qwords.get_mut(q) {
                    *n += 1;
                } else {
                    self.pending_store_qwords.insert(q, 1);
                }
                self.last_store_addr = addr;
                (issue_at, true, false, false, addr, size)
            }
            OpKind::Branch { mispredict } => {
                let resolve = issue_at + 1;
                if mispredict {
                    self.squash(mem, now, resolve);
                }
                (resolve, false, false, true, 0, 0)
            }
        };

        self.completion_ring[(seq as usize) % RING] = complete_at;
        if issue_at > now + 1 {
            self.iq.push(Reverse(issue_at));
        }
        self.rob.push_back(RobEntry {
            complete_at,
            addr,
            pc: op.pc(),
            size,
            is_store,
            is_load,
            is_branch,
        });
    }

    fn squash(&mut self, mem: &mut MemorySystem, now: u64, resolve: u64) {
        self.stats.mispredicts += 1;
        let resume = resolve + self.config.redirect_penalty;
        self.fetch_resume_at = self.fetch_resume_at.max(resume);
        // The front end fetched wrong-path µops from `now` until the
        // redirect; cap by what the machine can physically hold.
        let window = resume.saturating_sub(now);
        let wrong =
            (u64::from(self.config.dispatch_width) * window).min(self.config.rob_entries as u64);
        self.stats.wrong_path_uops += wrong;
        let wrong_loads = (wrong as f64 * WRONG_PATH_LOAD_RATIO) as u64;
        self.stats.wrong_path_l1_accesses += wrong_loads;
        let wrong_stores = (wrong as f64 * WRONG_PATH_STORE_RATIO) as u64;
        self.policy
            .on_squash(mem, self.id, self.last_store_addr, wrong_stores, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AtCommitPolicy, NoPolicy};
    use spb_mem::MemoryConfig;
    use spb_trace::generators::{ComputeGen, ComputeParams, MemsetGen, PointerChaseGen};
    use spb_trace::phased::{PhaseSpec, PhasedWorkload};

    fn mem() -> MemorySystem {
        MemorySystem::new(MemoryConfig::default())
    }

    fn compute_trace(count: u64) -> Box<dyn TraceSource + Send> {
        Box::new(ComputeGen::new(
            ComputeParams {
                count,
                fp_ratio: 0.0,
                mispredict_rate: 0.0,
                branch_every: 8,
                dep_density: 0.0,
            },
            1,
        ))
    }

    #[test]
    fn commit_width_bounds_ipc() {
        let mut m = mem();
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            compute_trace(4000),
            Box::new(NoPolicy),
        );
        let cycles = core.run_until_committed(&mut m, 4000);
        assert!(core.committed_uops() >= 4000);
        let ipc = core.committed_uops() as f64 / cycles as f64;
        assert!(ipc <= 4.0 + 1e-9, "ipc {ipc} exceeds the machine width");
        assert!(
            ipc > 2.0,
            "independent int ops should run near full width, got {ipc}"
        );
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut m = mem();
        let serial = ComputeParams {
            count: 2000,
            fp_ratio: 0.0,
            mispredict_rate: 0.0,
            branch_every: 1_000_000,
            dep_density: 1.0,
        };
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            Box::new(ComputeGen::new(serial, 1)),
            Box::new(NoPolicy),
        );
        let cycles = core.run_until_committed(&mut m, 2000);
        let ipc = core.committed_uops() as f64 / cycles as f64;
        assert!(
            ipc < 1.2,
            "a fully dependent chain cannot exceed 1 ipc, got {ipc}"
        );
    }

    #[test]
    fn store_burst_without_prefetch_stalls_on_sb() {
        let mut m = mem();
        let trace = Box::new(MemsetGen::new(0x10_0000, 256 * 1024, CodeRegion::Memset, 1));
        let mut core = Core::new(0, CoreConfig::skylake(), trace, Box::new(NoPolicy));
        let _ = core.run_until_committed(&mut m, 40_000);
        assert!(
            core.topdown().sb_stall_ratio() > 0.3,
            "a serialized DRAM-missing store burst must be SB-bound, ratio {}",
            core.topdown().sb_stall_ratio()
        );
    }

    #[test]
    fn at_commit_reduces_sb_stalls_versus_none() {
        let run = |policy: Box<dyn StorePrefetchPolicy + Send>| {
            let mut m = mem();
            let trace = Box::new(MemsetGen::new(0x10_0000, 256 * 1024, CodeRegion::Memset, 1));
            let mut core = Core::new(0, CoreConfig::skylake(), trace, policy);
            let cycles = core.run_until_committed(&mut m, 40_000);
            (cycles, core.topdown().stall_cycles(StallCause::StoreBuffer))
        };
        let (cycles_none, stalls_none) = run(Box::new(NoPolicy));
        let (cycles_commit, stalls_commit) = run(Box::new(AtCommitPolicy::new()));
        assert!(
            cycles_commit < cycles_none,
            "at-commit must speed up a store burst: {cycles_commit} vs {cycles_none}"
        );
        assert!(stalls_commit < stalls_none);
    }

    /// A realistic workload interleaves bursts with compute, so the mean
    /// store rate stays under the 1-per-cycle drain rate; with a
    /// 1024-entry SB the bursts are absorbed and SB stalls vanish.
    /// (A *pure* memset is different: stores commit faster than any SB
    /// can drain, so even an ideal SB backs up — that is physics, not a
    /// modelling artefact.)
    #[test]
    fn ideal_sb_eliminates_sb_stalls_on_mixed_workload() {
        let mixed = || {
            Box::new(PhasedWorkload::new(
                vec![
                    PhaseSpec::Memset {
                        bytes: 4096,
                        region: CodeRegion::Memset,
                        footprint_pages: 1 << 13,
                    },
                    PhaseSpec::Compute(ComputeParams {
                        count: 4096,
                        fp_ratio: 0.2,
                        mispredict_rate: 0.001,
                        branch_every: 8,
                        dep_density: 0.3,
                    }),
                ],
                1,
            ))
        };
        let stall_ratio = |sb: usize| {
            let mut m = mem();
            let cfg = CoreConfig::skylake().with_sb_entries(sb);
            let mut core = Core::new(0, cfg, mixed(), Box::new(AtCommitPolicy::new()));
            let _ = core.run_until_committed(&mut m, 60_000);
            core.topdown().sb_stall_ratio()
        };
        let ideal = stall_ratio(1024);
        let sb14 = stall_ratio(14);
        assert!(ideal < 0.01, "ideal SB must absorb bursts, got {ideal}");
        assert!(
            sb14 > ideal + 0.02,
            "SB14 must stall visibly more: {sb14} vs {ideal}"
        );
    }

    #[test]
    fn smaller_sb_stalls_more() {
        let stalls = |sb: usize| {
            let mut m = mem();
            let trace = Box::new(MemsetGen::new(0x10_0000, 128 * 1024, CodeRegion::Memset, 1));
            let cfg = CoreConfig::skylake().with_sb_entries(sb);
            let mut core = Core::new(0, cfg, trace, Box::new(AtCommitPolicy::new()));
            let cycles = core.run_until_committed(&mut m, 20_000);
            (cycles, core.topdown().stall_cycles(StallCause::StoreBuffer))
        };
        let (c56, s56) = stalls(56);
        let (c14, s14) = stalls(14);
        assert!(s14 > s56, "SB14 must stall more than SB56 ({s14} vs {s56})");
        assert!(c14 >= c56);
    }

    #[test]
    fn mispredicts_create_front_end_stalls_and_wrong_path() {
        let mut m = mem();
        let params = ComputeParams {
            count: 5000,
            fp_ratio: 0.0,
            mispredict_rate: 0.3,
            branch_every: 4,
            dep_density: 0.2,
        };
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            Box::new(ComputeGen::new(params, 3)),
            Box::new(NoPolicy),
        );
        let _ = core.run_until_committed(&mut m, 5000);
        assert!(core.stats().mispredicts > 50);
        assert!(core.stats().wrong_path_uops > 0);
        assert!(core.topdown().stall_cycles(StallCause::FrontEnd) > 0);
    }

    #[test]
    fn sb_stalls_attributed_to_blocking_region() {
        let mut m = mem();
        let trace = Box::new(MemsetGen::new(0x10_0000, 128 * 1024, CodeRegion::Memset, 1));
        let mut core = Core::new(
            0,
            CoreConfig::skylake().with_sb_entries(14),
            trace,
            Box::new(NoPolicy),
        );
        let _ = core.run_until_committed(&mut m, 20_000);
        assert!(core.stats().sb_stalls_in(CodeRegion::Memset) > 0);
        assert_eq!(core.stats().sb_stalls_in(CodeRegion::ClearPage), 0);
    }

    #[test]
    fn pointer_chase_is_latency_bound_not_sb_bound() {
        let mut m = mem();
        let trace = Box::new(PointerChaseGen::new(0x100_0000, 1 << 16, 5_000, 7));
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            trace,
            Box::new(AtCommitPolicy::new()),
        );
        let cycles = core.run_until_committed(&mut m, 10_000);
        let ipc = core.committed_uops() as f64 / cycles as f64;
        assert!(ipc < 0.5, "dependent DRAM misses should crawl, got {ipc}");
        assert!(core.topdown().sb_stall_ratio() < 0.01);
        assert!(core.topdown().l1d_miss_pending_stalls() > cycles / 4);
    }

    #[test]
    fn drained_core_stops() {
        let mut m = mem();
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            compute_trace(100),
            Box::new(NoPolicy),
        );
        let _ = core.run_until_committed(&mut m, 10_000);
        assert!(core.is_drained());
        assert_eq!(core.committed_uops(), 100);
    }

    #[test]
    fn reset_stats_clears_measurements_midstream() {
        let mut m = mem();
        let workload = PhasedWorkload::new(
            vec![PhaseSpec::Memset {
                bytes: 4096,
                region: CodeRegion::Memset,
                footprint_pages: 1 << 12,
            }],
            1,
        );
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            Box::new(workload),
            Box::new(NoPolicy),
        );
        let _ = core.run_until_committed(&mut m, 5_000);
        core.reset_stats();
        assert_eq!(core.committed_uops(), 0);
        assert_eq!(core.topdown().cycles(), 0);
    }

    /// The contract the `spb-verify` oracles rest on: commit is in
    /// order and wrong-path µops are synthesized, so the committed µop
    /// stream is *exactly* a prefix of the trace — replaying the same
    /// workload predicts the per-kind committed counts bit-exactly.
    #[test]
    fn committed_stream_is_exactly_a_trace_prefix() {
        let specs = vec![
            PhaseSpec::Memset {
                bytes: 2048,
                region: CodeRegion::Memset,
                footprint_pages: 8,
            },
            PhaseSpec::Compute(ComputeParams {
                count: 300,
                ..Default::default()
            }),
            PhaseSpec::PointerChase {
                count: 40,
                pool_pages: 4,
            },
        ];
        let trace = PhasedWorkload::new(specs.clone(), 11);
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            Box::new(trace),
            Box::new(AtCommitPolicy::new()),
        );
        let mut m = mem();
        let _ = core.run_until_committed(&mut m, 5_000);
        let n = core.committed_uops();
        assert!(n >= 5_000);
        // Replay the same workload: committed per-kind counts must equal
        // the counts over exactly the first `n` trace entries.
        let mut reference = PhasedWorkload::new(specs, 11);
        let (mut stores, mut loads, mut branches) = (0u64, 0u64, 0u64);
        for _ in 0..n {
            match reference.next_op().unwrap().kind() {
                OpKind::Store { .. } => stores += 1,
                OpKind::Load { .. } => loads += 1,
                OpKind::Branch { .. } => branches += 1,
                _ => {}
            }
        }
        assert_eq!(core.stats().committed_stores, stores);
        assert_eq!(core.stats().committed_loads, loads);
        assert_eq!(core.stats().committed_branches, branches);
    }
}

#[cfg(test)]
mod wrong_path_tests {
    use super::*;
    use crate::policy::{AtExecutePolicy, NoPolicy};
    use spb_mem::MemoryConfig;
    use spb_trace::generators::{ComputeGen, ComputeParams};
    use spb_trace::{SquashConfig, SquashInjector};

    fn branchy(count: u64, seed: u64) -> ComputeGen {
        ComputeGen::new(
            ComputeParams {
                count,
                fp_ratio: 0.0,
                mispredict_rate: 0.0,
                branch_every: 4,
                dep_density: 0.1,
            },
            seed,
        )
    }

    fn storm() -> SquashConfig {
        SquashConfig::parse("rate=0.3,depth=8..16,storm=1,seed=3").unwrap()
    }

    fn run(policy: Box<dyn StorePrefetchPolicy + Send>, inject: bool) -> (Core, MemorySystem) {
        let mut m = MemorySystem::new(MemoryConfig::default());
        let trace: Box<dyn TraceSource + Send> = if inject {
            Box::new(SquashInjector::new(branchy(20_000, 7), storm(), 0))
        } else {
            Box::new(branchy(20_000, 7))
        };
        let mut core = Core::new(0, CoreConfig::skylake(), trace, policy);
        let _ = core.run_until_committed(&mut m, 10_000);
        (core, m)
    }

    #[test]
    fn injected_wrong_path_stores_never_commit() {
        let (clean, _) = run(Box::new(NoPolicy), false);
        let (injected, _) = run(Box::new(NoPolicy), true);
        assert!(injected.stats().squash_episodes > 0);
        assert!(injected.stats().wrong_path_stores_injected > 0);
        // The committed stream is untouched by injection: same per-kind
        // counts over the same committed µop count.
        assert_eq!(injected.committed_uops(), clean.committed_uops());
        assert_eq!(
            injected.stats().committed_stores,
            clean.stats().committed_stores
        );
        assert_eq!(
            injected.stats().committed_branches,
            clean.stats().committed_branches
        );
    }

    #[test]
    fn at_execute_pays_for_wrong_path_runs() {
        let (core, m) = run(Box::new(AtExecutePolicy::new()), true);
        assert!(core.stats().squash_episodes > 0);
        assert_eq!(m.stats().spec_squashes, core.stats().squash_episodes);
        assert!(m.stats().spec_rfos_issued > 0);
        assert!(m.stats().spec_wasted_rfos > 0, "wrong-path RFOs are waste");
        assert!(m.stats().spec_leaked_m_blocks > 0);
        m.check_invariants_thorough(1_000_000).unwrap();
    }

    #[test]
    fn passive_policy_sees_squashes_but_leaks_nothing() {
        let (core, m) = run(Box::new(NoPolicy), true);
        assert!(core.stats().squash_episodes > 0);
        assert_eq!(m.stats().spec_squashes, core.stats().squash_episodes);
        assert_eq!(m.stats().spec_rfos_issued, 0);
        assert_eq!(m.stats().spec_leaked_m_blocks, 0);
    }
}

#[cfg(test)]
mod forwarding_tests {
    use super::*;
    use crate::policy::NoPolicy;
    use spb_mem::MemoryConfig;
    use spb_trace::generators::{ComputeGen, ComputeParams};

    /// A hand-built trace: store to an address, then load it back while
    /// the store is still in the SB — the load must forward.
    struct StoreThenLoad {
        emitted: usize,
    }

    impl TraceSource for StoreThenLoad {
        fn next_op(&mut self) -> Option<MicroOp> {
            self.emitted += 1;
            match self.emitted {
                1 => Some(MicroOp::new(
                    OpKind::Store {
                        addr: 0xBEEF00,
                        size: 8,
                    },
                    0x1,
                )),
                2 => Some(MicroOp::new(
                    OpKind::Load {
                        addr: 0xBEEF00,
                        size: 8,
                    },
                    0x2,
                )),
                3..=50 => Some(MicroOp::new(OpKind::IntAlu { latency: 1 }, 0x3)),
                _ => None,
            }
        }
    }

    #[test]
    fn load_forwards_from_pending_store() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            Box::new(StoreThenLoad { emitted: 0 }),
            Box::new(NoPolicy::new()),
        );
        let _ = core.run_until_committed(&mut mem, 50);
        assert_eq!(core.stats().store_forwards, 1);
        // The forwarded load never touched the L1.
        assert_eq!(mem.stats().loads, 0);
    }

    #[test]
    fn unrelated_loads_do_not_forward() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let trace = ComputeGen::new(
            ComputeParams {
                count: 200,
                ..Default::default()
            },
            3,
        );
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            Box::new(trace),
            Box::new(NoPolicy::new()),
        );
        let _ = core.run_until_committed(&mut mem, 200);
        assert_eq!(core.stats().store_forwards, 0);
    }
}

#[cfg(test)]
mod coalescing_tests {
    use super::*;
    use crate::policy::AtCommitPolicy;
    use spb_mem::MemoryConfig;
    use spb_trace::generators::MemsetGen;

    fn run_memset(coalescing: bool, sb: usize) -> (u64, u64, u64) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let cfg = if coalescing {
            CoreConfig::skylake().with_sb_entries(sb).with_coalescing()
        } else {
            CoreConfig::skylake().with_sb_entries(sb)
        };
        let trace = MemsetGen::new(0x100_0000, 128 * 1024, CodeRegion::Memset, 1);
        let mut core = Core::new(0, cfg, Box::new(trace), Box::new(AtCommitPolicy::new()));
        let cycles = core.run_until_committed(&mut mem, 20_000);
        (
            cycles,
            core.stats().coalesced_stores,
            core.stats().committed_stores,
        )
    }

    #[test]
    fn coalescing_merges_seven_of_eight_burst_stores() {
        let (_, merged, committed) = run_memset(true, 14);
        let ratio = merged as f64 / committed as f64;
        assert!(
            (0.80..=0.90).contains(&ratio),
            "8-byte stores into 64-byte blocks must merge ~7/8, got {ratio:.3}"
        );
    }

    #[test]
    fn coalescing_speeds_up_bursts_at_small_sb() {
        let (plain, _, _) = run_memset(false, 14);
        let (merged, _, _) = run_memset(true, 14);
        assert!(
            merged < plain,
            "coalescing must relieve SB pressure: {merged} vs {plain}"
        );
    }

    #[test]
    fn coalescing_is_off_by_default_and_inert() {
        let (_, merged, _) = run_memset(false, 14);
        assert_eq!(merged, 0);
    }
}

//! The store-prefetch policy interface and the non-predictive baselines.
//!
//! §II of the paper describes the two processor-initiated store
//! prefetching schemes in the literature:
//!
//! - **at-execute** (Gharachorloo et al.): request ownership as soon as
//!   the store's address is computed — earliest possible, but
//!   speculative, so wrong-path stores waste energy and pollute caches;
//! - **at-commit** (Intel's documented behaviour): request ownership
//!   when the store commits into the SB — never speculative, but later.
//!
//! Both are implemented here. The paper's contribution, SPB, lives in
//! the `spb-core` crate and implements the same [`StorePrefetchPolicy`]
//! trait on top of at-commit.

use spb_mem::{MemorySystem, RfoOrigin};

/// Hooks a store-prefetch policy receives from the core.
///
/// All hooks receive the memory system, the core id, the store's address
/// and PC, and the current cycle. Policies must be cheap: they run for
/// every store.
pub trait StorePrefetchPolicy {
    /// The store's address became available (execute stage). `speculative`
    /// hook: the store may still be squashed.
    fn on_store_execute(
        &mut self,
        _mem: &mut MemorySystem,
        _core: usize,
        _addr: u64,
        _size: u8,
        _pc: u64,
        _now: u64,
    ) {
    }

    /// The store committed and entered the store buffer.
    fn on_store_commit(
        &mut self,
        _mem: &mut MemorySystem,
        _core: usize,
        _addr: u64,
        _size: u8,
        _pc: u64,
        _now: u64,
    ) {
    }

    /// A branch misprediction squashed roughly `wrong_stores` wrong-path
    /// stores whose addresses were near `last_addr`. Only speculative
    /// policies (at-execute) act on this: they had already issued RFOs
    /// for those stores.
    fn on_squash(
        &mut self,
        _mem: &mut MemorySystem,
        _core: usize,
        _last_addr: u64,
        _wrong_stores: u64,
        _now: u64,
    ) {
    }

    /// An *explicitly modeled* wrong-path store executed (its address
    /// resolved on a mispredicted path that will be squashed). Unlike the
    /// synthesized [`StorePrefetchPolicy::on_squash`] estimate, these
    /// stores carry real addresses, so speculative policies issue their
    /// RFOs through [`MemorySystem::store_prefetch_spec`] and the traffic
    /// is attributed per block at squash time.
    fn on_wrong_path_store(
        &mut self,
        _mem: &mut MemorySystem,
        _core: usize,
        _addr: u64,
        _size: u8,
        _pc: u64,
        _now: u64,
    ) {
    }

    /// The squash that ends an explicitly modeled wrong-path run resolved
    /// on `core`. Policies that keep per-path detector state (SPB's
    /// speculative burst detector) reset it here; the memory system's own
    /// waste attribution has already run.
    fn on_wrong_path_squash(&mut self, _mem: &mut MemorySystem, _core: usize, _now: u64) {}

    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;
}

/// No store prefetching at all: stores serialize on the SB head's miss
/// latency. This is gem5's out-of-the-box behaviour the paper measures
/// its "+15% for at-commit" claim against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPolicy;

impl NoPolicy {
    /// Creates the no-op policy.
    pub fn new() -> Self {
        Self
    }
}

impl StorePrefetchPolicy for NoPolicy {
    fn name(&self) -> &'static str {
        "none"
    }
}

/// At-commit store prefetching (the paper's baseline; Intel's policy).
#[derive(Debug, Clone, Copy, Default)]
pub struct AtCommitPolicy;

impl AtCommitPolicy {
    /// Creates the at-commit policy.
    pub fn new() -> Self {
        Self
    }
}

impl StorePrefetchPolicy for AtCommitPolicy {
    fn on_store_commit(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        pc: u64,
        now: u64,
    ) {
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtCommit);
    }

    fn name(&self) -> &'static str {
        "at-commit"
    }
}

/// At-execute store prefetching (Gharachorloo et al.): RFOs issue as
/// soon as addresses resolve, including on the wrong path.
#[derive(Debug, Clone, Copy, Default)]
pub struct AtExecutePolicy;

impl AtExecutePolicy {
    /// Creates the at-execute policy.
    pub fn new() -> Self {
        Self
    }
}

impl StorePrefetchPolicy for AtExecutePolicy {
    fn on_store_execute(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        pc: u64,
        now: u64,
    ) {
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtExecute);
    }

    fn on_squash(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        last_addr: u64,
        wrong_stores: u64,
        now: u64,
    ) {
        // Wrong-path stores had already issued their RFOs. Model them as
        // plausible-but-useless ownership requests past the last correct
        // store: they cost tag checks, traffic and possibly pollution.
        for i in 0..wrong_stores.min(8) {
            let addr = last_addr.wrapping_add(4096 + i * 64);
            let _ = mem.store_prefetch(core, addr, 0, now, RfoOrigin::AtExecute);
        }
    }

    fn on_wrong_path_store(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        pc: u64,
        now: u64,
    ) {
        // At-execute issues the RFO the moment the address resolves,
        // wrong path included — the defining waste of the scheme. The
        // spec-tagged variant lets the squash charge it per block.
        let _ = mem.store_prefetch_spec(core, addr, pc, now, RfoOrigin::AtExecute);
    }

    fn name(&self) -> &'static str {
        "at-execute"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_mem::MemoryConfig;

    #[test]
    fn at_commit_issues_rfo_on_commit_only() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut p = AtCommitPolicy::new();
        p.on_store_execute(&mut mem, 0, 0x1000, 8, 0x4, 0);
        assert_eq!(
            mem.stats().prefetch_requests[RfoOrigin::AtCommit.index()],
            0
        );
        p.on_store_commit(&mut mem, 0, 0x1000, 8, 0x4, 5);
        assert_eq!(
            mem.stats().prefetch_requests[RfoOrigin::AtCommit.index()],
            1
        );
    }

    #[test]
    fn at_execute_issues_rfo_on_execute() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut p = AtExecutePolicy::new();
        p.on_store_execute(&mut mem, 0, 0x2000, 8, 0x4, 0);
        assert_eq!(
            mem.stats().prefetch_requests[RfoOrigin::AtExecute.index()],
            1
        );
        p.on_store_commit(&mut mem, 0, 0x2000, 8, 0x4, 5);
        assert_eq!(
            mem.stats().prefetch_requests[RfoOrigin::AtExecute.index()],
            1
        );
    }

    #[test]
    fn at_execute_wastes_requests_on_squash() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut p = AtExecutePolicy::new();
        p.on_squash(&mut mem, 0, 0x3000, 5, 10);
        assert_eq!(
            mem.stats().prefetch_requests[RfoOrigin::AtExecute.index()],
            5
        );
    }

    #[test]
    fn no_policy_does_nothing() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut p = NoPolicy::new();
        p.on_store_commit(&mut mem, 0, 0x4000, 8, 0x4, 0);
        p.on_squash(&mut mem, 0, 0x4000, 10, 0);
        assert_eq!(mem.stats().total_prefetch_requests(), 0);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            NoPolicy.name(),
            AtCommitPolicy.name(),
            AtExecutePolicy.name(),
        ];
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}

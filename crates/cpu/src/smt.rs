//! Simultaneous multithreading with a statically partitioned SB.
//!
//! §I of the paper: "on processors that support SMT, the effective size
//! of the SB is divided by the number of hardware threads as the SB is
//! statically partitioned across threads (Section 2.6.9 of Intel's
//! optimization manual)" — and the whole evaluation then *approximates*
//! SMT-2/SMT-4 by running one thread with SB28/SB14.
//!
//! [`SmtCore`] makes that approximation checkable: it runs N hardware
//! threads on one physical core with
//!
//! - statically partitioned ROB/IQ/LQ/SB (each thread gets `1/N`),
//! - shared pipeline bandwidth (fine-grained round-robin: one thread
//!   owns dispatch/commit in a given cycle), and
//! - a shared L1 store port (one drain per cycle, round-robin over
//!   threads with pending stores).
//!
//! The `smt_validation` experiment compares a real SMT-2 run against
//! the paper's single-thread-at-SB28 approximation.

use crate::config::CoreConfig;
use crate::core::{Core, CpuStats};
use crate::policy::StorePrefetchPolicy;
use spb_mem::MemorySystem;
use spb_stats::TopDown;
use spb_trace::TraceSource;

/// One hardware-thread context: (memory-system core id, instruction
/// source, store-prefetch policy).
pub type ThreadContext = (
    usize,
    Box<dyn TraceSource + Send>,
    Box<dyn StorePrefetchPolicy + Send>,
);

/// An N-way SMT core built from per-thread [`Core`] contexts.
///
/// Each hardware thread needs its own core id in the [`MemorySystem`]
/// (they share L1 in real hardware; here each context keeps a private
/// L1 — competitive L1 sharing is orthogonal to the SB partitioning the
/// paper studies, and is called out in DESIGN.md as a simplification).
pub struct SmtCore {
    threads: Vec<Core>,
    turn: usize,
}

impl std::fmt::Debug for SmtCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtCore")
            .field("threads", &self.threads.len())
            .field("turn", &self.turn)
            .finish()
    }
}

impl SmtCore {
    /// Builds an SMT core with `contexts.len()` hardware threads from a
    /// *physical* core configuration: every partitioned resource is
    /// divided by the thread count.
    ///
    /// `contexts[i]` provides thread i's (memory-system core id, trace,
    /// policy).
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty or partitioning would leave a
    /// thread with zero entries in some queue.
    pub fn new(physical: CoreConfig, contexts: Vec<ThreadContext>) -> Self {
        assert!(
            !contexts.is_empty(),
            "an SMT core needs at least one thread"
        );
        let n = contexts.len();
        let per_thread = CoreConfig {
            rob_entries: physical.rob_entries / n,
            iq_entries: physical.iq_entries / n,
            lq_entries: physical.lq_entries / n,
            sb_entries: physical.sb_entries / n,
            int_regs: physical.int_regs / n,
            fp_regs: physical.fp_regs / n,
            ..physical
        };
        per_thread.validate();
        let threads = contexts
            .into_iter()
            .map(|(id, trace, policy)| Core::new(id, per_thread, trace, policy))
            .collect();
        Self { threads, turn: 0 }
    }

    /// Number of hardware threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Per-thread access.
    pub fn thread(&self, i: usize) -> &Core {
        &self.threads[i]
    }

    /// Total µops committed across threads.
    pub fn committed_uops(&self) -> u64 {
        self.threads.iter().map(|t| t.committed_uops()).sum()
    }

    /// Merged Top-Down accounting across threads.
    pub fn topdown(&self) -> TopDown {
        let mut td = TopDown::new();
        for t in &self.threads {
            td.merge(t.topdown());
        }
        td
    }

    /// Merged core counters across threads.
    pub fn stats(&self) -> CpuStats {
        let mut out = CpuStats::default();
        for t in &self.threads {
            let s = t.stats();
            out.committed_stores += s.committed_stores;
            out.committed_loads += s.committed_loads;
            out.committed_branches += s.committed_branches;
            out.mispredicts += s.mispredicts;
            out.wrong_path_uops += s.wrong_path_uops;
            out.wrong_path_l1_accesses += s.wrong_path_l1_accesses;
            out.store_forwards += s.store_forwards;
            out.coalesced_stores += s.coalesced_stores;
            for i in 0..out.sb_stall_by_region.len() {
                out.sb_stall_by_region[i] += s.sb_stall_by_region[i];
            }
        }
        out
    }

    /// Clears measurement state on every thread.
    pub fn reset_stats(&mut self) {
        for t in &mut self.threads {
            t.reset_stats();
        }
    }

    /// Advances the physical core one cycle: the pipeline is owned by
    /// one thread per cycle, round-robin (fine-grained multithreading —
    /// a conservative model of SMT bandwidth sharing).
    pub fn cycle(&mut self, mem: &mut MemorySystem, now: u64) {
        let n = self.threads.len();
        let owner = self.turn % n;
        self.turn += 1;
        self.threads[owner].cycle(mem, now);
        // Idle threads still account the cycle (their clocks advance;
        // stalls are attributed when they own the pipeline).
        for (i, t) in self.threads.iter_mut().enumerate() {
            if i != owner {
                t.tick_idle(mem, now);
            }
        }
    }

    /// Runs until every thread committed at least `uops_per_thread`.
    pub fn run_until_committed(&mut self, mem: &mut MemorySystem, uops_per_thread: u64) -> u64 {
        let mut now = 0;
        while self
            .threads
            .iter()
            .map(|t| t.committed_uops())
            .min()
            .unwrap()
            < uops_per_thread
        {
            mem.tick(now);
            self.cycle(mem, now);
            now += 1;
        }
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AtCommitPolicy;
    use spb_mem::MemoryConfig;
    use spb_trace::profile::AppProfile;

    fn smt2(app: &str, sb_total: usize) -> (SmtCore, MemorySystem) {
        use spb_trace::phased::PhasedWorkload;
        let profile = AppProfile::by_name(app).unwrap();
        let mem_cfg = MemoryConfig {
            cores: 2,
            ..Default::default()
        };
        let mem = MemorySystem::new(mem_cfg);
        let physical = CoreConfig::skylake().with_sb_entries(sb_total);
        let mut contexts: Vec<ThreadContext> = Vec::new();
        for i in 0..2usize {
            let trace = PhasedWorkload::for_thread(profile.phases().to_vec(), 7, i as u32);
            contexts.push((i, Box::new(trace), Box::new(AtCommitPolicy::new())));
        }
        (SmtCore::new(physical, contexts), mem)
    }

    #[test]
    fn partitioning_divides_the_sb() {
        let (core, _) = smt2("gcc", 56);
        assert_eq!(core.thread(0).config().sb_entries, 28);
        assert_eq!(core.thread(1).config().sb_entries, 28);
    }

    #[test]
    fn both_threads_make_progress() {
        let (mut core, mut mem) = smt2("gcc", 56);
        let cycles = core.run_until_committed(&mut mem, 5_000);
        assert!(core.thread(0).committed_uops() >= 5_000);
        assert!(core.thread(1).committed_uops() >= 5_000);
        // Interleaved execution: neither thread can exceed half the
        // pipeline's bandwidth over the run.
        let ipc0 = core.thread(0).committed_uops() as f64 / cycles as f64;
        assert!(ipc0 <= 2.0 + 1e-9, "thread 0 ipc {ipc0} exceeds its share");
    }

    #[test]
    fn smt_halves_single_thread_throughput_on_compute() {
        // A compute-bound app at SMT-2 should take roughly twice as
        // long per thread as running alone.
        let profile = AppProfile::by_name("povray").unwrap();
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut solo = Core::new(
            0,
            CoreConfig::skylake(),
            Box::new(profile.build(7)),
            Box::new(AtCommitPolicy::new()),
        );
        let solo_cycles = solo.run_until_committed(&mut mem, 10_000);

        let (mut smt, mut smt_mem) = smt2("povray", 56);
        let smt_cycles = smt.run_until_committed(&mut smt_mem, 10_000);
        let ratio = smt_cycles as f64 / solo_cycles as f64;
        assert!(
            (1.7..=2.4).contains(&ratio),
            "SMT-2 compute should run ~2x slower per thread, got {ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_smt_core_rejected() {
        let _ = SmtCore::new(CoreConfig::skylake(), vec![]);
    }
}

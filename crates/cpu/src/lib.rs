//! Cycle-level out-of-order core model.
//!
//! This crate is the stand-in for gem5's detailed O3 CPU. It models the
//! structures whose *occupancy* produces the stalls the paper studies:
//!
//! - a reorder buffer, issue queue, load queue and — centrally — a
//!   unified store queue / store buffer whose entries are allocated at
//!   dispatch and freed only when the store has written to the L1
//!   (TSO drain, one store per cycle, in order);
//! - dispatch/commit width limits and per-µop execution latencies
//!   (Table I / Fog's tables);
//! - branch mispredictions whose squash cost depends on when the branch
//!   *resolves* (so long load misses lengthen the wrong path, which is
//!   how SPB's load-side benefit turns into fewer misspeculated µops);
//! - Top-Down style stall attribution: every stalled dispatch cycle is
//!   charged to the oldest blocking resource (store buffer vs "Other"),
//!   plus the "execution stalls with L1D miss pending" metric.
//!
//! The model is trace-driven: µop completion times are computed at
//! dispatch from operand readiness (an interval-style model), memory
//! µops call into [`spb_mem::MemorySystem`] for their latency, and the
//! cycle loop enforces width and occupancy limits exactly.
//!
//! # Examples
//!
//! ```
//! use spb_cpu::{config::CoreConfig, core::Core, policy::AtCommitPolicy};
//! use spb_mem::{MemoryConfig, MemorySystem};
//! use spb_trace::profile::AppProfile;
//!
//! let mut mem = MemorySystem::new(MemoryConfig::default());
//! let trace = AppProfile::by_name("x264").unwrap().build(1);
//! let mut core = Core::new(0, CoreConfig::skylake(), Box::new(trace),
//!                          Box::new(AtCommitPolicy::new()));
//! for now in 0..10_000 {
//!     mem.tick(now);
//!     core.cycle(&mut mem, now);
//! }
//! assert!(core.committed_uops() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod policy;
mod rob;
pub mod smt;

pub use crate::core::Core;
pub use config::CoreConfig;
pub use policy::StorePrefetchPolicy;

//! Core configurations: Table I's Skylake-X plus the Table II sweep.

/// Structural parameters of one out-of-order core.
///
/// Defaults mirror the paper's Table I (Skylake-X-like); the named
/// constructors provide the Table II sensitivity configurations
/// (Silvermont, Nehalem, Haswell, Skylake, Sunny Cove).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// µops dispatched (renamed into the ROB) per cycle.
    pub dispatch_width: u32,
    /// µops committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Issue-queue (reservation-station) entries.
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Unified store-queue / store-buffer entries. This is the paper's
    /// central knob: 56 for SB56, 28 for SB28, 14 for SB14, 1024 for the
    /// ideal SB.
    pub sb_entries: usize,
    /// Physical integer registers.
    pub int_regs: usize,
    /// Physical floating-point registers.
    pub fp_regs: usize,
    /// Front-end refill penalty after a mispredicted branch resolves.
    pub redirect_penalty: u64,
    /// Non-speculative store coalescing in the SB (Ros & Kaxiras,
    /// ISCA'18 — the paper's §VII-B comparison point): a committing
    /// store whose block matches the SB tail merges into it instead of
    /// occupying a new entry, and the merged group drains as one write.
    pub coalescing: bool,
}

impl CoreConfig {
    /// Skylake-X-like core (Table I / Table II "SKL").
    pub fn skylake() -> Self {
        Self {
            dispatch_width: 4,
            commit_width: 4,
            rob_entries: 224,
            iq_entries: 97,
            lq_entries: 72,
            sb_entries: 56,
            int_regs: 180,
            fp_regs: 180,
            redirect_penalty: 12,
            coalescing: false,
        }
    }

    /// Silvermont-like energy-efficient core (Table II "SLM").
    pub fn silvermont() -> Self {
        Self {
            dispatch_width: 4,
            commit_width: 4,
            rob_entries: 32,
            iq_entries: 15,
            lq_entries: 10,
            sb_entries: 16,
            int_regs: 64,
            fp_regs: 64,
            redirect_penalty: 10,
            coalescing: false,
        }
    }

    /// Nehalem-like core (Table II "NHL").
    pub fn nehalem() -> Self {
        Self {
            dispatch_width: 4,
            commit_width: 4,
            rob_entries: 128,
            iq_entries: 32,
            lq_entries: 48,
            sb_entries: 36,
            int_regs: 128,
            fp_regs: 128,
            redirect_penalty: 12,
            coalescing: false,
        }
    }

    /// Haswell-like core (Table II "HSW").
    pub fn haswell() -> Self {
        Self {
            dispatch_width: 8,
            commit_width: 8,
            rob_entries: 192,
            iq_entries: 60,
            lq_entries: 72,
            sb_entries: 42,
            int_regs: 168,
            fp_regs: 168,
            redirect_penalty: 12,
            coalescing: false,
        }
    }

    /// Sunny-Cove-like core (Table II "SNC").
    pub fn sunny_cove() -> Self {
        Self {
            dispatch_width: 8,
            commit_width: 8,
            rob_entries: 352,
            iq_entries: 128,
            lq_entries: 128,
            sb_entries: 72,
            int_regs: 280,
            fp_regs: 224,
            redirect_penalty: 14,
            coalescing: false,
        }
    }

    /// Returns a copy with a different SB size (the per-thread SB of an
    /// SMT configuration, or the ideal 1024-entry SB).
    #[must_use]
    pub fn with_sb_entries(mut self, sb_entries: usize) -> Self {
        self.sb_entries = sb_entries;
        self
    }

    /// Returns a copy with non-speculative store coalescing enabled.
    #[must_use]
    pub fn with_coalescing(mut self) -> Self {
        self.coalescing = true;
        self
    }

    /// The Table II sweep in the paper's order, with their display names.
    pub fn table2() -> [(&'static str, CoreConfig); 5] {
        [
            ("SLM", Self::silvermont()),
            ("NHL", Self::nehalem()),
            ("HSW", Self::haswell()),
            ("SKL", Self::skylake()),
            ("SNC", Self::sunny_cove()),
        ]
    }

    /// Validates structural sanity.
    ///
    /// # Panics
    ///
    /// Panics if any width or queue is zero.
    pub fn validate(&self) {
        assert!(
            self.dispatch_width > 0 && self.commit_width > 0,
            "widths must be positive"
        );
        assert!(
            self.rob_entries > 0
                && self.iq_entries > 0
                && self.lq_entries > 0
                && self.sb_entries > 0,
            "queues must be positive"
        );
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_matches_table1() {
        let c = CoreConfig::skylake();
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.iq_entries, 97);
        assert_eq!(c.lq_entries, 72);
        assert_eq!(c.sb_entries, 56);
        assert_eq!(c.dispatch_width, 4);
    }

    #[test]
    fn table2_is_ordered_by_aggressiveness() {
        let sweep = CoreConfig::table2();
        let robs: Vec<usize> = sweep.iter().map(|(_, c)| c.rob_entries).collect();
        assert!(
            robs.windows(2).all(|w| w[0] < w[1]),
            "ROB sizes must ascend: {robs:?}"
        );
        assert_eq!(sweep[0].0, "SLM");
        assert_eq!(sweep[4].0, "SNC");
    }

    #[test]
    fn with_sb_entries_only_changes_sb() {
        let base = CoreConfig::skylake();
        let half = base.with_sb_entries(28);
        assert_eq!(half.sb_entries, 28);
        assert_eq!(half.rob_entries, base.rob_entries);
    }

    #[test]
    fn all_presets_validate() {
        for (_, c) in CoreConfig::table2() {
            c.validate();
        }
    }

    #[test]
    #[should_panic(expected = "queues must be positive")]
    fn zero_sb_fails_validation() {
        let mut c = CoreConfig::skylake();
        c.sb_entries = 0;
        c.validate();
    }
}

//! Struct-of-arrays rings for the two FIFO structures on the commit
//! path: the reorder buffer and the post-commit store buffer.
//!
//! Both are bounded by configuration (dispatch gates on ROB occupancy;
//! a store cannot commit into the SB without holding one of the
//! `sb_entries` slots it acquired at dispatch), so each ring is a set
//! of fixed-capacity parallel lanes indexed by `(head + i) % cap`.
//! The hot loops touch one lane each — commit and the skip-ahead probe
//! poll only `complete_at`, coalescing polls only the tail address —
//! instead of striding over whole entries.

/// One in-flight µop as the rest of the core sees it. Exchange type:
/// [`RobRing`] stores the fields in separate lanes and assembles a copy
/// on [`RobRing::pop_front`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RobEntry {
    pub complete_at: u64,
    pub addr: u64,
    pub pc: u64,
    pub size: u8,
    pub is_store: bool,
    pub is_load: bool,
    pub is_branch: bool,
}

const STORE: u8 = 1;
const LOAD: u8 = 2;
const BRANCH: u8 = 4;

/// The reorder buffer: a fixed-capacity FIFO over SoA lanes.
#[derive(Debug)]
pub(crate) struct RobRing {
    cap: usize,
    head: usize,
    len: usize,
    complete_at: Vec<u64>,
    addr: Vec<u64>,
    pc: Vec<u64>,
    size: Vec<u8>,
    kind: Vec<u8>,
}

impl RobRing {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ROB needs at least one entry");
        Self {
            cap,
            head: 0,
            len: 0,
            complete_at: vec![0; cap],
            addr: vec![0; cap],
            pc: vec![0; cap],
            size: vec![0; cap],
            kind: vec![0; cap],
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The completion cycle of the oldest entry — the only field the
    /// commit gate and the idle probe read.
    #[inline]
    pub fn head_complete_at(&self) -> Option<u64> {
        (self.len > 0).then(|| self.complete_at[self.head])
    }

    pub fn push_back(&mut self, e: RobEntry) {
        assert!(self.len < self.cap, "ROB overflow: dispatch gate broken");
        let i = (self.head + self.len) % self.cap;
        self.complete_at[i] = e.complete_at;
        self.addr[i] = e.addr;
        self.pc[i] = e.pc;
        self.size[i] = e.size;
        self.kind[i] = ((e.is_store as u8) * STORE)
            | ((e.is_load as u8) * LOAD)
            | ((e.is_branch as u8) * BRANCH);
        self.len += 1;
    }

    pub fn pop_front(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let i = self.head;
        self.head = (self.head + 1) % self.cap;
        self.len -= 1;
        let kind = self.kind[i];
        Some(RobEntry {
            complete_at: self.complete_at[i],
            addr: self.addr[i],
            pc: self.pc[i],
            size: self.size[i],
            is_store: kind & STORE != 0,
            is_load: kind & LOAD != 0,
            is_branch: kind & BRANCH != 0,
        })
    }
}

/// The post-commit store buffer: `(addr, pc, commit cycle)` triples in
/// a fixed-capacity FIFO over SoA lanes. Drain reads the head triple,
/// coalescing peeks only the tail address, and the Figure 3 region
/// charge peeks only the head PC.
#[derive(Debug)]
pub(crate) struct SbRing {
    cap: usize,
    head: usize,
    len: usize,
    addr: Vec<u64>,
    pc: Vec<u64>,
    committed_at: Vec<u64>,
}

impl SbRing {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "SB needs at least one entry");
        Self {
            cap,
            head: 0,
            len: 0,
            addr: vec![0; cap],
            pc: vec![0; cap],
            committed_at: vec![0; cap],
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(addr, pc, committed_at)` of the drain candidate.
    #[inline]
    pub fn front(&self) -> Option<(u64, u64, u64)> {
        (self.len > 0).then(|| {
            (
                self.addr[self.head],
                self.pc[self.head],
                self.committed_at[self.head],
            )
        })
    }

    /// PC of the store blocking the SB head (Figure 3 region charge).
    #[inline]
    pub fn front_pc(&self) -> Option<u64> {
        (self.len > 0).then(|| self.pc[self.head])
    }

    /// Address of the youngest SB entry (coalescing candidate).
    #[inline]
    pub fn back_addr(&self) -> Option<u64> {
        (self.len > 0).then(|| self.addr[(self.head + self.len - 1) % self.cap])
    }

    pub fn push_back(&mut self, addr: u64, pc: u64, committed_at: u64) {
        assert!(self.len < self.cap, "SB overflow: dispatch gate broken");
        let i = (self.head + self.len) % self.cap;
        self.addr[i] = addr;
        self.pc[i] = pc;
        self.committed_at[i] = committed_at;
        self.len += 1;
    }

    pub fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head = (self.head + 1) % self.cap;
        self.len -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(complete_at: u64, kind: u8) -> RobEntry {
        RobEntry {
            complete_at,
            addr: complete_at * 8,
            pc: complete_at + 0x400000,
            size: 8,
            is_store: kind & STORE != 0,
            is_load: kind & LOAD != 0,
            is_branch: kind & BRANCH != 0,
        }
    }

    #[test]
    fn rob_ring_is_fifo_and_reassembles_entries() {
        let mut r = RobRing::new(4);
        assert!(r.is_empty());
        assert_eq!(r.head_complete_at(), None);
        for (t, k) in [(5, STORE), (6, LOAD), (7, BRANCH), (8, 0)] {
            r.push_back(entry(t, k));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.head_complete_at(), Some(5));
        for (t, k) in [(5, STORE), (6, LOAD), (7, BRANCH), (8, 0)] {
            assert_eq!(r.pop_front(), Some(entry(t, k)));
        }
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn rob_ring_wraps_across_capacity() {
        let mut r = RobRing::new(3);
        for round in 0..10u64 {
            r.push_back(entry(round, LOAD));
            assert_eq!(r.pop_front(), Some(entry(round, LOAD)));
        }
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn rob_ring_rejects_overflow() {
        let mut r = RobRing::new(2);
        for t in 0..3 {
            r.push_back(entry(t, 0));
        }
    }

    #[test]
    fn sb_ring_tracks_head_and_tail_lanes() {
        let mut s = SbRing::new(3);
        assert_eq!(s.front(), None);
        assert_eq!(s.back_addr(), None);
        s.push_back(64, 0x400, 10);
        s.push_back(128, 0x404, 11);
        assert_eq!(s.front(), Some((64, 0x400, 10)));
        assert_eq!(s.front_pc(), Some(0x400));
        assert_eq!(s.back_addr(), Some(128));
        s.pop_front();
        assert_eq!(s.front(), Some((128, 0x404, 11)));
        // Wrap around the 3-entry ring.
        s.push_back(192, 0x408, 12);
        s.push_back(256, 0x40c, 13);
        assert_eq!(s.len(), 3);
        assert_eq!(s.back_addr(), Some(256));
        s.pop_front();
        s.pop_front();
        assert_eq!(s.front(), Some((256, 0x40c, 13)));
    }
}

//! Stall-attribution tests: each resource limit must be charged to its
//! own Top-Down bucket when it is the binding constraint.

use spb_cpu::policy::{AtCommitPolicy, NoPolicy};
use spb_cpu::{config::CoreConfig, core::Core};
use spb_mem::{MemoryConfig, MemorySystem};
use spb_stats::StallCause;
use spb_trace::generators::{ComputeGen, ComputeParams, PointerChaseGen};
use spb_trace::{MicroOp, OpKind, TraceSource};

fn mem() -> MemorySystem {
    MemorySystem::new(MemoryConfig::default())
}

/// A trace of independent DRAM-missing loads: with a tiny LQ, the load
/// queue must be the reported bottleneck.
struct LoadFlood {
    n: u64,
}

impl TraceSource for LoadFlood {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.n == 0 {
            return None;
        }
        self.n -= 1;
        // Fresh block every load: all DRAM misses.
        Some(MicroOp::new(
            OpKind::Load {
                addr: 0x100_0000 + self.n * 64,
                size: 8,
            },
            0x400,
        ))
    }
}

#[test]
fn tiny_load_queue_is_charged_to_the_lq() {
    let mut m = mem();
    let cfg = CoreConfig {
        lq_entries: 4,
        ..CoreConfig::skylake()
    };
    let mut core = Core::new(
        0,
        cfg,
        Box::new(LoadFlood { n: 20_000 }),
        Box::new(NoPolicy::new()),
    );
    let _ = core.run_until_committed(&mut m, 20_000);
    let td = core.topdown();
    assert!(
        td.stall_cycles(StallCause::LoadQueue) > td.cycles() / 4,
        "LQ stalls {} of {} cycles",
        td.stall_cycles(StallCause::LoadQueue),
        td.cycles()
    );
    assert_eq!(td.stall_cycles(StallCause::StoreBuffer), 0);
}

/// A long dependent chain with a big window: the issue queue fills with
/// waiting µops and must be the reported bottleneck.
#[test]
fn dependent_chain_fills_the_issue_queue() {
    let mut m = mem();
    let cfg = CoreConfig {
        iq_entries: 8,
        ..CoreConfig::skylake()
    };
    let params = ComputeParams {
        count: 20_000,
        fp_ratio: 1.0, // 5-cycle ops
        mispredict_rate: 0.0,
        branch_every: 1_000_000,
        dep_density: 1.0, // fully serial
    };
    let mut core = Core::new(
        0,
        cfg,
        Box::new(ComputeGen::new(params, 1)),
        Box::new(NoPolicy::new()),
    );
    let _ = core.run_until_committed(&mut m, 20_000);
    let td = core.topdown();
    assert!(
        td.stall_cycles(StallCause::IssueQueue) > td.cycles() / 3,
        "IQ stalls {} of {} cycles",
        td.stall_cycles(StallCause::IssueQueue),
        td.cycles()
    );
}

/// Slow dependent loads with a big IQ: the ROB becomes the limit.
#[test]
fn rob_limits_a_latency_bound_window() {
    let mut m = mem();
    let cfg = CoreConfig {
        rob_entries: 16,
        iq_entries: 97,
        ..CoreConfig::skylake()
    };
    let mut core = Core::new(
        0,
        cfg,
        Box::new(PointerChaseGen::new(0x100_0000, 1 << 16, 5_000, 3)),
        Box::new(AtCommitPolicy::new()),
    );
    let _ = core.run_until_committed(&mut m, 10_000);
    let td = core.topdown();
    assert!(
        td.stall_cycles(StallCause::Rob) > 0,
        "a 16-entry ROB must fill behind DRAM misses"
    );
}

/// The same workload under different binding constraints must attribute
/// to different causes — attribution is exclusive per cycle.
#[test]
fn attribution_sums_never_exceed_cycles() {
    for (lq, iq, rob) in [(4, 97, 224), (72, 8, 224), (72, 97, 16)] {
        let mut m = mem();
        let cfg = CoreConfig {
            lq_entries: lq,
            iq_entries: iq,
            rob_entries: rob,
            ..CoreConfig::skylake()
        };
        let mut core = Core::new(
            0,
            cfg,
            Box::new(PointerChaseGen::new(0x100_0000, 1 << 14, 4_000, 3)),
            Box::new(NoPolicy::new()),
        );
        let _ = core.run_until_committed(&mut m, 8_000);
        let td = core.topdown();
        assert!(td.total_stall_cycles() <= td.cycles());
    }
}

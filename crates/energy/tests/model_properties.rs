//! Property tests for the energy model: linearity and monotonicity.

use proptest::prelude::*;
use spb_energy::{EnergyEvents, EnergyModel};

fn arb_events() -> impl Strategy<Value = EnergyEvents> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..100_000,
        0u64..500_000,
        0u64..500_000,
        0u64..100_000,
        0u64..50_000,
        0u64..20_000,
    )
        .prop_map(
            |(cycles, uops, wrong, l1, tags, l2, l3, dram)| EnergyEvents {
                cycles,
                committed_uops: uops,
                wrong_path_uops: wrong,
                l1_accesses: l1,
                l1_tag_checks: tags,
                l2_accesses: l2,
                l3_accesses: l3,
                dram_accesses: dram,
            },
        )
}

proptest! {
    /// Energy is monotone in every event count.
    #[test]
    fn energy_is_monotone(e in arb_events()) {
        let m = EnergyModel::default();
        let base = m.evaluate(&e).total_nj();
        let bump = |f: fn(&mut EnergyEvents)| {
            let mut e2 = e;
            f(&mut e2);
            m.evaluate(&e2).total_nj()
        };
        prop_assert!(bump(|e| e.cycles += 1000) >= base);
        prop_assert!(bump(|e| e.committed_uops += 1000) >= base);
        prop_assert!(bump(|e| e.wrong_path_uops += 1000) >= base);
        prop_assert!(bump(|e| e.l1_accesses += 1000) >= base);
        prop_assert!(bump(|e| e.dram_accesses += 1000) >= base);
    }

    /// The model is linear: evaluating doubled events doubles every
    /// component exactly.
    #[test]
    fn energy_is_linear(e in arb_events()) {
        let m = EnergyModel::default();
        let single = m.evaluate(&e);
        let doubled = EnergyEvents {
            cycles: e.cycles * 2,
            committed_uops: e.committed_uops * 2,
            wrong_path_uops: e.wrong_path_uops * 2,
            l1_accesses: e.l1_accesses * 2,
            l1_tag_checks: e.l1_tag_checks * 2,
            l2_accesses: e.l2_accesses * 2,
            l3_accesses: e.l3_accesses * 2,
            dram_accesses: e.dram_accesses * 2,
        };
        let twice = m.evaluate(&doubled);
        prop_assert!((twice.total_nj() - 2.0 * single.total_nj()).abs() < 1e-6 * (1.0 + single.total_nj()));
        prop_assert!((twice.cache_dynamic_nj - 2.0 * single.cache_dynamic_nj).abs() < 1e-6 * (1.0 + single.cache_dynamic_nj));
        prop_assert!((twice.static_nj - 2.0 * single.static_nj).abs() < 1e-6 * (1.0 + single.static_nj));
    }

    /// Components are non-negative for any input.
    #[test]
    fn components_non_negative(e in arb_events()) {
        let b = EnergyModel::default().evaluate(&e);
        prop_assert!(b.cache_dynamic_nj >= 0.0);
        prop_assert!(b.core_dynamic_nj >= 0.0);
        prop_assert!(b.dram_dynamic_nj >= 0.0);
        prop_assert!(b.static_nj >= 0.0);
    }
}

//! Event-based energy model (McPAT-lite).
//!
//! The paper evaluates energy with McPAT at 22 nm / 0.6 V, reporting
//! Figure 7 as energy *normalized to at-commit*, broken into cache
//! dynamic energy (L1+L2+L3), total core dynamic energy, and total
//! energy (dynamic + static). An event-energy model reproduces those
//! relative numbers: each architectural event (cache access, tag check,
//! DRAM transfer, committed or squashed µop) is charged a fixed energy,
//! and leakage accrues per cycle. The absolute joules are loose
//! calibrations; the *ratios* between policies — which is all Figure 7
//! plots — depend only on the event counts produced by the simulator.
//!
//! # Examples
//!
//! ```
//! use spb_energy::{EnergyModel, EnergyEvents};
//!
//! let model = EnergyModel::default();
//! let mut events = EnergyEvents::default();
//! events.cycles = 1_000_000;
//! events.committed_uops = 1_500_000;
//! events.l1_accesses = 400_000;
//! let breakdown = model.evaluate(&events);
//! assert!(breakdown.total_nj() > 0.0);
//! assert!(breakdown.static_nj > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Per-event energies in nanojoules and static power in watts.
///
/// Defaults are loose 22 nm-class calibrations (the paper's McPAT
/// configuration); see the crate docs for why only ratios matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One L1D data access (read or write).
    pub l1_access_nj: f64,
    /// One L1D tag-array check (prefetch probes, drain retries).
    pub l1_tag_nj: f64,
    /// One L2 access.
    pub l2_access_nj: f64,
    /// One L3 access.
    pub l3_access_nj: f64,
    /// One DRAM transfer (fill or write-back).
    pub dram_access_nj: f64,
    /// Core dynamic energy per committed µop (fetch/rename/issue/commit).
    pub core_uop_nj: f64,
    /// Core dynamic energy per wrong-path (squashed) µop.
    pub wrong_path_uop_nj: f64,
    /// Static (leakage) power in watts for core + caches.
    pub static_power_w: f64,
    /// Clock frequency in GHz (converts cycles to seconds for leakage).
    pub frequency_ghz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            l1_access_nj: 0.10,
            l1_tag_nj: 0.012,
            l2_access_nj: 0.45,
            l3_access_nj: 1.4,
            dram_access_nj: 18.0,
            core_uop_nj: 0.85,
            wrong_path_uop_nj: 0.85,
            static_power_w: 1.1,
            frequency_ghz: 2.0,
        }
    }
}

/// Event counts gathered from one measured run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyEvents {
    /// Elapsed cycles (drives leakage).
    pub cycles: u64,
    /// Committed µops.
    pub committed_uops: u64,
    /// Wrong-path µops fetched and squashed.
    pub wrong_path_uops: u64,
    /// L1D data accesses (loads + performed stores + wrong-path loads).
    pub l1_accesses: u64,
    /// L1D tag-only checks (prefetch probes, drain retries).
    pub l1_tag_checks: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// DRAM transfers (fills + write-backs).
    pub dram_accesses: u64,
}

/// Energy totals in nanojoules, split the way Figure 7 reports them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic energy of L1+L2+L3 (+ tag checks).
    pub cache_dynamic_nj: f64,
    /// Core dynamic energy (committed + wrong-path µops).
    pub core_dynamic_nj: f64,
    /// DRAM dynamic energy.
    pub dram_dynamic_nj: f64,
    /// Leakage over the run.
    pub static_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy (dynamic + static).
    pub fn total_nj(&self) -> f64 {
        self.cache_dynamic_nj + self.core_dynamic_nj + self.dram_dynamic_nj + self.static_nj
    }

    /// Total dynamic energy.
    pub fn dynamic_nj(&self) -> f64 {
        self.cache_dynamic_nj + self.core_dynamic_nj + self.dram_dynamic_nj
    }

    /// Energy–delay product in nJ·cycles: the single-number
    /// efficiency score `spbsim tune` prints alongside the raw
    /// objectives (lower is better; rewards saving cycles only when
    /// the energy spent to save them pays off).
    pub fn edp(&self, cycles: u64) -> f64 {
        self.total_nj() * cycles as f64
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy: cache {:.1} µJ, core {:.1} µJ, dram {:.1} µJ, static {:.1} µJ (total {:.1} µJ)",
            self.cache_dynamic_nj / 1e3,
            self.core_dynamic_nj / 1e3,
            self.dram_dynamic_nj / 1e3,
            self.static_nj / 1e3,
            self.total_nj() / 1e3
        )
    }
}

impl EnergyModel {
    /// Dynamic energy attributed to *wasted* speculation: wrong-path
    /// RFOs that acquired ownership no architectural store used, the
    /// coherence messages they triggered, and the DRAM fills they
    /// caused. Each wasted RFO walked the tag path to the point its
    /// ownership was granted (L1 tag probe, then L2 and L3 on the way
    /// down); invalidation messages are charged one L2-class access at
    /// the victim; fills are charged at DRAM cost. This is the energy
    /// column of the `spbsim squash` experiment, reported alongside the
    /// Figure 7 breakdown rather than folded into it (the events are
    /// already inside the run's aggregate cache/DRAM counts — this
    /// isolates the share the squash attribution proved wasted).
    pub fn speculative_waste_nj(&self, wasted_rfos: u64, wasted_coh_msgs: u64, wasted_dram: u64) -> f64 {
        wasted_rfos as f64 * (self.l1_tag_nj + self.l2_access_nj + self.l3_access_nj)
            + wasted_coh_msgs as f64 * self.l2_access_nj
            + wasted_dram as f64 * self.dram_access_nj
    }

    /// Evaluates the event counts into an energy breakdown.
    pub fn evaluate(&self, e: &EnergyEvents) -> EnergyBreakdown {
        let cache_dynamic_nj = e.l1_accesses as f64 * self.l1_access_nj
            + e.l1_tag_checks as f64 * self.l1_tag_nj
            + e.l2_accesses as f64 * self.l2_access_nj
            + e.l3_accesses as f64 * self.l3_access_nj;
        let core_dynamic_nj = e.committed_uops as f64 * self.core_uop_nj
            + e.wrong_path_uops as f64 * self.wrong_path_uop_nj;
        let dram_dynamic_nj = e.dram_accesses as f64 * self.dram_access_nj;
        // P[W] × t[s] = nJ with t = cycles / (GHz × 1e9); fold the 1e9s.
        let static_nj = self.static_power_w * e.cycles as f64 / self.frequency_ghz;
        EnergyBreakdown {
            cache_dynamic_nj,
            core_dynamic_nj,
            dram_dynamic_nj,
            static_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> EnergyEvents {
        EnergyEvents {
            cycles: 1_000,
            committed_uops: 2_000,
            wrong_path_uops: 100,
            l1_accesses: 500,
            l1_tag_checks: 600,
            l2_accesses: 50,
            l3_accesses: 20,
            dram_accesses: 10,
        }
    }

    #[test]
    fn zero_events_give_zero_dynamic_energy() {
        let b = EnergyModel::default().evaluate(&EnergyEvents::default());
        assert_eq!(b.dynamic_nj(), 0.0);
        assert_eq!(b.static_nj, 0.0);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let b = EnergyModel::default().evaluate(&events());
        let sum = b.cache_dynamic_nj + b.core_dynamic_nj + b.dram_dynamic_nj + b.static_nj;
        assert!((b.total_nj() - sum).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_with_cycles() {
        let m = EnergyModel::default();
        let mut e = events();
        let b1 = m.evaluate(&e);
        e.cycles *= 2;
        let b2 = m.evaluate(&e);
        assert!((b2.static_nj - 2.0 * b1.static_nj).abs() < 1e-9);
    }

    #[test]
    fn faster_run_saves_static_energy() {
        // Same work in fewer cycles (what SPB achieves) → lower total.
        let m = EnergyModel::default();
        let slow = m.evaluate(&events());
        let mut fast_events = events();
        fast_events.cycles = 700;
        let fast = m.evaluate(&fast_events);
        assert!(fast.total_nj() < slow.total_nj());
    }

    #[test]
    fn fewer_wrong_path_uops_save_core_energy() {
        let m = EnergyModel::default();
        let base = m.evaluate(&events());
        let mut e = events();
        e.wrong_path_uops = 0;
        let b = m.evaluate(&e);
        assert!(b.core_dynamic_nj < base.core_dynamic_nj);
    }

    #[test]
    fn static_energy_formula_matches_hand_calculation() {
        // 1.1 W for 1000 cycles at 2 GHz = 1.1 × 1000 / 2 = 550 nJ.
        let b = EnergyModel::default().evaluate(&events());
        assert!((b.static_nj - 550.0).abs() < 1e-9);
    }

    #[test]
    fn speculative_waste_scales_with_each_component() {
        let m = EnergyModel::default();
        assert_eq!(m.speculative_waste_nj(0, 0, 0), 0.0);
        let base = m.speculative_waste_nj(10, 5, 2);
        assert!(m.speculative_waste_nj(11, 5, 2) > base);
        assert!(m.speculative_waste_nj(10, 6, 2) > base);
        assert!(m.speculative_waste_nj(10, 5, 3) > base);
        // DRAM dominates: one wasted fill outweighs one wasted RFO walk.
        assert!(m.speculative_waste_nj(0, 0, 1) > m.speculative_waste_nj(1, 0, 0));
    }

    #[test]
    fn display_is_readable() {
        let b = EnergyModel::default().evaluate(&events());
        let s = b.to_string();
        assert!(s.contains("cache"));
        assert!(s.contains("static"));
    }
}

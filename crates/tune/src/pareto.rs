//! Multi-objective scoring and Pareto-frontier extraction.
//!
//! Every tune point is scored on three minimized objectives, summed
//! across the app list in app order (so the floating-point energy sum
//! is bit-reproducible):
//!
//! - **cycles** — measured cycles (the paper's performance axis),
//! - **energy** — total nJ from the `spb-energy` model,
//! - **coherence traffic** — interconnect messages
//!   ([`spb_mem::MemStats::coherence_traffic`]).
//!
//! A point is on the frontier iff no other point is at least as good on
//! every objective and strictly better on one.

/// The objective vector of one evaluated point (lower is better on
/// every axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Total measured cycles across the app list.
    pub cycles: u64,
    /// Total energy across the app list, in nJ.
    pub energy_nj: f64,
    /// Total coherence-traffic messages across the app list.
    pub coh_msgs: u64,
}

impl Objectives {
    /// Zero on every axis (the fold identity).
    pub fn zero() -> Self {
        Self {
            cycles: 0,
            energy_nj: 0.0,
            coh_msgs: 0,
        }
    }

    /// Accumulates one app's contribution.
    pub fn add(&mut self, cycles: u64, energy_nj: f64, coh_msgs: u64) {
        self.cycles += cycles;
        self.energy_nj += energy_nj;
        self.coh_msgs += coh_msgs;
    }

    /// Whether `self` dominates `other`: no worse on every objective
    /// and strictly better on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.cycles <= other.cycles
            && self.energy_nj <= other.energy_nj
            && self.coh_msgs <= other.coh_msgs;
        let better = self.cycles < other.cycles
            || self.energy_nj < other.energy_nj
            || self.coh_msgs < other.coh_msgs;
        no_worse && better
    }
}

/// Indices of the non-dominated points, in input order.
pub fn pareto_frontier(objectives: &[Objectives]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            objectives
                .iter()
                .enumerate()
                .all(|(j, o)| j == i || !o.dominates(&objectives[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(cycles: u64, energy_nj: f64, coh_msgs: u64) -> Objectives {
        Objectives {
            cycles,
            energy_nj,
            coh_msgs,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        assert!(o(10, 10.0, 10).dominates(&o(11, 10.0, 10)));
        assert!(!o(10, 10.0, 10).dominates(&o(10, 10.0, 10)), "equal points tie");
        assert!(!o(9, 11.0, 10).dominates(&o(10, 10.0, 10)), "tradeoffs don't dominate");
    }

    #[test]
    fn frontier_keeps_the_tradeoff_curve() {
        let objs = [
            o(100, 50.0, 10), // fast but hot
            o(200, 20.0, 10), // slow but cool
            o(150, 35.0, 10), // the middle of the curve
            o(210, 60.0, 20), // dominated by everything
            o(100, 50.0, 10), // duplicate of the first: both survive
        ];
        assert_eq!(pareto_frontier(&objs), vec![0, 1, 2, 4]);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(pareto_frontier(&[o(1, 1.0, 1)]), vec![0]);
        assert!(pareto_frontier(&[]).is_empty());
    }
}

//! Pareto-frontier reports: JSON (machine-readable, checksummed,
//! bit-identical across re-runs) and a text table for the terminal.
//!
//! The JSON deliberately excludes everything nondeterministic — wall
//! clock, cache hit/miss counts, worker counts — so running the same
//! tune twice (one cold, one served from cache) produces **byte-equal**
//! files. That property is CI-gated by `tune_smoke.sh` and lets a
//! report's checksum stand in for the whole design-space evaluation.

use crate::engine::TuneOutcome;
use spb_stats::hash::{fnv1a64, hex16};
use spb_stats::json::Json;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A finished tune, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Report name (file stem under `results/`).
    pub name: String,
    /// Strategy label (`grid` / `random` / `halving`).
    pub strategy: String,
    /// Sampling seed.
    pub seed: u64,
    /// Candidate count requested (0 = whole space).
    pub points_requested: usize,
    /// Warm-up µops per cell at the full budget.
    pub warmup_uops: u64,
    /// Measured µops per cell at the full budget.
    pub measure_uops: u64,
    /// Workload seed shared by every cell.
    pub workload_seed: u64,
    /// App names every point was scored over, in objective-sum order.
    pub apps: Vec<String>,
    /// The evaluated points, frontier, and failures.
    pub outcome: TuneOutcome,
}

impl TuneReport {
    /// The report body (everything except the checksum).
    pub fn body_json(&self) -> Json {
        let point_row = |p: &crate::engine::PointOutcome| {
            Json::obj([
                ("point", Json::str(p.point.name())),
                ("policy", Json::str(p.point.policy.label())),
                ("sb", Json::from(p.point.sb)),
                ("pareto", Json::from(p.pareto)),
                ("cycles", Json::from(p.objectives.cycles)),
                ("energy_nj", Json::from(p.objectives.energy_nj)),
                ("coh_msgs", Json::from(p.objectives.coh_msgs)),
                (
                    "cells",
                    Json::arr(p.cells.iter().map(|c| {
                        Json::obj([
                            ("app", Json::str(&c.app)),
                            ("key", Json::str(&c.key)),
                            ("cycles", Json::from(c.cycles)),
                            ("energy_nj", Json::from(c.energy_nj)),
                            ("coh_msgs", Json::from(c.coh_msgs)),
                        ])
                    })),
                ),
            ])
        };
        let frontier_row = |i: &usize| {
            let p = &self.outcome.points[*i];
            Json::obj([
                ("point", Json::str(p.point.name())),
                ("cycles", Json::from(p.objectives.cycles)),
                ("energy_nj", Json::from(p.objectives.energy_nj)),
                ("coh_msgs", Json::from(p.objectives.coh_msgs)),
                (
                    "edp_nj_cycles",
                    Json::from(p.objectives.energy_nj * p.objectives.cycles as f64),
                ),
            ])
        };
        let mut pairs = vec![
            ("name", Json::str(&self.name)),
            ("strategy", Json::str(&self.strategy)),
            ("seed", Json::from(self.seed)),
            ("points_requested", Json::from(self.points_requested)),
            ("warmup_uops", Json::from(self.warmup_uops)),
            ("measure_uops", Json::from(self.measure_uops)),
            ("workload_seed", Json::from(self.workload_seed)),
            (
                "apps",
                Json::arr(self.apps.iter().map(|a| Json::str(a))),
            ),
        ];
        if let Some((candidates, survivors)) = self.outcome.screen {
            pairs.push((
                "screen",
                Json::obj([
                    ("candidates", Json::from(candidates)),
                    ("survivors", Json::from(survivors)),
                ]),
            ));
        }
        pairs.push(("evaluated", Json::from(self.outcome.points.len())));
        if !self.outcome.failed.is_empty() {
            pairs.push((
                "failed",
                Json::arr(self.outcome.failed.iter().map(|f| {
                    Json::obj([
                        ("point", Json::str(&f.point)),
                        ("reason", Json::str(&f.reason)),
                    ])
                })),
            ));
        }
        pairs.push((
            "frontier",
            Json::arr(self.outcome.frontier.iter().map(frontier_row)),
        ));
        pairs.push((
            "points",
            Json::arr(self.outcome.points.iter().map(point_row)),
        ));
        Json::obj(pairs)
    }

    /// Compact one-line JSON (the checksum input).
    pub fn to_json_string(&self) -> String {
        format!("{}", self.body_json())
    }

    /// `fnv1a64:<hex>` over the compact body.
    pub fn content_checksum(&self) -> String {
        format!("fnv1a64:{}", hex16(fnv1a64(self.to_json_string().as_bytes())))
    }

    /// Pretty JSON with a trailing `"checksum"` field — what
    /// [`TuneReport::save`] writes.
    pub fn to_json_string_checksummed(&self) -> String {
        let mut v = self.body_json();
        if let Json::Obj(pairs) = &mut v {
            pairs.push(("checksum".to_string(), Json::str(self.content_checksum())));
        }
        format!("{v:#}\n")
    }

    /// The terminal rendering: a frontier table plus a one-line summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let o = &self.outcome;
        out.push_str(&format!(
            "tune {} — strategy {} seed {} · {} point(s) evaluated over {} app(s)\n",
            self.name,
            self.strategy,
            self.seed,
            o.points.len(),
            self.apps.len()
        ));
        if let Some((candidates, survivors)) = o.screen {
            out.push_str(&format!(
                "screen: {candidates} candidate(s) at quarter budget, {survivors} survivor(s) at full budget\n"
            ));
        }
        if !o.failed.is_empty() {
            out.push_str(&format!("failed: {} point(s) dropped\n", o.failed.len()));
        }
        out.push_str(&format!(
            "\nPareto frontier ({} of {} points):\n",
            o.frontier.len(),
            o.points.len()
        ));
        out.push_str(&format!(
            "  {:<34} {:>12} {:>14} {:>10} {:>16}\n",
            "point", "cycles", "energy (nJ)", "coh msgs", "EDP (nJ·cyc)"
        ));
        for &i in &o.frontier {
            let p = &o.points[i];
            out.push_str(&format!(
                "  {:<34} {:>12} {:>14.1} {:>10} {:>16.3e}\n",
                p.point.name(),
                p.objectives.cycles,
                p.objectives.energy_nj,
                p.objectives.coh_msgs,
                p.objectives.energy_nj * p.objectives.cycles as f64,
            ));
        }
        out
    }

    /// Writes the checksummed report atomically (`.tmp` + rename) as
    /// `<dir>/<name>.json` and returns the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        let tmp = dir.join(format!("{}.json.tmp", self.name));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(self.to_json_string_checksummed().as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

//! The design space: which policy points a tune explores.
//!
//! A [`TunePoint`] is one `(policy, SB size)` pair; a [`TuneSpace`]
//! names the value lists of each dimension and enumerates their cross
//! product in a fixed, documented order, so "point #17 of the default
//! space" means the same configuration on every machine, forever.
//! Seeded sampling is a deterministic Fisher–Yates shuffle of that
//! enumeration (splitmix-style [`mix64`] stream), so a `(seed, points)`
//! pair names the same sample on every run.

use spb_core::params::SpbParams;
use spb_sim::config::PolicyKind;
use spb_stats::hash::mix64;

/// One candidate configuration: a policy and the SB size it runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunePoint {
    /// The (possibly parameterized) policy.
    pub policy: PolicyKind,
    /// SB entries.
    pub sb: usize,
}

impl TunePoint {
    /// `label@sbN`, the point's display / provenance name.
    pub fn name(&self) -> String {
        format!("{}@sb{}", self.policy.label(), self.sb)
    }
}

/// The dimension lists a tune crosses.
///
/// Enumeration order (the contract the grid strategy and the seeded
/// shuffle are defined over):
///
/// 1. Base SPB points: `n` (outer) × `dedupe` × `burst` × `frac` ×
///    `sb` (inner), each list in its given order.
/// 2. Dynamic-S points: `n` × `sb`.
/// 3. Feedback points: `n` × `sb`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneSpace {
    /// Detector windows.
    pub n: Vec<u32>,
    /// Dedupe on/off.
    pub dedupe: Vec<bool>,
    /// Burst-threshold overrides (0 = the paper's auto rule).
    pub burst: Vec<u8>,
    /// Page fractions in thousandths (1000 = full page).
    pub frac: Vec<u16>,
    /// SB sizes.
    pub sb: Vec<usize>,
    /// Include the §IV-C dynamic-S variant rows.
    pub dynamic: bool,
    /// Include the FDP-style feedback variant rows.
    pub feedback: bool,
}

impl Default for TuneSpace {
    /// The default space: the paper's N sweep crossed with the extended
    /// knobs, plus both adaptive variants — 612 points.
    fn default() -> Self {
        Self {
            n: vec![8, 16, 24, 32, 48, 64],
            dedupe: vec![true, false],
            burst: vec![0, 2, 4, 8],
            frac: vec![1000, 750, 500, 250],
            sb: vec![14, 28, 56],
            dynamic: true,
            feedback: true,
        }
    }
}

impl TuneSpace {
    /// Total number of points the space enumerates.
    pub fn len(&self) -> usize {
        let base = self.n.len() * self.dedupe.len() * self.burst.len() * self.frac.len();
        let adaptive = (usize::from(self.dynamic) + usize::from(self.feedback)) * self.n.len();
        (base + adaptive) * self.sb.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every point, in the documented canonical order.
    pub fn enumerate(&self) -> Vec<TunePoint> {
        let mut points = Vec::with_capacity(self.len());
        for &n in &self.n {
            for &dedupe in &self.dedupe {
                for &burst in &self.burst {
                    for &frac_milli in &self.frac {
                        for &sb in &self.sb {
                            points.push(TunePoint {
                                policy: PolicyKind::Spb {
                                    params: SpbParams {
                                        n,
                                        dedupe,
                                        burst,
                                        frac_milli,
                                        ..SpbParams::default()
                                    },
                                },
                                sb,
                            });
                        }
                    }
                }
            }
        }
        if self.dynamic {
            for &n in &self.n {
                for &sb in &self.sb {
                    points.push(TunePoint {
                        policy: PolicyKind::SpbDynamic { n },
                        sb,
                    });
                }
            }
        }
        if self.feedback {
            for &n in &self.n {
                for &sb in &self.sb {
                    points.push(TunePoint {
                        policy: PolicyKind::SpbFeedback { n },
                        sb,
                    });
                }
            }
        }
        points
    }

    /// A seeded sample of `count` distinct points: Fisher–Yates over
    /// the canonical enumeration with a [`mix64`] index stream, then
    /// the first `count`. The same `(space, seed, count)` always names
    /// the same sample; `count >= len()` returns the whole (shuffled)
    /// space.
    pub fn sample(&self, seed: u64, count: usize) -> Vec<TunePoint> {
        let mut points = self.enumerate();
        let mut stream = seed;
        for i in (1..points.len()).rev() {
            stream = mix64(stream);
            points.swap(i, (stream % (i as u64 + 1)) as usize);
        }
        points.truncate(count);
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_has_documented_size() {
        let s = TuneSpace::default();
        assert_eq!(s.len(), 612, "6n × 2dedupe × 4burst × 4frac × 3sb + 2×6n×3sb");
        assert_eq!(s.enumerate().len(), s.len());
    }

    #[test]
    fn enumeration_is_distinct_and_round_trippable() {
        let points = TuneSpace::default().enumerate();
        let mut names: Vec<String> = points.iter().map(TunePoint::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), points.len(), "every point has a distinct name");
        for p in &points {
            let label = p.policy.label();
            assert_eq!(PolicyKind::parse(&label).unwrap(), p.policy, "{label}");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let s = TuneSpace::default();
        assert_eq!(s.sample(7, 50), s.sample(7, 50));
        assert_ne!(s.sample(7, 50), s.sample(8, 50));
        let all = s.sample(7, usize::MAX);
        assert_eq!(all.len(), s.len());
        // A sample is a prefix of the full shuffle.
        assert_eq!(&all[..50], &s.sample(7, 50)[..]);
    }

    #[test]
    fn first_point_of_the_default_grid_is_the_smallest_window() {
        let first = TuneSpace::default().enumerate()[0];
        assert_eq!(first.name(), "spb:n=8@sb14");
    }
}

//! Design-space autotuner over the parameterized SPB policy API
//! (ROADMAP item 3).
//!
//! The paper fixes the detector window at N=48 and one burst heuristic;
//! this crate searches the whole policy space the parameterized
//! [`PolicyKind`](spb_sim::config::PolicyKind) grammar can name —
//! window, dedupe, burst threshold, page fraction, adaptive variants —
//! crossed with SB sizes, and scores every point on a multi-objective
//! vector: **cycles** (performance), **energy** (the `spb-energy`
//! model), and **coherence traffic** (interconnect messages).
//!
//! Three layers:
//!
//! - [`space`]: [`TuneSpace`](space::TuneSpace) enumerates candidate
//!   points in a canonical order and draws seeded samples from it.
//! - [`engine`]: [`run_tune`](engine::run_tune) evaluates candidates
//!   through the supervised sweep executor and the content-addressed
//!   result cache (`spb-serve`), under a grid / seeded-random /
//!   successive-halving strategy. Re-running a tune is a cache hit.
//! - [`pareto`] / [`report`]: non-dominated-set extraction and
//!   bit-reproducible JSON + text reports with per-point cache-key
//!   provenance.
//!
//! Everything is deterministic for a fixed seed: the same invocation
//! produces a byte-identical report whether its cells were simulated or
//! served from cache (CI-gated by `tune_smoke.sh`).
//!
//! # Examples
//!
//! ```
//! use spb_tune::space::TuneSpace;
//!
//! let space = TuneSpace::default();
//! assert_eq!(space.len(), 612);
//! // The same seed always names the same 10 candidates.
//! assert_eq!(space.sample(7, 10), space.sample(7, 10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod pareto;
pub mod report;
pub mod space;

pub use engine::{run_tune, Strategy, TuneOptions, TuneOutcome, TuneStats};
pub use pareto::{pareto_frontier, Objectives};
pub use report::TuneReport;
pub use space::{TunePoint, TuneSpace};

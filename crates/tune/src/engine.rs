//! The exploration engine: strategy → candidate points → supervised,
//! cache-backed evaluation → objective vectors.
//!
//! Every candidate point is expanded into one sweep cell per app and
//! pushed through the same machinery as `spbsim sweep`:
//!
//! - the **content-addressed cache** (`spb-serve`) is probed first —
//!   a cell whose `(code version, app, full config)` key has a cached
//!   record with objective fields costs nothing, so re-running a tune
//!   (or sharing cells between tunes, or between a tune and the sweep
//!   service) is a cache hit;
//! - misses run under [`run_cells_supervised`] — retries with
//!   backoff, fault classification, watchdog deadlines — and their
//!   records (with energy/coherence objectives) are stored back.
//!
//! Everything is deterministic for a fixed `(space, strategy, seed,
//! points, budget, apps)`: candidate selection is a seeded shuffle,
//! evaluation order is canonical, objective sums are accumulated in app
//! order, and the simulated numbers themselves are bit-reproducible.

use crate::pareto::{pareto_frontier, Objectives};
use crate::space::{TunePoint, TuneSpace};
use spb_serve::{CacheKey, Lookup, ResultCache};
use spb_sim::config::SimConfig;
use spb_sim::sweep::{run_cells_supervised, Supervision, SweepOptions, SweepRecord};
use spb_trace::profile::AppProfile;

/// How candidate points are chosen from the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The first `points` of the canonical enumeration (all of them
    /// when `points` is 0 or exceeds the space).
    Grid,
    /// A seeded random sample of `points` distinct points.
    Random,
    /// Successive halving: a seeded sample of `points` candidates is
    /// screened at a quarter of the budget; the best quarter (by total
    /// cycles) re-runs at the full budget.
    Halving,
}

impl Strategy {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "grid" => Ok(Strategy::Grid),
            "random" => Ok(Strategy::Random),
            "halving" => Ok(Strategy::Halving),
            other => Err(format!(
                "unknown strategy {other:?} (valid: grid, random, halving)"
            )),
        }
    }

    /// The CLI spelling.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Grid => "grid",
            Strategy::Random => "random",
            Strategy::Halving => "halving",
        }
    }
}

/// Everything one tune run needs.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Candidate-selection strategy.
    pub strategy: Strategy,
    /// Sampling seed (`Random` / `Halving`).
    pub seed: u64,
    /// Number of candidate points (0 = the whole space for `Grid`;
    /// `Random`/`Halving` treat 0 as the whole space too).
    pub points: usize,
    /// The space to explore.
    pub space: TuneSpace,
    /// Per-cell budget and workload seed; `with_sb`/`with_policy` are
    /// applied per point on top of this.
    pub base_cfg: SimConfig,
    /// Apps every point is scored over (objective sums run in this
    /// order).
    pub apps: Vec<AppProfile>,
    /// Worker-pool options for cache misses.
    pub sweep: SweepOptions,
    /// Retry/deadline supervision for cache misses.
    pub supervision: Supervision,
}

/// One evaluated `(point, app)` cell, with its cache-key provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// App name.
    pub app: String,
    /// Content-addressed cache key (16 hex digits) — the cell's full
    /// provenance: code version + app + entire `SimConfig`.
    pub key: String,
    /// Measured cycles.
    pub cycles: u64,
    /// Total energy, nJ.
    pub energy_nj: f64,
    /// Coherence-traffic messages.
    pub coh_msgs: u64,
}

/// One fully evaluated point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// The configuration.
    pub point: TunePoint,
    /// Per-app results, in app order.
    pub cells: Vec<CellOutcome>,
    /// Objective sums across the app list.
    pub objectives: Objectives,
    /// Whether the point is on the Pareto frontier.
    pub pareto: bool,
}

/// A point that failed to evaluate (some cell exhausted its retries).
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// The point's display name.
    pub point: String,
    /// The first failing cell's diagnostic.
    pub reason: String,
}

/// Cache traffic of one tune run. Deliberately **not** part of the
/// report file (a re-run serves from cache and must stay bit-identical);
/// the CLI prints it to the terminal instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuneStats {
    /// Cells served from the content-addressed cache.
    pub cache_hits: u64,
    /// Cells simulated this run.
    pub computed: u64,
}

/// The result of a tune run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOutcome {
    /// Every point evaluated at the full budget, in candidate order,
    /// with `pareto` flags set.
    pub points: Vec<PointOutcome>,
    /// Indices into `points` of the Pareto frontier.
    pub frontier: Vec<usize>,
    /// Points dropped because a cell failed after retries.
    pub failed: Vec<PointFailure>,
    /// For `Halving`: `(candidates screened, survivors)`.
    pub screen: Option<(usize, usize)>,
    /// Cache hit/compute counters (terminal-only; not in the report).
    pub stats: TuneStats,
}

/// Runs one tune: selects candidates, evaluates them through the cache
/// and the supervised executor, and extracts the Pareto frontier.
pub fn run_tune(opts: &TuneOptions, cache: &ResultCache) -> TuneOutcome {
    let space_len = opts.space.len();
    let count = if opts.points == 0 {
        space_len
    } else {
        opts.points.min(space_len)
    };
    let mut stats = TuneStats::default();
    let mut failed = Vec::new();
    let mut screen = None;

    let candidates = match opts.strategy {
        Strategy::Grid => {
            let mut points = opts.space.enumerate();
            points.truncate(count);
            points
        }
        Strategy::Random => opts.space.sample(opts.seed, count),
        Strategy::Halving => {
            let sampled = opts.space.sample(opts.seed, count);
            let screened = evaluate(
                &sampled,
                &screen_config(&opts.base_cfg),
                &opts.apps,
                cache,
                &opts.sweep,
                &opts.supervision,
                &mut stats,
                &mut failed,
            );
            // Keep the best quarter by total cycles; ties resolve by
            // candidate order (sort is stable).
            let survivors = count.div_ceil(4).max(1).min(screened.len());
            let mut ranked: Vec<&PointOutcome> = screened.iter().collect();
            ranked.sort_by_key(|p| p.objectives.cycles);
            screen = Some((sampled.len(), survivors));
            ranked[..survivors].iter().map(|p| p.point).collect()
        }
    };

    let mut points = evaluate(
        &candidates,
        &opts.base_cfg,
        &opts.apps,
        cache,
        &opts.sweep,
        &opts.supervision,
        &mut stats,
        &mut failed,
    );
    let objectives: Vec<Objectives> = points.iter().map(|p| p.objectives).collect();
    let frontier = pareto_frontier(&objectives);
    for &i in &frontier {
        points[i].pareto = true;
    }
    TuneOutcome {
        points,
        frontier,
        failed,
        screen,
        stats,
    }
}

/// The successive-halving screen budget: a quarter of the warmup and
/// measure windows (floored so tiny budgets stay meaningful).
fn screen_config(base: &SimConfig) -> SimConfig {
    let mut cfg = base.clone();
    cfg.warmup_uops = (base.warmup_uops / 4).max(1_000);
    cfg.measure_uops = (base.measure_uops / 4).max(5_000);
    cfg
}

/// Evaluates `points` at `cfg`'s budget: cache probe, supervised run of
/// the misses, store-back, objective aggregation. Points whose cells
/// all resolve come back in candidate order; failing points are moved
/// to `failed`.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    points: &[TunePoint],
    cfg: &SimConfig,
    apps: &[AppProfile],
    cache: &ResultCache,
    sweep: &SweepOptions,
    supervision: &Supervision,
    stats: &mut TuneStats,
    failed: &mut Vec<PointFailure>,
) -> Vec<PointOutcome> {
    // One slot per (point, app) cell, probed against the cache first.
    let mut slots: Vec<Option<CellOutcome>> = Vec::with_capacity(points.len() * apps.len());
    let mut misses: Vec<(usize, &AppProfile, SimConfig, CacheKey)> = Vec::new();
    for point in points {
        for app in apps {
            let cell_cfg = cfg
                .clone()
                .with_sb(point.sb)
                .with_policy(point.policy);
            let key = CacheKey::for_cell(app.name(), &cell_cfg);
            let slot = slots.len();
            match cache.lookup(key) {
                // Only records that carry the objective fields can
                // serve a tune; service-written records without them
                // are recomputed (and upgraded in place).
                Lookup::Hit(rec) if rec.energy_nj.is_some() && rec.coh_msgs.is_some() => {
                    stats.cache_hits += 1;
                    slots.push(Some(CellOutcome {
                        app: app.name().to_string(),
                        key: key.hex(),
                        cycles: rec.cycles,
                        energy_nj: rec.energy_nj.expect("checked"),
                        coh_msgs: rec.coh_msgs.expect("checked"),
                    }));
                }
                _ => {
                    misses.push((slot, app, cell_cfg, key));
                    slots.push(None);
                }
            }
        }
    }

    // Simulate the misses through the supervised executor.
    let cells: Vec<(&AppProfile, SimConfig)> =
        misses.iter().map(|(_, a, c, _)| (*a, c.clone())).collect();
    let results = run_cells_supervised(&cells, sweep, supervision);
    let mut cell_errors: Vec<(usize, String)> = Vec::new();
    for ((slot, app, _, key), (result, _attempts)) in misses.iter().zip(results) {
        match result {
            Ok(run) => {
                stats.computed += 1;
                let rec = SweepRecord::from_run_full(&run);
                if let Err(e) = cache.store(*key, app.name(), &rec) {
                    eprintln!("tune: cache store failed for {}: {e}", key.hex());
                }
                slots[*slot] = Some(CellOutcome {
                    app: app.name().to_string(),
                    key: key.hex(),
                    cycles: rec.cycles,
                    energy_nj: rec.energy_nj.expect("from_run_full populates"),
                    coh_msgs: rec.coh_msgs.expect("from_run_full populates"),
                });
            }
            Err(f) => cell_errors.push((*slot, f.to_string())),
        }
    }

    // Reassemble per point.
    let mut out = Vec::with_capacity(points.len());
    for (i, point) in points.iter().enumerate() {
        let base = i * apps.len();
        let point_slots = &slots[base..base + apps.len()];
        if let Some((slot, reason)) = cell_errors
            .iter()
            .find(|(s, _)| (base..base + apps.len()).contains(s))
        {
            failed.push(PointFailure {
                point: point.name(),
                reason: format!("cell {}: {reason}", slot - base),
            });
            continue;
        }
        let cells: Vec<CellOutcome> = point_slots
            .iter()
            .map(|s| s.clone().expect("non-failing cell is filled"))
            .collect();
        let mut objectives = Objectives::zero();
        for c in &cells {
            objectives.add(c.cycles, c.energy_nj, c.coh_msgs);
        }
        out.push(PointOutcome {
            point: *point,
            cells,
            objectives,
            pareto: false,
        });
    }
    out
}

//! End-to-end tune determinism: the same invocation run twice against
//! one cache directory must produce a byte-identical report, with the
//! second run served entirely from cache — the property the CI
//! `tune_smoke` gate checks at scale.

use spb_sim::config::SimConfig;
use spb_sim::sweep::{Supervision, SweepOptions};
use spb_trace::profile::AppProfile;
use spb_tune::engine::{run_tune, Strategy, TuneOptions};
use spb_tune::report::TuneReport;
use spb_tune::space::TuneSpace;

fn tiny_options(strategy: Strategy) -> TuneOptions {
    let mut base_cfg = SimConfig::quick();
    base_cfg.warmup_uops = 2_000;
    base_cfg.measure_uops = 10_000;
    TuneOptions {
        strategy,
        seed: 7,
        points: 6,
        space: TuneSpace::default(),
        base_cfg,
        apps: vec![AppProfile::by_name("x264").unwrap()],
        sweep: SweepOptions::with_jobs(2),
        supervision: Supervision::with_retries(2),
    }
}

fn report_text(opts: &TuneOptions, cache: &spb_serve::ResultCache) -> (String, u64, u64) {
    let outcome = run_tune(opts, cache);
    let stats = outcome.stats;
    let report = TuneReport {
        name: "tune-test".into(),
        strategy: opts.strategy.label().into(),
        seed: opts.seed,
        points_requested: opts.points,
        warmup_uops: opts.base_cfg.warmup_uops,
        measure_uops: opts.base_cfg.measure_uops,
        workload_seed: opts.base_cfg.seed,
        apps: opts.apps.iter().map(|a| a.name().to_string()).collect(),
        outcome,
    };
    (
        report.to_json_string_checksummed(),
        stats.cache_hits,
        stats.computed,
    )
}

fn tmp_cache(tag: &str) -> spb_serve::ResultCache {
    let dir = std::env::temp_dir().join(format!("spb-tune-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    spb_serve::ResultCache::open(dir).unwrap()
}

#[test]
fn halving_tune_is_bit_identical_and_fully_cached_on_rerun() {
    let opts = tiny_options(Strategy::Halving);
    let cache = tmp_cache("halving");
    let (first, hits1, computed1) = report_text(&opts, &cache);
    assert!(computed1 > 0, "cold run simulates");
    assert_eq!(hits1, 0, "cold cache has no hits");
    let (second, hits2, computed2) = report_text(&opts, &cache);
    assert_eq!(first, second, "re-run must be byte-identical");
    assert_eq!(computed2, 0, "warm run must be 100% cache hits");
    assert!(hits2 > 0);
    assert!(first.contains("\"frontier\""));
    std::fs::remove_dir_all(cache.dir()).unwrap();
}

#[test]
fn tune_cells_are_shared_between_strategies_through_the_cache() {
    // A grid over the same points a random sample chose hits the same
    // content-addressed keys: cache reuse is by cell, not by tune.
    let cache = tmp_cache("shared");
    let random = tiny_options(Strategy::Random);
    let (_, _, computed_cold) = report_text(&random, &cache);
    assert!(computed_cold > 0);
    let (_, hits_warm, _) = report_text(&random, &cache);
    assert_eq!(hits_warm as usize, random.points, "one hit per point×app");
    std::fs::remove_dir_all(cache.dir()).unwrap();
}

#[test]
fn grid_strategy_respects_canonical_order() {
    let cache = tmp_cache("grid");
    let mut opts = tiny_options(Strategy::Grid);
    opts.points = 3;
    let outcome = run_tune(&opts, &cache);
    let names: Vec<String> = outcome.points.iter().map(|p| p.point.name()).collect();
    assert_eq!(
        names,
        TuneSpace::default()
            .enumerate()
            .iter()
            .take(3)
            .map(|p| p.name())
            .collect::<Vec<_>>()
    );
    assert!(!outcome.frontier.is_empty());
    std::fs::remove_dir_all(cache.dir()).unwrap();
}

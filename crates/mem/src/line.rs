//! Cache-line metadata: coherence state, fill time, prefetch origin.

use std::fmt;

/// Stable MESI coherence states.
///
/// Transient states (the paper's `IM`, `PF_IM`) are not stored explicitly:
/// a line whose [`CacheLine::ready`] lies in the future *is* in a
/// transient state, and [`crate::system::MemorySystem`] reports the
/// paper-style transient name through its event API so the Figure 4
/// running example can be checked verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceState {
    /// Invalid (not present).
    Invalid,
    /// Shared, read-only, possibly with other sharers.
    Shared,
    /// Exclusive, clean, no other copy.
    Exclusive,
    /// Modified: owned with write permission, dirty.
    Modified,
}

impl CoherenceState {
    /// Whether a load may be satisfied from this state.
    pub fn readable(self) -> bool {
        !matches!(self, CoherenceState::Invalid)
    }

    /// Whether a store may be performed in this state.
    ///
    /// `Exclusive` upgrades to `Modified` silently (no traffic), so it
    /// counts as writable.
    pub fn writable(self) -> bool {
        matches!(self, CoherenceState::Exclusive | CoherenceState::Modified)
    }
}

impl fmt::Display for CoherenceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoherenceState::Invalid => "I",
            CoherenceState::Shared => "S",
            CoherenceState::Exclusive => "E",
            CoherenceState::Modified => "M",
        };
        f.write_str(s)
    }
}

/// Who requested the write-permission prefetch that brought a line in.
///
/// Figure 11 classifies store requests at the L1 by the *fate* of the
/// prefetch that should have covered them, so every prefetched line
/// remembers its originating policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RfoOrigin {
    /// At-execute policy (issued when the store's address resolved).
    AtExecute,
    /// At-commit policy (issued when the store committed into the SB).
    AtCommit,
    /// An SPB page burst.
    SpbBurst,
    /// The generic L1 cache prefetcher (stream/aggressive/adaptive).
    CachePrefetcher,
}

impl Default for RfoOrigin {
    /// Slot filler for [`crate::blockmap::BlockMap`] value lanes; never
    /// observable through the map API.
    fn default() -> Self {
        RfoOrigin::AtExecute
    }
}

impl RfoOrigin {
    /// All origins, in reporting order.
    pub const ALL: [RfoOrigin; 4] = [
        RfoOrigin::AtExecute,
        RfoOrigin::AtCommit,
        RfoOrigin::SpbBurst,
        RfoOrigin::CachePrefetcher,
    ];

    /// Dense index for per-origin counter arrays.
    pub fn index(self) -> usize {
        match self {
            RfoOrigin::AtExecute => 0,
            RfoOrigin::AtCommit => 1,
            RfoOrigin::SpbBurst => 2,
            RfoOrigin::CachePrefetcher => 3,
        }
    }
}

impl fmt::Display for RfoOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RfoOrigin::AtExecute => "at-execute",
            RfoOrigin::AtCommit => "at-commit",
            RfoOrigin::SpbBurst => "spb-burst",
            RfoOrigin::CachePrefetcher => "cache-prefetcher",
        };
        f.write_str(s)
    }
}

/// One cache line's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// Block address stored in this way (full block number, not a tag
    /// fragment — the model trades a few bytes for clarity).
    pub block: u64,
    /// Stable coherence state.
    pub state: CoherenceState,
    /// Cycle at which the fill completes. A line with `ready` in the
    /// future is in a transient state (`IM`/`PF_IM`).
    pub ready: u64,
    /// Whether the line holds modified data that must be written back.
    pub dirty: bool,
    /// Prefetch origin, if a prefetch (rather than a demand miss)
    /// brought this line in.
    pub prefetch: Option<RfoOrigin>,
    /// Whether a demand access has touched the line since it was filled.
    pub used: bool,
    /// LRU timestamp (larger = more recently used).
    pub lru: u64,
}

impl CacheLine {
    /// An invalid line.
    pub fn invalid() -> Self {
        Self {
            block: u64::MAX,
            state: CoherenceState::Invalid,
            ready: 0,
            dirty: false,
            prefetch: None,
            used: false,
            lru: 0,
        }
    }

    /// Whether the line holds a valid copy of some block.
    pub fn is_valid(&self) -> bool {
        self.state != CoherenceState::Invalid
    }

    /// Whether the fill has completed by `now`.
    pub fn is_ready(&self, now: u64) -> bool {
        self.ready <= now
    }
}

impl Default for CacheLine {
    fn default() -> Self {
        Self::invalid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_line_is_not_valid() {
        let l = CacheLine::invalid();
        assert!(!l.is_valid());
        assert!(l.is_ready(0));
    }

    #[test]
    fn readable_and_writable_states() {
        assert!(!CoherenceState::Invalid.readable());
        assert!(CoherenceState::Shared.readable());
        assert!(!CoherenceState::Shared.writable());
        assert!(CoherenceState::Exclusive.writable());
        assert!(CoherenceState::Modified.writable());
    }

    #[test]
    fn readiness_follows_fill_time() {
        let mut l = CacheLine::invalid();
        l.ready = 100;
        assert!(!l.is_ready(99));
        assert!(l.is_ready(100));
    }

    #[test]
    fn display_uses_mesi_letters() {
        assert_eq!(CoherenceState::Modified.to_string(), "M");
        assert_eq!(CoherenceState::Invalid.to_string(), "I");
    }
}

//! A flat open-addressing map keyed by cache-block number.
//!
//! The directory (and the invariant checker that cross-examines it once
//! per checking interval) does a map operation per miss, per eviction,
//! and per valid private-cache line scanned. `std::collections::HashMap`
//! pays SipHash plus per-process-randomized iteration order for that;
//! this map instead uses Fibonacci multiplicative hashing over a
//! power-of-two table with linear probing and backward-shift deletion
//! (no tombstones), which makes probes short, scans branch-predictable,
//! and iteration order a pure function of the insertion/removal history
//! — the same determinism contract the rest of the simulator keeps.
//!
//! Keys are block numbers (`address / block_bytes`), so `u64::MAX` is
//! unreachable and serves as the empty-slot sentinel.

/// Slot sentinel: no real block number reaches `u64::MAX`.
const EMPTY: u64 = u64::MAX;

/// A `u64 → V` map specialised for cache-block keys.
///
/// # Examples
///
/// ```
/// use spb_mem::blockmap::BlockMap;
///
/// let mut m: BlockMap<u32> = BlockMap::new();
/// m.insert(0x40, 7);
/// assert_eq!(m.get(0x40), Some(&7));
/// assert_eq!(m.remove(0x40), Some(7));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BlockMap<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
}

impl<V: Copy + Default> Default for BlockMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> BlockMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self {
            keys: vec![EMPTY; 16],
            vals: vec![V::default(); 16],
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot a key ideally lands in (Fibonacci hashing).
    #[inline]
    fn ideal(&self, key: u64) -> usize {
        let shift = 64 - self.keys.len().trailing_zeros();
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
    }

    /// The slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.keys.len() - 1;
        let mut i = self.ideal(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Returns the value for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| &self.vals[i])
    }

    /// Returns a mutable reference to the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| &mut self.vals[i])
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Pulls `key`'s ideal slot into the host cache without reading the
    /// entry. A batch of `warm` calls before the matching `get`s turns
    /// a chain of dependent random probes into independent, overlapping
    /// loads (the invariant checker's sweep is memory-level-parallel
    /// this way). Semantically a no-op.
    #[inline]
    pub fn warm(&self, key: u64) {
        std::hint::black_box(self.keys[self.ideal(key)]);
    }

    /// Inserts or overwrites, returning the previous value if any.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty-slot sentinel");
        if (self.len + 1) * 8 >= self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.ideal(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(std::mem::replace(&mut self.vals[i], val));
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes `key`, returning its value if it was present.
    ///
    /// Uses backward-shift deletion: every displaced follower in the
    /// probe chain slides back one slot, so lookups never need
    /// tombstones and the table layout stays a pure function of the
    /// operation history.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut i = self.find(key)?;
        let val = self.vals[i];
        let mask = self.keys.len() - 1;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            // Move `k` back unless it already sits at or after its ideal
            // slot within the (i, j] probe window.
            let ideal = self.ideal(k);
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(i) & mask) {
                self.keys[i] = k;
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
        self.keys[i] = EMPTY;
        self.len -= 1;
        Some(val)
    }

    /// Removes every entry, keeping the table's capacity.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// Keeps only the entries `f` approves of, rebuilding the table (the
    /// one allocating operation here — intended for rare trims, not hot
    /// paths). Capacity is preserved so a map that cycles between growth
    /// and trimming does not thrash.
    pub fn retain(&mut self, mut f: impl FnMut(u64, &V) -> bool) {
        let cap = self.keys.len();
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![V::default(); cap]);
        self.len = 0;
        let mask = cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY || !f(k, &v) {
                continue;
            }
            let mut i = self.ideal(k);
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.vals[i] = v;
            self.len += 1;
        }
    }

    /// Doubles the table and re-inserts every entry.
    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        self.keys = vec![EMPTY; old_keys.len() * 2];
        self.vals = vec![V::default(); old_keys.len() * 2];
        let mask = self.keys.len() - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut i = self.ideal(k);
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }

    /// Iterates over `(key, value)` pairs in table order (deterministic
    /// for a given operation history).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: BlockMap<u64> = BlockMap::new();
        for k in 0..100u64 {
            assert_eq!(m.insert(k * 3, k), None);
        }
        assert_eq!(m.len(), 100);
        for k in 0..100u64 {
            assert_eq!(m.get(k * 3), Some(&k));
        }
        assert_eq!(m.get(1), None);
        for k in 0..50u64 {
            assert_eq!(m.remove(k * 3), Some(k));
        }
        assert_eq!(m.len(), 50);
        for k in 50..100u64 {
            assert_eq!(m.get(k * 3), Some(&k), "survivors intact after deletions");
        }
        assert_eq!(m.remove(1), None);
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut m: BlockMap<u8> = BlockMap::new();
        assert_eq!(m.insert(9, 1), None);
        assert_eq!(m.insert(9, 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(9), Some(&2));
    }

    #[test]
    fn backward_shift_keeps_probe_chains_reachable() {
        // Force collisions by using keys that share low-entropy spacing,
        // delete from the middle of chains, and verify every survivor.
        let mut m: BlockMap<u64> = BlockMap::new();
        let keys: Vec<u64> = (0..512u64).map(|i| i * 16).collect();
        for &k in &keys {
            m.insert(k, k + 1);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(m.remove(k), Some(k + 1));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(&(k + 1)), "key {k} lost after deletions");
            }
        }
    }

    #[test]
    fn iteration_matches_contents() {
        let mut m: BlockMap<u64> = BlockMap::new();
        for k in 0..40u64 {
            m.insert(k * 7, k);
        }
        m.remove(7);
        let mut got: Vec<(u64, u64)> = m.iter().map(|(k, &v)| (k, v)).collect();
        got.sort_unstable();
        let want: Vec<(u64, u64)> = (0..40u64).filter(|&k| k != 1).map(|k| (k * 7, k)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn matches_std_hashmap_under_random_churn() {
        use std::collections::HashMap;
        let mut m: BlockMap<u64> = BlockMap::new();
        let mut h: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 997;
            match x >> 62 {
                0 | 1 => {
                    assert_eq!(m.insert(key, step), h.insert(key, step));
                }
                2 => {
                    assert_eq!(m.remove(key), h.remove(&key));
                }
                _ => {
                    assert_eq!(m.get(key), h.get(&key));
                }
            }
            assert_eq!(m.len(), h.len());
        }
    }
}

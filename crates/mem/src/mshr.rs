//! Miss-status holding registers.
//!
//! MSHRs bound the number of outstanding misses a cache level can track
//! (64 per cache in Table I). Requests to a block that already has an
//! entry *merge* into it; when the file is full, new misses must wait
//! for the earliest completing entry — this is what ultimately limits
//! how aggressive a prefetch burst can be.

use crate::line::RfoOrigin;

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// The missing block.
    pub block: u64,
    /// Cycle at which the fill completes.
    pub ready: u64,
    /// Whether the request asked for ownership (RFO) rather than a read.
    pub exclusive: bool,
    /// Prefetch origin, if this miss was initiated by a prefetch.
    pub prefetch: Option<RfoOrigin>,
}

/// A bounded file of [`MshrEntry`]s.
///
/// # Examples
///
/// ```
/// use spb_mem::mshr::MshrFile;
///
/// let mut mshrs = MshrFile::new(2);
/// assert!(mshrs.allocate(0x10, 100, true, None, 0).is_ok());
/// assert!(mshrs.lookup(0x10).is_some());
/// // Completed entries are reclaimed lazily.
/// mshrs.retire_completed(100);
/// assert!(mshrs.lookup(0x10).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<MshrEntry>,
    allocations: u64,
    merges: u64,
    full_events: u64,
}

impl MshrFile {
    /// Creates a file with room for `capacity` outstanding misses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            allocations: 0,
            merges: 0,
            full_events: 0,
        }
    }

    /// Maximum number of outstanding entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total allocations (for stats).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total merged (secondary) requests.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Times a request found the file full.
    pub fn full_events(&self) -> u64 {
        self.full_events
    }

    /// Drops entries whose fills have completed by `now`.
    pub fn retire_completed(&mut self, now: u64) {
        self.entries.retain(|e| e.ready > now);
    }

    /// Finds the outstanding entry for `block`, if any.
    pub fn lookup(&self, block: u64) -> Option<&MshrEntry> {
        self.entries.iter().find(|e| e.block == block)
    }

    /// All outstanding entries (read-only; for invariant checking).
    pub fn entries(&self) -> &[MshrEntry] {
        &self.entries
    }

    /// Removes the outstanding entry for `block`, returning it if it was
    /// present. Used when a remote invalidation kills an in-flight fill:
    /// letting the entry live would later merge a store into a line the
    /// directory no longer grants — a stale writable copy.
    pub fn invalidate_entry(&mut self, block: u64) -> Option<MshrEntry> {
        let i = self.entries.iter().position(|e| e.block == block)?;
        Some(self.entries.swap_remove(i))
    }

    /// Strips write permission from an in-flight entry for `block` (a
    /// remote read downgraded the grant). Returns whether an exclusive
    /// entry was actually downgraded.
    pub fn downgrade_entry(&mut self, block: u64) -> bool {
        match self.entries.iter_mut().find(|e| e.block == block) {
            Some(e) if e.exclusive => {
                e.exclusive = false;
                true
            }
            _ => false,
        }
    }

    /// Upgrades an in-flight read entry to exclusive (a store merged into
    /// a load miss); returns the entry's ready time if present.
    pub fn upgrade_to_exclusive(&mut self, block: u64) -> Option<u64> {
        let e = self.entries.iter_mut().find(|e| e.block == block)?;
        e.exclusive = true;
        Some(e.ready)
    }

    /// Folds an upgrade request into an existing in-flight entry: marks
    /// it exclusive and extends its completion to at least `ready`.
    /// Returns `false` when no entry for `block` exists (the caller
    /// allocates a fresh one). One entry per block is what the MSHR-leak
    /// invariant demands; a blind second `allocate` would duplicate.
    pub fn merge_exclusive(&mut self, block: u64, ready: u64) -> bool {
        match self.entries.iter_mut().find(|e| e.block == block) {
            Some(e) => {
                e.exclusive = true;
                e.ready = e.ready.max(ready);
                self.merges += 1;
                true
            }
            None => false,
        }
    }

    /// Records a merged (secondary) request against an existing entry.
    pub fn record_merge(&mut self) {
        self.merges += 1;
    }

    /// Allocates an entry for `block` completing at `ready`.
    ///
    /// # Errors
    ///
    /// Returns `Err(earliest_ready)` when the file is full, where
    /// `earliest_ready` is the soonest cycle at which an entry frees up
    /// (callers retry then). Completed entries are reclaimed first.
    pub fn allocate(
        &mut self,
        block: u64,
        ready: u64,
        exclusive: bool,
        prefetch: Option<RfoOrigin>,
        now: u64,
    ) -> Result<(), u64> {
        self.retire_completed(now);
        debug_assert!(
            self.lookup(block).is_none(),
            "duplicate MSHR for block {block:#x}"
        );
        if self.entries.len() >= self.capacity {
            self.full_events += 1;
            let earliest = self
                .entries
                .iter()
                .map(|e| e.ready)
                .min()
                .expect("full file is non-empty");
            return Err(earliest);
        }
        self.entries.push(MshrEntry {
            block,
            ready,
            exclusive,
            prefetch,
        });
        self.allocations += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_lookup() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 50, true, None, 0).unwrap();
        let e = m.lookup(1).unwrap();
        assert_eq!(e.ready, 50);
        assert!(e.exclusive);
        assert_eq!(m.allocations(), 1);
    }

    #[test]
    fn full_file_reports_earliest_completion() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 100, false, None, 0).unwrap();
        m.allocate(2, 60, false, None, 0).unwrap();
        let err = m.allocate(3, 120, false, None, 10).unwrap_err();
        assert_eq!(err, 60);
        assert_eq!(m.full_events(), 1);
    }

    #[test]
    fn completed_entries_are_reclaimed_on_allocate() {
        let mut m = MshrFile::new(1);
        m.allocate(1, 10, false, None, 0).unwrap();
        // At cycle 11 the old entry has completed, so this succeeds.
        m.allocate(2, 50, false, None, 11).unwrap();
        assert_eq!(m.len(), 1);
        assert!(m.lookup(1).is_none());
    }

    #[test]
    fn upgrade_marks_exclusive_and_returns_ready() {
        let mut m = MshrFile::new(2);
        m.allocate(7, 42, false, None, 0).unwrap();
        assert_eq!(m.upgrade_to_exclusive(7), Some(42));
        assert!(m.lookup(7).unwrap().exclusive);
        assert_eq!(m.upgrade_to_exclusive(9), None);
    }

    #[test]
    fn retire_is_strict_about_boundary() {
        let mut m = MshrFile::new(2);
        m.allocate(7, 42, false, None, 0).unwrap();
        m.retire_completed(41);
        assert_eq!(m.len(), 1, "not complete before its ready cycle");
        m.retire_completed(42);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn downgrade_entry_strips_write_permission() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 50, true, None, 0).unwrap();
        assert!(m.downgrade_entry(1));
        assert!(!m.lookup(1).unwrap().exclusive);
        assert!(!m.downgrade_entry(1), "already shared");
        assert!(!m.downgrade_entry(9), "absent block");
    }

    #[test]
    fn invalidate_entry_removes_only_the_target() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 50, true, None, 0).unwrap();
        m.allocate(2, 60, false, None, 0).unwrap();
        let e = m.invalidate_entry(1).unwrap();
        assert_eq!(e.block, 1);
        assert!(m.lookup(1).is_none());
        assert!(m.lookup(2).is_some());
        assert!(m.invalidate_entry(3).is_none());
    }
}

//! Miss-status holding registers.
//!
//! MSHRs bound the number of outstanding misses a cache level can track
//! (64 per cache in Table I). Requests to a block that already has an
//! entry *merge* into it; when the file is full, new misses must wait
//! for the earliest completing entry — this is what ultimately limits
//! how aggressive a prefetch burst can be.
//!
//! # Layout
//!
//! The file is stored struct-of-arrays: fixed `capacity`-sized lanes
//! (`block`, `ready`, `exclusive`, `prefetch`) indexed by slot, a dense
//! `occupied` list of live slots that drives every scan, and a `free`
//! list of reusable slots. The hot lanes (`block`, `ready`) are what
//! `lookup` and `retire_completed` walk, so a scan touches 16 bytes per
//! entry instead of a whole [`MshrEntry`]. A cached lower bound on the
//! earliest outstanding completion lets `retire_completed` — called
//! several times per core per memory-system tick — return with a single
//! compare when nothing can have completed yet.
//!
//! Mutation order is part of the simulator's bit-identity contract:
//! retirement drops slots from `occupied` in list order (so grouping
//! several cycles of lazy reclamation into one batched call, as the
//! skip-ahead kernel does, leaves the same list as per-cycle calls),
//! while explicit invalidation uses `swap_remove` exactly like the
//! historical `Vec<MshrEntry>` implementation did.

use crate::line::RfoOrigin;

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// The missing block.
    pub block: u64,
    /// Cycle at which the fill completes.
    pub ready: u64,
    /// Whether the request asked for ownership (RFO) rather than a read.
    pub exclusive: bool,
    /// Prefetch origin, if this miss was initiated by a prefetch.
    pub prefetch: Option<RfoOrigin>,
}

/// A bounded file of [`MshrEntry`]s in struct-of-arrays layout.
///
/// # Examples
///
/// ```
/// use spb_mem::mshr::MshrFile;
///
/// let mut mshrs = MshrFile::new(2);
/// assert!(mshrs.allocate(0x10, 100, true, None, 0).is_ok());
/// assert!(mshrs.lookup(0x10).is_some());
/// // Completed entries are reclaimed lazily.
/// mshrs.retire_completed(100);
/// assert!(mshrs.lookup(0x10).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// Hot lane: missing block address per slot.
    block: Vec<u64>,
    /// Hot lane: fill completion cycle per slot.
    ready: Vec<u64>,
    /// Cold lane: RFO flag per slot.
    exclusive: Vec<bool>,
    /// Cold lane: prefetch origin per slot.
    prefetch: Vec<Option<RfoOrigin>>,
    /// Live slots, in the order scans observe them.
    occupied: Vec<u16>,
    /// Reusable slots (free list).
    free: Vec<u16>,
    /// Lower bound on the earliest `ready` among live entries
    /// (`u64::MAX` when provably none can complete). Only ever stale in
    /// the safe direction: a too-small bound costs one wasted scan, so
    /// removals and deadline extensions never bother recomputing it.
    earliest_ready: u64,
    allocations: u64,
    merges: u64,
    full_events: u64,
}

impl MshrFile {
    /// Creates a file with room for `capacity` outstanding misses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        assert!(capacity <= u16::MAX as usize, "slot indices are u16");
        Self {
            capacity,
            block: vec![0; capacity],
            ready: vec![0; capacity],
            exclusive: vec![false; capacity],
            prefetch: vec![None; capacity],
            occupied: Vec::with_capacity(capacity),
            free: (0..capacity as u16).rev().collect(),
            earliest_ready: u64::MAX,
            allocations: 0,
            merges: 0,
            full_events: 0,
        }
    }

    /// Maximum number of outstanding entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of outstanding entries.
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Total allocations (for stats).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total merged (secondary) requests.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Times a request found the file full.
    pub fn full_events(&self) -> u64 {
        self.full_events
    }

    /// A sound wakeup bound for occupancy-gated work: the earliest
    /// cycle ≥ the caller's view of "now" at which retiring completed
    /// entries *could* have brought occupancy down to at most `limit`.
    /// Returns `now` when occupancy already fits, otherwise the cached
    /// earliest in-flight completion. The bound may fire early (the
    /// caller re-checks and finds the file still too full — a no-op),
    /// never late: occupancy cannot drop before the first completion.
    pub fn drained_to_at(&self, limit: usize, now: u64) -> u64 {
        if self.occupied.len() <= limit {
            now
        } else {
            self.earliest_ready
        }
    }

    /// The live slot holding `block`, if any.
    #[inline]
    fn find(&self, block: u64) -> Option<u16> {
        self.occupied
            .iter()
            .copied()
            .find(|&s| self.block[s as usize] == block)
    }

    /// Assembles the exchange-type view of one slot.
    #[inline]
    fn entry(&self, slot: u16) -> MshrEntry {
        let s = slot as usize;
        MshrEntry {
            block: self.block[s],
            ready: self.ready[s],
            exclusive: self.exclusive[s],
            prefetch: self.prefetch[s],
        }
    }

    /// Drops entries whose fills have completed by `now`.
    pub fn retire_completed(&mut self, now: u64) {
        if self.earliest_ready > now {
            return; // nothing can have completed yet
        }
        let mut earliest = u64::MAX;
        let (ready, free) = (&self.ready, &mut self.free);
        self.occupied.retain(|&s| {
            let r = ready[s as usize];
            if r > now {
                earliest = earliest.min(r);
                true
            } else {
                free.push(s);
                false
            }
        });
        self.earliest_ready = earliest;
    }

    /// Finds the outstanding entry for `block`, if any.
    pub fn lookup(&self, block: u64) -> Option<MshrEntry> {
        self.find(block).map(|s| self.entry(s))
    }

    /// All outstanding entries, in scan order (for invariant checking).
    pub fn iter(&self) -> impl Iterator<Item = MshrEntry> + '_ {
        self.occupied.iter().map(|&s| self.entry(s))
    }

    /// Removes the outstanding entry for `block`, returning it if it was
    /// present. Used when a remote invalidation kills an in-flight fill:
    /// letting the entry live would later merge a store into a line the
    /// directory no longer grants — a stale writable copy.
    pub fn invalidate_entry(&mut self, block: u64) -> Option<MshrEntry> {
        let i = self.occupied.iter().position(|&s| self.block[s as usize] == block)?;
        let slot = self.occupied.swap_remove(i);
        self.free.push(slot);
        Some(self.entry(slot))
    }

    /// Strips write permission from an in-flight entry for `block` (a
    /// remote read downgraded the grant). Returns whether an exclusive
    /// entry was actually downgraded.
    pub fn downgrade_entry(&mut self, block: u64) -> bool {
        match self.find(block) {
            Some(s) if self.exclusive[s as usize] => {
                self.exclusive[s as usize] = false;
                true
            }
            _ => false,
        }
    }

    /// Upgrades an in-flight read entry to exclusive (a store merged into
    /// a load miss); returns the entry's ready time if present.
    pub fn upgrade_to_exclusive(&mut self, block: u64) -> Option<u64> {
        let s = self.find(block)? as usize;
        self.exclusive[s] = true;
        Some(self.ready[s])
    }

    /// Folds an upgrade request into an existing in-flight entry: marks
    /// it exclusive and extends its completion to at least `ready`.
    /// Returns `false` when no entry for `block` exists (the caller
    /// allocates a fresh one). One entry per block is what the MSHR-leak
    /// invariant demands; a blind second `allocate` would duplicate.
    pub fn merge_exclusive(&mut self, block: u64, ready: u64) -> bool {
        match self.find(block) {
            Some(s) => {
                let s = s as usize;
                self.exclusive[s] = true;
                // Raising a deadline can only move the true minimum up,
                // so the cached lower bound stays valid as-is.
                self.ready[s] = self.ready[s].max(ready);
                self.merges += 1;
                true
            }
            None => false,
        }
    }

    /// Records a merged (secondary) request against an existing entry.
    pub fn record_merge(&mut self) {
        self.merges += 1;
    }

    /// Allocates an entry for `block` completing at `ready`.
    ///
    /// # Errors
    ///
    /// Returns `Err(earliest_ready)` when the file is full, where
    /// `earliest_ready` is the soonest cycle at which an entry frees up
    /// (callers retry then). Completed entries are reclaimed first.
    pub fn allocate(
        &mut self,
        block: u64,
        ready: u64,
        exclusive: bool,
        prefetch: Option<RfoOrigin>,
        now: u64,
    ) -> Result<(), u64> {
        self.retire_completed(now);
        debug_assert!(
            self.lookup(block).is_none(),
            "duplicate MSHR for block {block:#x}"
        );
        if self.occupied.len() >= self.capacity {
            self.full_events += 1;
            let earliest = self
                .occupied
                .iter()
                .map(|&s| self.ready[s as usize])
                .min()
                .expect("full file is non-empty");
            return Err(earliest);
        }
        let slot = self.free.pop().expect("free list tracks every vacancy");
        let s = slot as usize;
        self.block[s] = block;
        self.ready[s] = ready;
        self.exclusive[s] = exclusive;
        self.prefetch[s] = prefetch;
        self.occupied.push(slot);
        self.earliest_ready = self.earliest_ready.min(ready);
        self.allocations += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_lookup() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 50, true, None, 0).unwrap();
        let e = m.lookup(1).unwrap();
        assert_eq!(e.ready, 50);
        assert!(e.exclusive);
        assert_eq!(m.allocations(), 1);
    }

    #[test]
    fn full_file_reports_earliest_completion() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 100, false, None, 0).unwrap();
        m.allocate(2, 60, false, None, 0).unwrap();
        let err = m.allocate(3, 120, false, None, 10).unwrap_err();
        assert_eq!(err, 60);
        assert_eq!(m.full_events(), 1);
    }

    #[test]
    fn completed_entries_are_reclaimed_on_allocate() {
        let mut m = MshrFile::new(1);
        m.allocate(1, 10, false, None, 0).unwrap();
        // At cycle 11 the old entry has completed, so this succeeds.
        m.allocate(2, 50, false, None, 11).unwrap();
        assert_eq!(m.len(), 1);
        assert!(m.lookup(1).is_none());
    }

    #[test]
    fn upgrade_marks_exclusive_and_returns_ready() {
        let mut m = MshrFile::new(2);
        m.allocate(7, 42, false, None, 0).unwrap();
        assert_eq!(m.upgrade_to_exclusive(7), Some(42));
        assert!(m.lookup(7).unwrap().exclusive);
        assert_eq!(m.upgrade_to_exclusive(9), None);
    }

    #[test]
    fn retire_is_strict_about_boundary() {
        let mut m = MshrFile::new(2);
        m.allocate(7, 42, false, None, 0).unwrap();
        m.retire_completed(41);
        assert_eq!(m.len(), 1, "not complete before its ready cycle");
        m.retire_completed(42);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn downgrade_entry_strips_write_permission() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 50, true, None, 0).unwrap();
        assert!(m.downgrade_entry(1));
        assert!(!m.lookup(1).unwrap().exclusive);
        assert!(!m.downgrade_entry(1), "already shared");
        assert!(!m.downgrade_entry(9), "absent block");
    }

    #[test]
    fn invalidate_entry_removes_only_the_target() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 50, true, None, 0).unwrap();
        m.allocate(2, 60, false, None, 0).unwrap();
        let e = m.invalidate_entry(1).unwrap();
        assert_eq!(e.block, 1);
        assert!(m.lookup(1).is_none());
        assert!(m.lookup(2).is_some());
        assert!(m.invalidate_entry(3).is_none());
    }

    #[test]
    fn batched_retirement_matches_per_cycle_retirement() {
        // The skip-ahead kernel batches several cycles of lazy
        // reclamation into one call; the surviving scan order and the
        // free-slot reuse behaviour must match per-cycle calls.
        let build = || {
            let mut m = MshrFile::new(8);
            for (b, r) in [(1u64, 10u64), (2, 30), (3, 20), (4, 40)] {
                m.allocate(b, r, false, None, 0).unwrap();
            }
            m
        };
        let mut per_cycle = build();
        for now in 0..=35 {
            per_cycle.retire_completed(now);
        }
        let mut batched = build();
        batched.retire_completed(35);
        assert_eq!(
            per_cycle.iter().collect::<Vec<_>>(),
            batched.iter().collect::<Vec<_>>()
        );
        assert_eq!(per_cycle.len(), 1);
        // Both files now admit new entries into identical scan positions.
        per_cycle.allocate(9, 99, false, None, 36).unwrap();
        batched.allocate(9, 99, false, None, 36).unwrap();
        assert_eq!(
            per_cycle.iter().collect::<Vec<_>>(),
            batched.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn earliest_ready_cache_survives_merges_and_invalidations() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 50, false, None, 0).unwrap();
        m.allocate(2, 20, false, None, 0).unwrap();
        // Extending entry 2's deadline leaves the cached bound stale in
        // the safe (too-small) direction; retirement must still be exact.
        assert!(m.merge_exclusive(2, 80));
        m.retire_completed(50);
        assert_eq!(m.len(), 1);
        assert_eq!(m.lookup(2).unwrap().ready, 80);
        m.invalidate_entry(2).unwrap();
        assert!(m.is_empty());
        m.retire_completed(u64::MAX - 1);
        assert!(m.is_empty());
    }
}

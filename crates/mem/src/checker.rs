//! Coherence invariant checking: structured violations and the bounded
//! event log that gives them a usable diagnostic.
//!
//! The simulator used to guard its protocol with scattered
//! `debug_assert!`s: silent in release builds, and a bare panic with no
//! context in debug builds. This module promotes them into structured
//! [`InvariantViolation`] errors that carry *what* was violated, *where*
//! (block/core/cycle) and the recent coherence history of the offending
//! block, and flow up through the runner into sweep reports instead of
//! tearing the process down.
//!
//! [`crate::system::MemorySystem`] records one [`CoherenceEvent`] per
//! protocol action into a fixed-size [`EventLog`] ring (cheap: a struct
//! write, no formatting) and runs [`crate::system::MemorySystem::check_invariants`]
//! periodically. The checks are read-only — running them never changes a
//! simulated number.

use std::fmt;

/// Which invariant was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// Two cores held write permission (or a writer coexisted with a
    /// reader) for the same block.
    SingleWriter,
    /// A private cache held a stable line the directory does not track,
    /// or their permissions disagree.
    DirectoryAgreement,
    /// The directory's own records are malformed (owner out of range,
    /// empty or out-of-range sharer mask).
    DirectoryState,
    /// An MSHR file held two entries for one block, exceeded its
    /// capacity, or an entry's completion time ran away.
    MshrLeak,
    /// A cache line was reachable in a state its access path forbids.
    LineState,
    /// No core made forward progress within the watchdog's cycle budget.
    ForwardProgress,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvariantKind::SingleWriter => "single-writer",
            InvariantKind::DirectoryAgreement => "directory-agreement",
            InvariantKind::DirectoryState => "directory-state",
            InvariantKind::MshrLeak => "mshr-leak",
            InvariantKind::LineState => "line-state",
            InvariantKind::ForwardProgress => "forward-progress",
        };
        f.write_str(s)
    }
}

/// A structured invariant violation: the check that failed plus enough
/// context to debug it without re-running.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// Which invariant failed.
    pub kind: InvariantKind,
    /// The offending block, when the violation is block-scoped.
    pub block: Option<u64>,
    /// The offending core, when one is identifiable.
    pub core: Option<usize>,
    /// Simulated cycle at which the check ran.
    pub cycle: u64,
    /// Human-readable description of the inconsistent state.
    pub detail: String,
    /// Recent coherence events touching the offending block, oldest
    /// first (empty when no block is identified or the log is disabled).
    pub history: Vec<String>,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant violation [{}] at cycle {}", self.kind, self.cycle)?;
        if let Some(b) = self.block {
            write!(f, " block {b:#x}")?;
        }
        if let Some(c) = self.core {
            write!(f, " core {c}")?;
        }
        write!(f, ": {}", self.detail)?;
        if !self.history.is_empty() {
            write!(f, "\n  block history (oldest first):")?;
            for h in &self.history {
                write!(f, "\n    {h}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for InvariantViolation {}

/// One coherence-protocol action, recorded compactly (formatting is
/// deferred to dump time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceEvent {
    /// Simulated cycle of the action.
    pub cycle: u64,
    /// Block acted on.
    pub block: u64,
    /// Core performing (or suffering) the action.
    pub core: u8,
    /// What happened.
    pub kind: EventKind,
}

/// The protocol actions worth remembering for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A read fill was requested below L1.
    FillShared,
    /// An ownership fill (RFO) was requested below L1.
    FillOwned,
    /// A store performed into L1.
    StorePerformed,
    /// The line was invalidated by a remote exclusive request.
    Invalidated,
    /// The line was downgraded to shared by a remote read.
    Downgraded,
    /// The line was evicted from L1.
    EvictedL1,
    /// A store prefetch was queued at the L1 controller (MSHRs busy).
    PrefetchQueued,
    /// A store prefetch was dropped by fault injection.
    PrefetchDropped,
    /// An evicted-in-flight line was reinstated from its MSHR entry.
    Reinstated,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::FillShared => "fill(shared)",
            EventKind::FillOwned => "fill(owned)",
            EventKind::StorePerformed => "store-performed",
            EventKind::Invalidated => "invalidated",
            EventKind::Downgraded => "downgraded",
            EventKind::EvictedL1 => "evicted-l1",
            EventKind::PrefetchQueued => "prefetch-queued",
            EventKind::PrefetchDropped => "prefetch-dropped",
            EventKind::Reinstated => "reinstated",
        };
        f.write_str(s)
    }
}

/// A fixed-capacity ring of recent [`CoherenceEvent`]s.
///
/// Recording is O(1) and allocation-free after construction; the ring
/// holds the most recent `capacity` events across all blocks and is
/// filtered per block only when a violation needs its history.
///
/// # Examples
///
/// ```
/// use spb_mem::checker::{CoherenceEvent, EventKind, EventLog};
///
/// let mut log = EventLog::new(4);
/// for cycle in 0..6 {
///     log.record(CoherenceEvent { cycle, block: 7, core: 0, kind: EventKind::FillOwned });
/// }
/// let h = log.history_for(7);
/// assert_eq!(h.len(), 4, "only the newest four survive");
/// assert!(h[0].trim_start_matches("cycle").trim_start().starts_with('2'));
/// ```
#[derive(Debug, Clone)]
pub struct EventLog {
    ring: Vec<CoherenceEvent>,
    capacity: usize,
    head: usize,
}

impl EventLog {
    /// A log keeping the most recent `capacity` events (0 disables
    /// recording entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
        }
    }

    /// Whether events are being kept.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (O(1), drops the oldest when full).
    pub fn record(&mut self, ev: CoherenceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Events in recording order, oldest first.
    fn iter_ordered(&self) -> impl Iterator<Item = &CoherenceEvent> {
        self.ring[self.head..].iter().chain(self.ring[..self.head].iter())
    }

    /// Formatted history of `block`, oldest first.
    pub fn history_for(&self, block: u64) -> Vec<String> {
        self.iter_ordered()
            .filter(|e| e.block == block)
            .map(|e| format!("cycle {:>10}  core {}  {}", e.cycle, e.core, e.kind))
            .collect()
    }

    /// Clears the log (end of warm-up keeps it; this is for reuse in
    /// tests).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, block: u64) -> CoherenceEvent {
        CoherenceEvent {
            cycle,
            block,
            core: 1,
            kind: EventKind::FillOwned,
        }
    }

    #[test]
    fn ring_keeps_newest_events() {
        let mut log = EventLog::new(3);
        for c in 0..10 {
            log.record(ev(c, 5));
        }
        let h = log.history_for(5);
        assert_eq!(h.len(), 3);
        assert!(h[0].contains("cycle          7"), "oldest surviving is 7: {h:?}");
        assert!(h[2].contains("cycle          9"));
    }

    #[test]
    fn history_filters_by_block() {
        let mut log = EventLog::new(8);
        log.record(ev(1, 5));
        log.record(ev(2, 6));
        log.record(ev(3, 5));
        assert_eq!(log.history_for(5).len(), 2);
        assert_eq!(log.history_for(6).len(), 1);
        assert!(log.history_for(7).is_empty());
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut log = EventLog::new(0);
        log.record(ev(1, 5));
        assert!(!log.enabled());
        assert!(log.history_for(5).is_empty());
    }

    #[test]
    fn violation_display_carries_context() {
        let v = InvariantViolation {
            kind: InvariantKind::SingleWriter,
            block: Some(0x40),
            core: Some(2),
            cycle: 123,
            detail: "cores 1 and 2 both writable".into(),
            history: vec!["cycle 100 core 1 fill(owned)".into()],
        };
        let s = v.to_string();
        assert!(s.contains("single-writer"));
        assert!(s.contains("block 0x40"));
        assert!(s.contains("core 2"));
        assert!(s.contains("cycle 123"));
        assert!(s.contains("fill(owned)"));
    }

    #[test]
    fn clear_empties_the_ring() {
        let mut log = EventLog::new(4);
        log.record(ev(1, 5));
        log.clear();
        assert!(log.history_for(5).is_empty());
    }
}

//! Coherence invariant checking: structured violations with per-block
//! diagnostic histories.
//!
//! The simulator used to guard its protocol with scattered
//! `debug_assert!`s: silent in release builds, and a bare panic with no
//! context in debug builds. This module promotes them into structured
//! [`InvariantViolation`] errors that carry *what* was violated, *where*
//! (block/core/cycle) and the recent coherence history of the offending
//! block, and flow up through the runner into sweep reports instead of
//! tearing the process down.
//!
//! The event types and the bounded ring themselves live in [`spb_obs`]:
//! [`crate::system::MemorySystem`] emits one
//! [`Event`](spb_obs::Event) per protocol action, the checker's
//! [`EventLog`] ring is just one consumer of that stream (cheap: a
//! struct write, no formatting), and any attached
//! [`Observer`](spb_obs::Observer) sink sees the same events. The
//! checks are read-only — running them never changes a simulated number.

use std::fmt;

pub use spb_obs::{CoherenceKind, Event, EventLog};

/// Which invariant was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// Two cores held write permission (or a writer coexisted with a
    /// reader) for the same block.
    SingleWriter,
    /// A private cache held a stable line the directory does not track,
    /// or their permissions disagree.
    DirectoryAgreement,
    /// The directory's own records are malformed (owner out of range,
    /// empty or out-of-range sharer mask).
    DirectoryState,
    /// An MSHR file held two entries for one block, exceeded its
    /// capacity, or an entry's completion time ran away.
    MshrLeak,
    /// A cache line was reachable in a state its access path forbids.
    LineState,
    /// No core made forward progress within the watchdog's cycle budget.
    ForwardProgress,
    /// A block still tagged as speculatively owned (its M-state
    /// transition was caused by a wrong-path RFO) holds dirty data in the
    /// tagging core's L1 — an architectural store performed without the
    /// controller untagging the line, so squash attribution would
    /// mis-charge real work as speculative waste.
    SpeculativeLeak,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvariantKind::SingleWriter => "single-writer",
            InvariantKind::DirectoryAgreement => "directory-agreement",
            InvariantKind::DirectoryState => "directory-state",
            InvariantKind::MshrLeak => "mshr-leak",
            InvariantKind::LineState => "line-state",
            InvariantKind::ForwardProgress => "forward-progress",
            InvariantKind::SpeculativeLeak => "speculative-leak",
        };
        f.write_str(s)
    }
}

/// A structured invariant violation: the check that failed plus enough
/// context to debug it without re-running.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// Which invariant failed.
    pub kind: InvariantKind,
    /// The offending block, when the violation is block-scoped.
    pub block: Option<u64>,
    /// The offending core, when one is identifiable.
    pub core: Option<usize>,
    /// Simulated cycle at which the check ran.
    pub cycle: u64,
    /// Human-readable description of the inconsistent state.
    pub detail: String,
    /// Recent coherence events touching the offending block, oldest
    /// first (empty when no block is identified or the log is disabled).
    pub history: Vec<String>,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violation [{}] at cycle {}",
            self.kind, self.cycle
        )?;
        if let Some(b) = self.block {
            write!(f, " block {b:#x}")?;
        }
        if let Some(c) = self.core {
            write!(f, " core {c}")?;
        }
        write!(f, ": {}", self.detail)?;
        if !self.history.is_empty() {
            write!(f, "\n  block history (oldest first):")?;
            for h in &self.history {
                write!(f, "\n    {h}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for InvariantViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_carries_context() {
        let v = InvariantViolation {
            kind: InvariantKind::SingleWriter,
            block: Some(0x40),
            core: Some(2),
            cycle: 123,
            detail: "cores 1 and 2 both writable".into(),
            history: vec!["cycle 100 core 1 fill(owned)".into()],
        };
        let s = v.to_string();
        assert!(s.contains("single-writer"));
        assert!(s.contains("block 0x40"));
        assert!(s.contains("core 2"));
        assert!(s.contains("cycle 123"));
        assert!(s.contains("fill(owned)"));
    }

    #[test]
    fn reexported_ring_formats_histories_like_before() {
        let mut log = EventLog::new(4);
        log.record(Event::coherence(7, 1, 5, CoherenceKind::FillOwned));
        let h = log.history_for(5);
        assert_eq!(h.len(), 1);
        assert!(h[0].contains("cycle          7"));
        assert!(h[0].contains("fill(owned)"));
    }
}

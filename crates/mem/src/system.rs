//! The assembled memory hierarchy.
//!
//! [`MemorySystem`] wires together per-core private L1D and L2 caches, a
//! shared L3, a full-map MESI directory, a bandwidth-limited DRAM port,
//! the generic L1 prefetcher, and — central to the paper — the
//! **L1-controller prefetch-burst queue** that SPB pushes page-sized RFO
//! bursts into.
//!
//! The timing model is "fill at issue": a miss inserts its line
//! immediately with a `ready` cycle computed from the level that
//! services it (plus directory actions and DRAM queueing); accesses that
//! find a line whose `ready` is in the future are *hits under fill*,
//! which is exactly the paper's transient `IM`/`PF_IM` situation.

use crate::blockmap::BlockMap;
use crate::cache::{CacheArray, CacheGeometry, Eviction};
use crate::checker::{CoherenceKind, Event, EventLog, InvariantKind, InvariantViolation};
use crate::directory::{DirEntry, Directory};
use crate::dram::{DramConfig, DramPort};
use crate::fault::{FaultConfig, FaultPlan};
use crate::line::{CoherenceState, RfoOrigin};
use crate::mshr::MshrFile;
use crate::prefetch::{Prefetcher, PrefetcherKind};
use spb_obs::{EventKind as ObsEventKind, Observer};
use spb_stats::Histogram;
use std::collections::VecDeque;

/// An MSHR entry whose completion lies further than this beyond `now` is
/// reported as leaked/stuck by the invariant checker. Generous enough
/// that even a fault-injected DRAM spike of millions of cycles (as the
/// watchdog tests use) stays below it only when intended.
const MSHR_STUCK_HORIZON: u64 = 50_000_000;

/// Events kept per run for violation diagnostics when the checker is on.
const EVENT_LOG_CAPACITY: usize = 256;

/// How often [`MemorySystem::tick`] samples MSHR/DRAM occupancies into an
/// attached observer. Sampling is skipped entirely when no sink is
/// attached.
const OBS_SAMPLE_INTERVAL: u64 = 64;

/// Structural and timing parameters of the hierarchy (Table I defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Number of cores (1 for SPEC runs, 8 for PARSEC runs).
    pub cores: usize,
    /// L1D capacity in bytes.
    pub l1_size: u64,
    /// L1D associativity.
    pub l1_ways: usize,
    /// L1D hit latency in cycles.
    pub l1_latency: u64,
    /// Private L2 capacity in bytes.
    pub l2_size: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Shared L3 capacity in bytes.
    pub l3_size: u64,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L3 hit latency in cycles.
    pub l3_latency: u64,
    /// MSHR entries per core (per-cache in Table I).
    pub mshrs_per_core: usize,
    /// DRAM port parameters.
    pub dram: DramConfig,
    /// Generic L1 prefetcher.
    pub prefetcher: PrefetcherKind,
    /// RFO prefetches the L1 controller issues from the burst queue per
    /// cycle (SPB's drain rate).
    pub burst_issue_per_cycle: u32,
    /// Extra latency for 3-hop coherence (remote cache involvement).
    pub remote_penalty: u64,
    /// Deterministic fault injection; [`FaultConfig::none`] (the
    /// default) disables it with zero perturbation.
    pub fault: FaultConfig,
    /// Run the coherence invariant checker every this many cycles in
    /// [`MemorySystem::tick`] (0 disables periodic checking).
    pub checker_interval: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self {
            cores: 1,
            l1_size: 32 * 1024,
            l1_ways: 8,
            l1_latency: 4,
            l2_size: 1024 * 1024,
            l2_ways: 16,
            l2_latency: 14,
            l3_size: 16 * 1024 * 1024,
            l3_ways: 16,
            l3_latency: 36,
            mshrs_per_core: 64,
            dram: DramConfig::default(),
            prefetcher: PrefetcherKind::Stride,
            burst_issue_per_cycle: 4,
            remote_penalty: 40,
            fault: FaultConfig::none(),
            checker_interval: 16_384,
        }
    }
}

/// The cache level (or remote cache) that serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Serviced by the local L1D.
    L1,
    /// Serviced by the private L2.
    L2,
    /// Serviced by the shared L3.
    L3,
    /// Serviced by another core's cache (3-hop).
    Remote,
    /// Serviced by memory.
    Dram,
}

/// Outcome of a demand load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle the data is available to the core.
    pub ready: u64,
    /// Whether the access hit a ready line in L1.
    pub l1_hit: bool,
    /// Which level ultimately serviced it.
    pub level: Level,
}

/// Whether an access needs read or write permission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Want {
    /// A readable copy suffices.
    Read,
    /// Ownership (write permission) is required.
    Own,
}

/// Outcome of the head-of-SB store trying to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreDrainOutcome {
    /// The store wrote to L1 this cycle; the SB entry can be freed.
    Performed {
        /// Whether it hit a ready, writable line (vs having waited).
        l1_hit: bool,
    },
    /// The line is not writable/ready yet; retry at the given cycle.
    Retry {
        /// Earliest cycle at which retrying can succeed.
        at: u64,
    },
}

/// Outcome of a store-prefetch (RFO) request at the L1 controller,
/// mirroring the messages in the paper's Figure 4 running example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfoResponse {
    /// The block is already owned (or being fetched with ownership); the
    /// request is discarded — the paper's `PopReq`.
    Discarded,
    /// The request merged into (and upgraded) an in-flight miss.
    Merged,
    /// A new ownership request was issued — `GetX`/`GetPFx`.
    Issued,
    /// The MSHR file was full; the request waits in the L1 controller's
    /// prefetch queue and will be re-issued.
    Queued,
}

/// Aggregate counters exposed by the memory system.
///
/// Per-[`RfoOrigin`] arrays are indexed by [`RfoOrigin::index`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand loads observed.
    pub loads: u64,
    /// Loads hitting a ready L1 line.
    pub load_l1_hits: u64,
    /// Loads serviced by L2.
    pub load_l2_hits: u64,
    /// Loads serviced by L3.
    pub load_l3_hits: u64,
    /// Loads serviced by a remote cache.
    pub load_remote_hits: u64,
    /// Loads serviced by DRAM.
    pub load_dram: u64,
    /// Stores that performed (drained from an SB).
    pub stores_performed: u64,
    /// Stores that performed on their first L1 attempt.
    pub store_l1_ready_hits: u64,
    /// Store drain attempts that had to retry.
    pub store_retries: u64,
    /// Demand store misses (no line, no in-flight request).
    pub demand_store_misses: u64,
    /// RFO/prefetch requests sent by the CPU to the L1 controller.
    pub prefetch_requests: [u64; 4],
    /// Of those, requests that missed L1 and generated downstream
    /// traffic (Figure 12's MISS series).
    pub prefetch_downstream: [u64; 4],
    /// Prefetched blocks whose first demand use found them ready and
    /// owned (Figure 11 "successful").
    pub prefetch_successful: [u64; 4],
    /// Prefetched blocks demanded while still in flight ("late").
    pub prefetch_late: [u64; 4],
    /// Prefetched blocks evicted/invalidated unused but demanded later
    /// ("early").
    pub prefetch_early: [u64; 4],
    /// Prefetched blocks never demanded (finalized at end of run).
    pub prefetch_never_used: [u64; 4],
    /// Dirty evictions written back.
    pub writebacks: u64,
    /// Coherence invalidations delivered to private caches.
    pub invalidations: u64,
    /// L1 conflict/capacity misses on blocks that were recently evicted
    /// (re-reference misses — the `roms` pollution signal).
    pub l1_rereference_misses: u64,
    /// L1D tag-array checks (demand + prefetch + drain attempts).
    pub l1_tag_checks: u64,
    /// L1D accesses (loads + performed stores), for the energy model.
    pub l1_data_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// DRAM accesses (fills; write-backs counted separately).
    pub dram_accesses: u64,
    /// Injected faults: store-prefetch acks delayed.
    pub faults_ack_delayed: u64,
    /// Injected faults: DRAM fills spiked.
    pub faults_dram_spiked: u64,
    /// Injected faults: prefetches denied an MSHR entry.
    pub faults_mshr_denied: u64,
    /// Injected faults: SPB burst blocks dropped.
    pub faults_bursts_dropped: u64,
    /// Times a coherence repair path actually changed state versus the
    /// pre-repair model: a forgotten directory entry re-registered, a
    /// stale in-flight MSHR entry killed by a remote invalidation or
    /// downgraded by a remote read, or a merge-upgrade that had to
    /// invalidate remote sharers. Zero means the run was bit-identical
    /// to the un-repaired model.
    pub coherence_repairs: u64,
    /// Speculative (wrong-path) RFOs issued or merged downstream.
    pub spec_rfos_issued: u64,
    /// Of those, RFOs attributed as wasted at squash time: the squash
    /// arrived before any architectural store reached the block.
    pub spec_wasted_rfos: u64,
    /// Coherence messages (remote invalidations) caused by RFOs later
    /// attributed as wasted.
    pub spec_wasted_coh_msgs: u64,
    /// Blocks a squashed speculative burst left in M/E state without any
    /// architectural store ever reaching them — the leak the ret2spec /
    /// speculative-buffer-overflow footprint is made of.
    pub spec_leaked_m_blocks: u64,
    /// DRAM fills caused by RFOs later attributed as wasted.
    pub spec_wasted_dram: u64,
    /// Squash episodes attributed to this memory system.
    pub spec_squashes: u64,
    /// Speculative burst-queue entries dropped at squash time before
    /// they could issue (queued behind a full MSHR file).
    pub spec_dropped: u64,
}

impl MemStats {
    /// Total prefetch requests across all origins.
    pub fn total_prefetch_requests(&self) -> u64 {
        self.prefetch_requests.iter().sum()
    }

    /// Interconnect coherence traffic: messages the run put on the
    /// network beyond private-cache hits — prefetch misses that went
    /// downstream (Figure 12's MISS series), dirty write-backs,
    /// invalidations delivered to other caches, and remote-cache load
    /// transfers. This is the traffic objective `spbsim tune` minimizes
    /// alongside cycles and energy: an over-aggressive burst policy
    /// shows up here before it shows up in cycles.
    pub fn coherence_traffic(&self) -> u64 {
        self.prefetch_downstream.iter().sum::<u64>()
            + self.writebacks
            + self.invalidations
            + self.load_remote_hits
    }

    /// Success rate of store prefetches for `origin` over all issued.
    pub fn success_rate(&self, origin: RfoOrigin) -> f64 {
        let i = origin.index();
        let issued = self.prefetch_requests[i];
        if issued == 0 {
            0.0
        } else {
            self.prefetch_successful[i] as f64 / issued as f64
        }
    }
}

/// Per-block record of speculation-caused ownership: which core's
/// wrong-path RFO turned the block M/E, and the downstream traffic it
/// cost. Drained into the `spec_*` waste counters at squash time;
/// removed the moment an architectural store performs to the block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SpecTag {
    core: u8,
    rfos: u32,
    coh: u32,
    dram: u32,
}

struct CoreMem {
    l1: CacheArray,
    l2: CacheArray,
    mshr: MshrFile,
    prefetcher: Prefetcher,
    /// `(block, origin, speculative)`: speculative entries are dropped
    /// (and counted) if the squash arrives before they issue.
    burst_queue: VecDeque<(u64, RfoOrigin, bool)>,
    /// Latest completion time among outstanding demand misses.
    demand_miss_until: u64,
}

/// The assembled memory hierarchy. See the [module docs](self).
pub struct MemorySystem {
    config: MemoryConfig,
    cores: Vec<CoreMem>,
    l3: CacheArray,
    directory: Directory,
    dram: DramPort,
    /// Blocks brought by a prefetch and evicted unused; a later demand
    /// makes the prefetch "early", otherwise it ends "never used".
    /// A [`BlockMap`] because the hot L1 miss path probes it per miss.
    evicted_unused: BlockMap<RfoOrigin>,
    /// Recently evicted (any) L1 blocks, for re-reference miss counting.
    /// Probed per L1 miss and written per eviction, hence a [`BlockMap`].
    recently_evicted_l1: BlockMap<u64>,
    /// Distribution of SPB burst lengths (blocks per enqueued burst).
    burst_lengths: Histogram,
    stats: MemStats,
    fault: FaultPlan,
    events: EventLog,
    obs: Observer,
    pending_violation: Option<InvariantViolation>,
    /// Blocks awaiting (re-)verification by the incremental invariant
    /// checker: every block from the cache/directory mutation logs lands
    /// here, and blocks whose fill is still in flight at a checking
    /// boundary stay queued until they stabilise. Insertion-ordered.
    checker_pending: Vec<u64>,
    /// Membership set for `checker_pending` (dedup on enqueue).
    checker_pending_set: BlockMap<u8>,
    /// Next invariant-checker boundary, maintained by [`MemorySystem::tick`]
    /// so [`MemorySystem::wake_at`] is a plain field read (`u64::MAX`
    /// when the checker is disabled).
    next_check_at: u64,
    /// Next observer occupancy-sample boundary (relevant only while a
    /// sink is attached).
    next_obs_at: u64,
    /// Blocks whose M/E transition was caused by a speculative
    /// (wrong-path) RFO and that no architectural store has reached yet.
    /// Empty for every run without a squash model (the hot-path guard).
    spec_tags: BlockMap<SpecTag>,
    /// Whether the current [`MemorySystem::store_prefetch`] call is on
    /// behalf of a wrong-path store (set only by
    /// [`MemorySystem::store_prefetch_spec`]); routes a Queued retry
    /// back through the speculative path.
    spec_ctx: bool,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("cores", &self.cores.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl MemorySystem {
    /// Builds an empty hierarchy from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores` is zero or exceeds
    /// [`crate::directory::MAX_CORES`], or if a cache geometry is invalid.
    pub fn new(config: MemoryConfig) -> Self {
        // With the checker enabled, private caches and the directory log
        // which blocks they mutate so each boundary check re-verifies
        // only those (see `check_invariants`). Disabled checker → no
        // drain point, so leave the logs off rather than grow forever.
        let audited = config.checker_interval > 0;
        let cores = (0..config.cores)
            .map(|_| CoreMem {
                l1: CacheArray::new(CacheGeometry::new(config.l1_size, config.l1_ways)),
                l2: CacheArray::new(CacheGeometry::new(config.l2_size, config.l2_ways)),
                mshr: MshrFile::new(config.mshrs_per_core),
                prefetcher: Prefetcher::new(config.prefetcher),
                burst_queue: VecDeque::new(),
                demand_miss_until: 0,
            })
            .map(|mut c| {
                if audited {
                    c.l1.enable_mutation_log();
                    c.l2.enable_mutation_log();
                }
                c
            })
            .collect();
        let mut directory = Directory::new(config.cores);
        if audited {
            directory.enable_mutation_log();
        }
        Self {
            l3: CacheArray::new(CacheGeometry::new(config.l3_size, config.l3_ways)),
            directory,
            dram: DramPort::new(config.dram),
            cores,
            evicted_unused: BlockMap::new(),
            recently_evicted_l1: BlockMap::new(),
            burst_lengths: Histogram::new("burst_len_blocks", 8, 9),
            stats: MemStats::default(),
            fault: FaultPlan::new(config.fault),
            events: EventLog::new(if config.checker_interval > 0 {
                EVENT_LOG_CAPACITY
            } else {
                0
            }),
            obs: Observer::off(),
            pending_violation: None,
            checker_pending: Vec::new(),
            checker_pending_set: BlockMap::new(),
            next_check_at: if config.checker_interval > 0 {
                0
            } else {
                u64::MAX
            },
            next_obs_at: 0,
            spec_tags: BlockMap::new(),
            spec_ctx: false,
            config,
        }
    }

    /// Attaches an observability sink. Events are a pure read of
    /// simulator state, so attaching one never changes a simulated
    /// number.
    pub fn set_observer(&mut self, obs: Observer) {
        self.obs = obs;
    }

    /// Records a coherence-protocol action into the checker's ring and
    /// mirrors it to any attached observer.
    fn coh(&mut self, now: u64, core: u8, block: u64, kind: CoherenceKind) {
        let ev = Event::coherence(now, core, block, kind);
        self.events.record(ev);
        self.obs.emit(|| ev);
    }

    /// [`MshrFile::allocate`] plus an `MshrAlloc` event on success.
    fn alloc_mshr(
        &mut self,
        core: usize,
        block: u64,
        ready: u64,
        exclusive: bool,
        prefetch: Option<RfoOrigin>,
        now: u64,
    ) -> Result<(), u64> {
        let r = self.cores[core]
            .mshr
            .allocate(block, ready, exclusive, prefetch, now);
        if r.is_ok() {
            let occupancy = self.cores[core].mshr.len() as u32;
            self.obs.emit(|| Event {
                cycle: now,
                core: core as u8,
                kind: ObsEventKind::MshrAlloc { block, occupancy },
            });
        }
        r
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Read access to the counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Whether `core` has a demand L1D miss outstanding at `now`.
    pub fn has_pending_demand_miss(&self, core: usize, now: u64) -> bool {
        self.cores[core].demand_miss_until > now
    }

    /// The cycle until which `core`'s current demand L1D miss is
    /// outstanding (0 if none was ever recorded). Used by the
    /// skip-ahead kernel to replay the per-cycle
    /// [`MemorySystem::has_pending_demand_miss`] check over a span in
    /// which no memory activity occurs.
    pub fn demand_miss_until(&self, core: usize) -> u64 {
        self.cores[core].demand_miss_until
    }

    /// Number of blocks waiting in `core`'s SPB burst queue.
    pub fn burst_queue_len(&self, core: usize) -> usize {
        self.cores[core].burst_queue.len()
    }

    /// Probes whether [`MemorySystem::tick`] has same-cycle work at
    /// `now`, and if not, the next cycle at which it will (the
    /// skip-ahead kernel's memory horizon).
    ///
    /// Returns `Some(now)` when a tick at `now` would do real work: an
    /// SPB burst queue has blocks to issue, `now` is an invariant-
    /// checker boundary, or an observer is attached and `now` is an
    /// occupancy-sample boundary. Otherwise returns the earliest future
    /// checker/sample boundary, or `None` when neither recurs (checker
    /// disabled and no observer). All other memory-system activity —
    /// fills, drains, DRAM returns, fault draws — happens inside core-
    /// initiated calls and is covered by the per-core horizons; fault
    /// draws are keyed by per-site event counts, never by `now`, so a
    /// skipped span leaves every fault stream untouched.
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        if self.cores.iter().any(|c| !c.burst_queue.is_empty()) {
            return Some(now);
        }
        let interval = self.config.checker_interval;
        let obs_on = self.obs.enabled();
        if (interval > 0 && now.is_multiple_of(interval))
            || (obs_on && now.is_multiple_of(OBS_SAMPLE_INTERVAL))
        {
            return Some(now);
        }
        let mut next: Option<u64> = None;
        if let Some(q) = now.checked_div(interval) {
            next = Some((q + 1) * interval);
        }
        if obs_on {
            let b = (now / OBS_SAMPLE_INTERVAL + 1) * OBS_SAMPLE_INTERVAL;
            next = Some(next.map_or(b, |n| n.min(b)));
        }
        next
    }

    /// The next cycle at which [`MemorySystem::tick`] has observable
    /// work, or `u64::MAX` if it never will — the `wheel` kernel's
    /// memory wakeup (DESIGN.md §12).
    ///
    /// Unlike [`MemorySystem::next_event_at`] this is push-based: the
    /// checker/observer boundaries are cached fields `tick` advances as
    /// it crosses them, and a capacity-blocked burst queue contributes
    /// the earliest in-flight MSHR completion (a cached lower bound)
    /// instead of forcing a tick every cycle. Every contribution may
    /// fire early (the tick finds no work — a no-op) but never late, so
    /// ticking exactly at the returned cycles is bit-identical to
    /// ticking every cycle.
    pub fn wake_at(&self, now: u64) -> u64 {
        let mut wake = self.next_check_at;
        if self.obs.enabled() {
            wake = wake.min(self.next_obs_at);
        }
        for c in &self.cores {
            if !c.burst_queue.is_empty() {
                // The drain loop pops only while `len + 4 < capacity`;
                // until occupancy can have dropped to that headroom a
                // tick cannot issue anything.
                // A ≤4-entry file can never take burst traffic.
                if let Some(limit) = c.mshr.capacity().checked_sub(5) {
                    wake = wake.min(c.mshr.drained_to_at(limit, now));
                }
            }
        }
        wake
    }

    /// Distribution of SPB burst lengths observed at the L1 controller.
    pub fn burst_lengths(&self) -> &Histogram {
        &self.burst_lengths
    }

    /// Clears all counters (end of warm-up) without touching cache or
    /// timing state.
    pub fn reset_stats(&mut self) {
        self.burst_lengths.reset();
        self.stats = MemStats::default();
        for c in &mut self.cores {
            c.l1.reset_tag_checks();
            c.l2.reset_tag_checks();
        }
        self.l3.reset_tag_checks();
        self.dram.reset_counters();
        self.evicted_unused.clear();
        self.fault.reset_counts();
    }

    /// Takes the first invariant violation detected since the last call,
    /// if any. The runner polls this and aborts the run with a
    /// structured error instead of silently simulating nonsense.
    pub fn take_violation(&mut self) -> Option<InvariantViolation> {
        self.pending_violation.take()
    }

    /// Test-only protocol mutation: makes the directory forget the owner
    /// of one stable, writable L1 line — the "lost owner" class of
    /// coherence bug (a dropped invalidation ack in a real protocol).
    /// Returns the corrupted block, or `None` if no core currently holds
    /// a stable owned line. `spb-verify` uses this to demonstrate that
    /// the invariant checker and the interleaving fuzzer actually catch
    /// seeded protocol bugs; it must never be called outside tests.
    #[doc(hidden)]
    pub fn seed_lost_owner_mutation(&mut self, now: u64) -> Option<u64> {
        let mut found: Option<(u8, u64)> = None;
        for (i, c) in self.cores.iter().enumerate() {
            if let Some(line) = c.l1.iter_valid().find(|l| {
                l.ready <= now
                    && l.state.writable()
                    && self.directory.entry(l.block) == Some(DirEntry::Owned { owner: i as u8 })
            }) {
                found = Some((i as u8, line.block));
                break;
            }
        }
        let (owner, block) = found?;
        self.directory.evicted(owner, block);
        Some(block)
    }

    fn violation(
        &self,
        kind: InvariantKind,
        block: Option<u64>,
        core: Option<usize>,
        cycle: u64,
        detail: String,
    ) -> InvariantViolation {
        InvariantViolation {
            kind,
            block,
            core,
            cycle,
            detail,
            history: block
                .map(|b| self.events.history_for(b))
                .unwrap_or_default(),
        }
    }

    fn flag_violation(
        &mut self,
        kind: InvariantKind,
        block: Option<u64>,
        core: Option<usize>,
        cycle: u64,
        detail: String,
    ) {
        if self.pending_violation.is_none() {
            self.pending_violation = Some(self.violation(kind, block, core, cycle, detail));
        }
    }

    /// Runs the coherence invariant checks, read-only on simulated state:
    /// calling this never changes a simulated number (it does consume the
    /// checker's own mutation-log bookkeeping).
    ///
    /// Checks, in order:
    /// 1. the directory's own records are well formed;
    /// 2. no MSHR file leaks: no duplicate entries, length within
    ///    capacity, no entry stuck beyond [`MSHR_STUCK_HORIZON`];
    /// 3. every *stable* line (fill complete by `now`) in a private L1 or
    ///    L2 agrees with the directory: writable lines (M/E) must be
    ///    tracked as `Owned` by this core, readable lines must be tracked
    ///    at all. Because `Owned` is exclusive by construction, pairwise
    ///    agreement implies the single-writer / multiple-reader invariant
    ///    across cores.
    ///
    /// Lines still in flight (`ready > now` — the paper's `IM`/`PF_IM`
    /// transients) are exempt from check 3: their final state is decided
    /// by the directory grant already recorded.
    ///
    /// Check 3 runs **incrementally**: every lane write that could change
    /// its verdict funnels through a handful of `CacheArray`/`Directory`
    /// methods, which log the affected block. A boundary check re-verifies
    /// exactly the blocks mutated since the previous one (plus any whose
    /// fill was still in flight then). A line untouched since it last
    /// passed — same `(block, state, ready)`, same directory entry —
    /// would pass again, so skipping it loses nothing, and a sweep over
    /// tens of thousands of valid lines becomes a walk over the tens of
    /// blocks that actually changed. `check_invariants_thorough` keeps
    /// the full sweep and cross-audits this bookkeeping once per run,
    /// and a disabled checker (`checker_interval == 0`, logs off) falls
    /// back to the full sweep too.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_invariants(&mut self, now: u64) -> Result<(), InvariantViolation> {
        self.check_directory_and_mshrs(now)?;
        self.check_spec_tags(now)?;
        if self.config.checker_interval > 0 {
            self.check_mutated_lines(now)
        } else {
            self.check_lines_full(now)
        }
    }

    /// Check 4, speculative-tag hygiene: a block still tagged as
    /// speculatively owned must not hold dirty data in the tagging core's
    /// L1. Dirty data means an architectural store performed, and the
    /// performing path untags the line; a dirty-and-tagged line is a
    /// controller that forgot the untag, which would mis-charge committed
    /// work as speculative waste at the next squash. O(tags), and tags
    /// only exist while a wrong-path episode is in flight, so this is
    /// free for every non-speculative configuration.
    fn check_spec_tags(&self, now: u64) -> Result<(), InvariantViolation> {
        if self.spec_tags.is_empty() {
            return Ok(());
        }
        for (block, tag) in self.spec_tags.iter() {
            let core = tag.core as usize;
            if let Some(line) = self.cores[core].l1.peek(block) {
                if line.dirty && line.ready <= now {
                    return Err(self.violation(
                        InvariantKind::SpeculativeLeak,
                        Some(block),
                        Some(core),
                        now,
                        format!(
                            "block is tagged speculative ({} wrong-path RFOs) \
                             but holds dirty data in the tagging core's L1",
                            tag.rfos
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Test-only protocol mutation: marks one speculatively tagged line
    /// dirty in its tagging core's L1 *without* clearing the tag — the
    /// end state of a controller that performs an architectural store but
    /// forgets to untag the line. Returns the corrupted block, or `None`
    /// if no tagged line is currently resident. `spb-verify` uses this as
    /// the negative control proving [`InvariantKind::SpeculativeLeak`] is
    /// actually checked; it must never be called outside tests.
    #[doc(hidden)]
    pub fn seed_forget_untag_mutation(&mut self, now: u64) -> Option<u64> {
        let mut found: Option<(usize, u64)> = None;
        for (block, tag) in self.spec_tags.iter() {
            let core = tag.core as usize;
            if let Some(line) = self.cores[core].l1.peek(block) {
                if line.ready <= now && !line.dirty {
                    found = Some((core, block));
                    break;
                }
            }
        }
        let (core, block) = found?;
        if let Some(mut l) = self.cores[core].l1.lookup(block) {
            l.set_dirty(true);
        }
        Some(block)
    }

    /// Checks 1 and 2 of [`MemorySystem::check_invariants`]: directory
    /// well-formedness (O(1) healthy) and the MSHR-leak sweep (bounded by
    /// the MSHR file's capacity).
    fn check_directory_and_mshrs(&self, now: u64) -> Result<(), InvariantViolation> {
        if let Some((block, why)) = self.directory.find_malformed() {
            return Err(self.violation(InvariantKind::DirectoryState, Some(block), None, now, why));
        }
        for (i, c) in self.cores.iter().enumerate() {
            if c.mshr.len() > c.mshr.capacity() {
                return Err(self.violation(
                    InvariantKind::MshrLeak,
                    None,
                    Some(i),
                    now,
                    format!(
                        "{} entries exceed capacity {}",
                        c.mshr.len(),
                        c.mshr.capacity()
                    ),
                ));
            }
            for (j, e) in c.mshr.iter().enumerate() {
                if e.ready > now.saturating_add(MSHR_STUCK_HORIZON) {
                    return Err(self.violation(
                        InvariantKind::MshrLeak,
                        Some(e.block),
                        Some(i),
                        now,
                        format!(
                            "entry completes at {}, >{MSHR_STUCK_HORIZON} cycles out",
                            e.ready
                        ),
                    ));
                }
                if c.mshr.iter().take(j).any(|p| p.block == e.block) {
                    return Err(self.violation(
                        InvariantKind::MshrLeak,
                        Some(e.block),
                        Some(i),
                        now,
                        "duplicate MSHR entries for one block".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Check 3, line/directory agreement, for one stable line.
    fn line_agrees(
        &self,
        core: usize,
        block: u64,
        state: CoherenceState,
        now: u64,
    ) -> Result<(), InvariantViolation> {
        if state.writable() {
            if self.directory.entry(block) != Some(DirEntry::Owned { owner: core as u8 }) {
                return Err(self.violation(
                    InvariantKind::SingleWriter,
                    Some(block),
                    Some(core),
                    now,
                    format!(
                        "core holds a stable {} copy but the directory says {:?}",
                        state,
                        self.directory.entry(block)
                    ),
                ));
            }
        } else if !self.directory.tracks(core as u8, block) {
            return Err(self.violation(
                InvariantKind::DirectoryAgreement,
                Some(block),
                Some(core),
                now,
                format!(
                    "core holds a stable {} copy the directory does not track ({:?})",
                    state,
                    self.directory.entry(block)
                ),
            ));
        }
        Ok(())
    }

    /// Incremental check 3: drains the cache/directory mutation logs into
    /// the pending queue, then re-verifies exactly those blocks. Blocks
    /// with a line still in flight stay queued for the next boundary.
    fn check_mutated_lines(&mut self, now: u64) -> Result<(), InvariantViolation> {
        {
            let pending = &mut self.checker_pending;
            let member = &mut self.checker_pending_set;
            let mut add = |b: u64| {
                if member.insert(b, 0).is_none() {
                    pending.push(b);
                }
            };
            for &b in self.directory.mutation_log() {
                add(b);
            }
            for c in &self.cores {
                for &b in c.l1.mutation_log() {
                    add(b);
                }
                for &b in c.l2.mutation_log() {
                    add(b);
                }
            }
        }
        self.directory.clear_mutation_log();
        for c in &mut self.cores {
            c.l1.clear_mutation_log();
            c.l2.clear_mutation_log();
        }
        let mut kept = 0;
        for i in 0..self.checker_pending.len() {
            let block = self.checker_pending[i];
            let mut transient = false;
            for ci in 0..self.cores.len() {
                let c = &self.cores[ci];
                for line in [c.l1.peek(block), c.l2.peek(block)].into_iter().flatten() {
                    if line.ready > now {
                        transient = true;
                        continue;
                    }
                    self.line_agrees(ci, block, line.state, now)?;
                }
            }
            if transient {
                self.checker_pending[kept] = block;
                kept += 1;
            } else {
                self.checker_pending_set.remove(block);
            }
        }
        self.checker_pending.truncate(kept);
        Ok(())
    }

    /// Full-sweep check 3 over every valid private line — the reference
    /// the incremental check is audited against (`check_invariants_thorough`
    /// runs it once per run), and the fallback when mutation logging is
    /// off.
    fn check_lines_full(&self, now: u64) -> Result<(), InvariantViolation> {
        for (i, c) in self.cores.iter().enumerate() {
            // The sweep's directory probes are independent random reads
            // of a large table; issued one per loop iteration they each
            // stall the host pipeline on a cache miss. Buffering a chunk
            // of lines and warming every probe target first overlaps
            // those misses (memory-level parallelism) without changing
            // which line is checked first — chunks are scanned in sweep
            // order and checked in sweep order within the chunk.
            const CHUNK: usize = 64;
            let mut chunk = [(0u64, CoherenceState::Invalid, 0u64); CHUNK];
            let mut lines = c.l1.iter_valid_meta().chain(c.l2.iter_valid_meta());
            loop {
                let mut n = 0;
                for e in lines.by_ref().take(CHUNK) {
                    chunk[n] = e;
                    n += 1;
                }
                if n == 0 {
                    break;
                }
                for &(block, _, ready) in &chunk[..n] {
                    if ready <= now {
                        self.directory.warm(block);
                    }
                }
                for &(block, state, ready) in &chunk[..n] {
                    if ready > now {
                        continue; // transient IM/PF_IM: grant already recorded
                    }
                    self.line_agrees(i, block, state, now)?;
                }
            }
        }
        Ok(())
    }

    /// [`MemorySystem::check_invariants`] with the **full** line sweep
    /// (not the incremental one — this pass also audits the incremental
    /// checker's mutation-log bookkeeping against ground truth), plus the
    /// expensive inverse direction: every directory claim must be backed
    /// by a private-cache line or an in-flight MSHR entry. Intended once
    /// per run (the runner calls it after the measured region).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_invariants_thorough(&self, now: u64) -> Result<(), InvariantViolation> {
        self.check_directory_and_mshrs(now)?;
        self.check_spec_tags(now)?;
        self.check_lines_full(now)?;
        for (block, entry) in self.directory.iter_entries() {
            let holds = |core: usize| {
                self.cores[core].l1.peek(block).is_some()
                    || self.cores[core].l2.peek(block).is_some()
                    || self.cores[core]
                        .mshr
                        .iter()
                        .any(|e| e.block == block && e.ready > now)
            };
            let missing: Option<usize> = match entry {
                DirEntry::Owned { owner } => (!holds(owner as usize)).then_some(owner as usize),
                DirEntry::Shared { sharers } => {
                    (0..self.cores.len()).find(|&c| sharers & (1 << c) != 0 && !holds(c))
                }
            };
            if let Some(core) = missing {
                return Err(self.violation(
                    InvariantKind::DirectoryAgreement,
                    Some(block),
                    Some(core),
                    now,
                    format!(
                        "directory says {entry:?} but the core holds no copy or in-flight entry"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// A human-readable dump of per-core controller state, for the
    /// forward-progress watchdog: what is outstanding, how full the
    /// MSHRs are, and the event history of the most-stuck block.
    pub fn diagnostic_snapshot(&self, now: u64) -> String {
        use std::fmt::Write as _;
        let mut s = format!("memory-system snapshot at cycle {now}:\n");
        for (i, c) in self.cores.iter().enumerate() {
            let max_ready = c.mshr.iter().map(|e| e.ready).max();
            let _ = writeln!(
                s,
                "  core {i}: mshr {}/{} (latest completion {max_ready:?}), \
                 burst queue {}, demand miss until {}",
                c.mshr.len(),
                c.mshr.capacity(),
                c.burst_queue.len(),
                c.demand_miss_until,
            );
        }
        let _ = writeln!(s, "  {}", self.directory);
        if let Some(e) = self
            .cores
            .iter()
            .flat_map(|c| c.mshr.iter())
            .max_by_key(|e| e.ready)
        {
            let _ = writeln!(
                s,
                "  most-stuck block {:#x} (ready at {}):",
                e.block, e.ready
            );
            for h in self.events.history_for(e.block) {
                let _ = writeln!(s, "    {h}");
            }
        }
        s
    }

    /// Folds "never used" prefetches into the stats: blocks still sitting
    /// unused in caches plus evicted-unused blocks that were never
    /// re-demanded. Call once at the end of a measured run.
    pub fn finalize_stats(&mut self) {
        let stats = &mut self.stats;
        for (_, origin) in self.evicted_unused.iter() {
            stats.prefetch_never_used[origin.index()] += 1;
        }
        self.evicted_unused.clear();
        for core in &self.cores {
            for line in core.l1.iter_valid() {
                if let Some(origin) = line.prefetch {
                    if !line.used {
                        self.stats.prefetch_never_used[origin.index()] += 1;
                    }
                }
            }
        }
        // Mirror tag checks into the snapshot.
        self.stats.l1_tag_checks = self.cores.iter().map(|c| c.l1.tag_checks()).sum();
    }

    // -- internal helpers ---------------------------------------------------

    /// Applies a remote invalidation of `block` to each victim core:
    /// kills its L1/L2 copies *and any in-flight MSHR entry* for the
    /// block. Without the MSHR kill, a later store merging into the
    /// stale entry would resurrect a writable copy the directory no
    /// longer grants — a two-writer hazard. Returns whether any victim
    /// copy was dirty.
    fn apply_invalidations(&mut self, victims: &[u8], block: u64, now: u64) -> bool {
        let mut dirty = false;
        for &victim in victims {
            let v = victim as usize;
            self.stats.invalidations += 1;
            self.coh(now, victim, block, CoherenceKind::Invalidated);
            // Retire the victim's completed fills before the kill: the
            // wheel kernel elides no-op ticks, so this is where a
            // completed-but-unretired entry would otherwise be mistaken
            // for an in-flight one (under the other kernels the same
            // cycle's tick has already retired it — a no-op here).
            self.cores[v].mshr.retire_completed(now);
            if let Some(old) = self.cores[v].l1.invalidate(block) {
                dirty |= old.dirty;
                if let Some(origin) = old.prefetch.filter(|_| !old.used) {
                    self.evicted_unused.insert(block, origin);
                }
            }
            if let Some(old) = self.cores[v].l2.invalidate(block) {
                dirty |= old.dirty;
            }
            if self.cores[v].mshr.invalidate_entry(block).is_some() {
                self.stats.coherence_repairs += 1;
            }
        }
        dirty
    }

    /// A store just merged into `core`'s in-flight read request for
    /// `block` and upgraded it to exclusive. Becoming a writer must
    /// still go through the home node: the original read may have left
    /// other sharers in place, and the directory may have forgotten this
    /// core entirely if both private copies were evicted mid-flight.
    /// Charges no extra latency — the fill is already outstanding and
    /// the directory action rides along with the upgrade message.
    fn upgrade_merged_entry(&mut self, core: usize, block: u64, now: u64) {
        let already_owner =
            self.directory.entry(block) == Some(DirEntry::Owned { owner: core as u8 });
        let actions = self.directory.request_exclusive(core as u8, block);
        if !already_owner {
            self.stats.coherence_repairs += 1;
            self.coh(now, core as u8, block, CoherenceKind::Reinstated);
        }
        if self.apply_invalidations(&actions.invalidate, block, now) {
            if let Some(mut l3line) = self.l3.lookup(block) {
                l3line.set_dirty(true);
            }
        }
    }

    fn handle_l1_eviction(&mut self, core: usize, ev: Eviction, now: u64) {
        self.coh(now, core as u8, ev.block, CoherenceKind::EvictedL1);
        if let Some(origin) = ev.unused_prefetch {
            self.evicted_unused.insert(ev.block, origin);
        }
        self.recently_evicted_l1.insert(ev.block, now);
        if self.recently_evicted_l1.len() > 1 << 16 {
            // Bound the map: forget ancient evictions.
            let horizon = now.saturating_sub(200_000);
            self.recently_evicted_l1.retain(|_, t| *t >= horizon);
        }
        if ev.dirty {
            // Write back into L2 (present by inclusion in the common
            // case; otherwise push further down).
            if let Some(mut l2line) = self.cores[core].l2.lookup(ev.block) {
                l2line.set_dirty(true);
                return;
            }
            self.push_writeback_below_l2(core, ev.block, now);
        }
        // If the block is gone from both private levels, tell the home.
        if self.cores[core].l2.peek(ev.block).is_none() {
            self.directory.evicted(core as u8, ev.block);
        }
    }

    fn handle_l2_eviction(&mut self, core: usize, ev: Eviction, now: u64) {
        // Inclusive-ish bookkeeping: L1 may still hold it; only notify
        // the directory when neither level has it.
        if ev.dirty {
            self.push_writeback_below_l2(core, ev.block, now);
        }
        if self.cores[core].l1.peek(ev.block).is_none() {
            self.directory.evicted(core as u8, ev.block);
        }
    }

    fn push_writeback_below_l2(&mut self, _core: usize, block: u64, now: u64) {
        self.stats.writebacks += 1;
        if let Some(mut l3line) = self.l3.lookup(block) {
            l3line.set_dirty(true);
        } else {
            self.dram.writeback(now, block);
        }
    }

    fn handle_l3_eviction(&mut self, ev: Eviction, now: u64) {
        if ev.dirty {
            self.stats.writebacks += 1;
            self.dram.writeback(now, ev.block);
        }
    }

    /// Services a miss below L1: L2 → directory/L3 → DRAM.
    ///
    /// Returns `(ready, level)` and fills L2 (and L3) as needed. Does
    /// *not* touch L1 — callers insert the L1 line so they can set the
    /// right state and prefetch origin.
    fn fill_below_l1(
        &mut self,
        core: usize,
        block: u64,
        now: u64,
        want: Want,
        prefetch: Option<RfoOrigin>,
    ) -> (u64, Level) {
        let exclusive = want == Want::Own;
        self.stats.l2_accesses += 1;
        self.coh(
            now,
            core as u8,
            block,
            if exclusive {
                CoherenceKind::FillOwned
            } else {
                CoherenceKind::FillShared
            },
        );

        // L2 hit with sufficient permission.
        let l2_state = self.cores[core]
            .l2
            .lookup(block)
            .map(|l| (l.state(), l.ready()));
        if let Some((state, line_ready)) = l2_state {
            if !exclusive || state.writable() {
                let ready = line_ready.max(now) + self.config.l2_latency;
                self.cores[core].l2.touch(block);
                if exclusive {
                    if let Some(mut l) = self.cores[core].l2.lookup(block) {
                        l.set_state(CoherenceState::Modified);
                    }
                }
                return (ready, Level::L2);
            }
        }

        // Home node: directory + L3.
        self.stats.l3_accesses += 1;
        let actions = if exclusive {
            self.directory.request_exclusive(core as u8, block)
        } else {
            self.directory.request_shared(core as u8, block)
        };
        let mut remote = 0u64;
        let mut remote_dirty = self.apply_invalidations(&actions.invalidate, block, now);
        if !actions.invalidate.is_empty() {
            remote = self.config.remote_penalty;
        }
        if let Some(owner) = actions.downgrade {
            let o = owner as usize;
            remote = self.config.remote_penalty;
            self.coh(now, owner, block, CoherenceKind::Downgraded);
            if let Some(d) = self.cores[o].l1.downgrade(block) {
                remote_dirty |= d;
            }
            if let Some(d) = self.cores[o].l2.downgrade(block) {
                remote_dirty |= d;
            }
            // A read-downgrade must also strip write permission from the
            // owner's in-flight request, or a later store merge would
            // resurrect it without consulting the directory. Retire the
            // owner's completed fills first so a stale completed entry
            // is never counted as a repaired in-flight one (matches the
            // per-cycle tick the wheel kernel elides).
            self.cores[o].mshr.retire_completed(now);
            if self.cores[o].mshr.downgrade_entry(block) {
                self.stats.coherence_repairs += 1;
            }
        }

        // Upgrade-in-place: L2 had the data in S; the directory round
        // trip is the cost, no data fetch needed.
        if let Some((state, _)) = l2_state {
            if !exclusive || state.writable() {
                self.flag_violation(
                    InvariantKind::LineState,
                    Some(block),
                    Some(core),
                    now,
                    format!(
                        "upgrade-in-place reached with exclusive={exclusive}, L2 state {state}"
                    ),
                );
            }
            let ready = now + self.config.l3_latency + remote;
            if let Some(mut l) = self.cores[core].l2.lookup(block) {
                l.set_state(CoherenceState::Modified);
                l.set_ready(ready);
            }
            self.cores[core].l2.touch(block);
            return (ready, if remote > 0 { Level::Remote } else { Level::L3 });
        }

        let grant_state = if exclusive {
            CoherenceState::Modified
        } else {
            match self.directory.entry(block) {
                Some(crate::directory::DirEntry::Shared { .. }) => CoherenceState::Shared,
                _ => CoherenceState::Exclusive,
            }
        };

        let (mut ready, mut level) = if let Some(mut l3line) = self.l3.lookup(block) {
            let r = l3line.ready().max(now) + self.config.l3_latency;
            if remote_dirty {
                l3line.set_dirty(true);
            }
            self.l3.touch(block);
            (r, Level::L3)
        } else {
            // Miss in L3: fetch from memory and fill L3.
            self.stats.dram_accesses += 1;
            let mut r = self.dram.access(now + self.config.l3_latency, block);
            if let Some(extra) = self.fault.dram_spike() {
                r += extra;
                self.stats.faults_dram_spiked += 1;
            }
            if let Some(ev) = self.l3.insert(block, CoherenceState::Exclusive, r, None) {
                self.handle_l3_eviction(ev, now);
            }
            (r, Level::Dram)
        };
        if remote > 0 {
            ready += remote;
            level = Level::Remote;
        }

        // Fill L2.
        if self.cores[core].l2.peek(block).is_none() {
            if let Some(ev) = self.cores[core]
                .l2
                .insert(block, grant_state, ready, prefetch)
            {
                self.handle_l2_eviction(core, ev, now);
            }
        }
        (ready, level)
    }

    /// Allocates an L1 MSHR, waiting (by advancing the effective request
    /// time) if the file is full. Returns the possibly delayed `now`.
    fn mshr_admit(&mut self, core: usize, now: u64) -> u64 {
        let mshr = &mut self.cores[core].mshr;
        mshr.retire_completed(now);
        if mshr.len() < mshr.capacity() {
            return now;
        }
        // Full: the request stalls until the earliest entry completes.
        let earliest = match mshr.allocate(u64::MAX, 0, false, None, now) {
            Err(e) => e,
            Ok(_) => unreachable!("file was full"),
        };
        let delayed = earliest.max(now);
        self.cores[core].mshr.retire_completed(delayed);
        delayed
    }

    /// Issues the generic-prefetcher candidates produced by training.
    fn issue_cache_prefetches(&mut self, core: usize, candidates: &[u64], now: u64, want: Want) {
        for &block in candidates {
            // Respect MSHR capacity: generic prefetches are dropped when
            // the file is nearly full (demand gets priority).
            let mshr = &mut self.cores[core].mshr;
            mshr.retire_completed(now);
            if mshr.len() + 1 >= mshr.capacity() {
                return;
            }
            if self.cores[core].l1.peek(block).is_some()
                || self.cores[core].mshr.lookup(block).is_some()
            {
                continue;
            }
            self.stats.prefetch_requests[RfoOrigin::CachePrefetcher.index()] += 1;
            self.stats.prefetch_downstream[RfoOrigin::CachePrefetcher.index()] += 1;
            let (ready, _level) =
                self.fill_below_l1(core, block, now, want, Some(RfoOrigin::CachePrefetcher));
            let state = if want == Want::Own {
                CoherenceState::Exclusive
            } else {
                match self.directory.entry(block) {
                    Some(crate::directory::DirEntry::Shared { .. }) => CoherenceState::Shared,
                    _ => CoherenceState::Exclusive,
                }
            };
            let _ = self.alloc_mshr(
                core,
                block,
                ready,
                want == Want::Own,
                Some(RfoOrigin::CachePrefetcher),
                now,
            );
            if let Some(ev) =
                self.cores[core]
                    .l1
                    .insert(block, state, ready, Some(RfoOrigin::CachePrefetcher))
            {
                self.handle_l1_eviction(core, ev, now);
            }
        }
    }

    // -- public access paths ------------------------------------------------

    /// A demand load of the block containing `addr` by `core` at `now`.
    ///
    /// Trains the generic prefetcher and returns when the data is ready.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn load(&mut self, core: usize, addr: u64, now: u64) -> AccessResult {
        self.load_with_pc(core, addr, addr >> 2, now)
    }

    /// [`MemorySystem::load`] with an explicit training PC.
    pub fn load_with_pc(&mut self, core: usize, addr: u64, pc: u64, now: u64) -> AccessResult {
        let block = addr / 64;
        self.stats.loads += 1;
        self.stats.l1_data_accesses += 1;

        let mut candidates = Vec::new();
        self.cores[core]
            .prefetcher
            .train(pc, block, &mut candidates);

        // One tag search serves the whole hit path: the LRU/used update
        // happens through the same `LineMut` (pre-touch values captured
        // first), instead of `touch` re-searching the set.
        let line_info = self.cores[core].l1.lookup(block).map(|mut l| {
            let info = (l.state(), l.ready(), l.prefetch(), l.used());
            l.touch();
            info
        });
        let result = if let Some((state, line_ready, prefetch, used)) = line_info {
            if !state.readable() {
                self.flag_violation(
                    InvariantKind::LineState,
                    Some(block),
                    Some(core),
                    now,
                    format!("demand load found an unreadable L1 line in state {state}"),
                );
            }
            if prefetch.is_some() && !used {
                self.cores[core].prefetcher.feedback_useful();
            }
            if line_ready <= now {
                self.stats.load_l1_hits += 1;
                AccessResult {
                    ready: now + self.config.l1_latency,
                    l1_hit: true,
                    level: Level::L1,
                }
            } else {
                // Hit under fill: wait for the in-flight line.
                self.cores[core].demand_miss_until =
                    self.cores[core].demand_miss_until.max(line_ready);
                AccessResult {
                    ready: line_ready,
                    l1_hit: false,
                    level: Level::L1,
                }
            }
        } else {
            // True L1 miss: the walk below probes the L2, L3, directory
            // and eviction maps in a dependent chain of random reads.
            // Warming every table's slot up front overlaps those host
            // cache misses (memory-level parallelism); none of it reads
            // simulated state, so the walk's outcome is unchanged.
            self.cores[core].l2.warm(block);
            self.l3.warm(block);
            self.directory.warm(block);
            self.recently_evicted_l1.warm(block);
            self.evicted_unused.warm(block);
            self.cores[core].mshr.retire_completed(now);
            if let Some(entry) = self.cores[core].mshr.lookup(block) {
                // The line was evicted while its fill was in flight;
                // merge and reinstate it.
                self.cores[core].mshr.record_merge();
                if !self.directory.tracks(core as u8, block) {
                    // Both private copies were evicted mid-flight and the
                    // directory forgot us: re-register before
                    // reinstating, or the copy would be invisible to
                    // later exclusive requests.
                    self.stats.coherence_repairs += 1;
                    self.coh(now, core as u8, block, CoherenceKind::Reinstated);
                    if entry.exclusive {
                        self.directory.reinstate_owner(core as u8, block);
                    } else {
                        let actions = self.directory.request_shared(core as u8, block);
                        if let Some(owner) = actions.downgrade {
                            let o = owner as usize;
                            self.coh(now, owner, block, CoherenceKind::Downgraded);
                            let mut d = self.cores[o].l1.downgrade(block).unwrap_or(false);
                            d |= self.cores[o].l2.downgrade(block).unwrap_or(false);
                            self.cores[o].mshr.retire_completed(now);
                            self.cores[o].mshr.downgrade_entry(block);
                            if d {
                                if let Some(mut l3line) = self.l3.lookup(block) {
                                    l3line.set_dirty(true);
                                }
                            }
                        }
                    }
                }
                let state = if entry.exclusive {
                    CoherenceState::Modified
                } else {
                    match self.directory.entry(block) {
                        Some(DirEntry::Shared { .. }) => {
                            // The old model reinstated E here even with
                            // other sharers present.
                            self.stats.coherence_repairs += 1;
                            CoherenceState::Shared
                        }
                        _ => CoherenceState::Exclusive,
                    }
                };
                if let Some(ev) = self.cores[core].l1.insert(block, state, entry.ready, None) {
                    self.handle_l1_eviction(core, ev, now);
                }
                self.cores[core].demand_miss_until =
                    self.cores[core].demand_miss_until.max(entry.ready);
                return AccessResult {
                    ready: entry.ready,
                    l1_hit: false,
                    level: Level::L2,
                };
            }
            if self.recently_evicted_l1.remove(block).is_some() {
                self.stats.l1_rereference_misses += 1;
            }
            if let Some(origin) = self.evicted_unused.remove(block) {
                self.stats.prefetch_early[origin.index()] += 1;
            }
            let now_adm = self.mshr_admit(core, now);
            let (ready, level) = self.fill_below_l1(core, block, now_adm, Want::Read, None);
            match level {
                Level::L2 => self.stats.load_l2_hits += 1,
                Level::L3 => self.stats.load_l3_hits += 1,
                Level::Remote => self.stats.load_remote_hits += 1,
                Level::Dram => self.stats.load_dram += 1,
                Level::L1 => unreachable!(),
            }
            let state = match self.directory.entry(block) {
                Some(crate::directory::DirEntry::Shared { .. }) => CoherenceState::Shared,
                _ => CoherenceState::Exclusive,
            };
            let _ = self.alloc_mshr(core, block, ready, false, None, now_adm);
            if let Some(ev) = self.cores[core].l1.insert(block, state, ready, None) {
                self.handle_l1_eviction(core, ev, now_adm);
            }
            self.cores[core].l1.touch(block);
            self.cores[core].demand_miss_until = self.cores[core].demand_miss_until.max(ready);
            AccessResult {
                ready,
                l1_hit: false,
                level,
            }
        };

        if !candidates.is_empty() {
            self.issue_cache_prefetches(core, &candidates, now, Want::Read);
        }
        result
    }

    /// The head store of `core`'s SB tries to write the block containing
    /// `addr`. TSO allows at most one drain attempt per cycle per core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn store_drain(&mut self, core: usize, addr: u64, now: u64) -> StoreDrainOutcome {
        self.store_drain_with_pc(core, addr, addr >> 2, now)
    }

    /// [`MemorySystem::store_drain`] with an explicit PC for prefetcher
    /// training (the generic L1 prefetcher trains on demand accesses:
    /// loads and performed stores, as in gem5).
    pub fn store_drain_with_pc(
        &mut self,
        core: usize,
        addr: u64,
        pc: u64,
        now: u64,
    ) -> StoreDrainOutcome {
        let block = addr / 64;
        self.cores[core].mshr.retire_completed(now);
        // An architectural store reached the block (whether it performs
        // now, merges into an in-flight fill, or opens a demand RFO):
        // whatever speculation obtained ownership was useful, not waste.
        // Untagging here — not only on Performed — matters because the
        // demand-miss paths below install Modified (dirty) lines whose
        // store has not performed yet; a tag surviving past this point
        // would trip the speculative-leak check on exactly that state.
        if !self.spec_tags.is_empty() {
            self.spec_tags.remove(block);
        }
        let line_info = self.cores[core]
            .l1
            .lookup(block)
            .map(|l| (l.state(), l.ready(), l.prefetch(), l.used()));
        match line_info {
            Some((state, line_ready, prefetch, used)) if state.writable() => {
                if line_ready <= now {
                    if let Some(origin) = prefetch.filter(|_| !used) {
                        self.stats.prefetch_successful[origin.index()] += 1;
                        self.cores[core].prefetcher.feedback_useful();
                    }
                    self.cores[core].l1.touch(block);
                    if let Some(mut l) = self.cores[core].l1.lookup(block) {
                        l.set_state(CoherenceState::Modified);
                        l.set_dirty(true);
                    }
                    self.stats.stores_performed += 1;
                    self.stats.store_l1_ready_hits += 1;
                    self.stats.l1_data_accesses += 1;
                    self.coh(now, core as u8, block, CoherenceKind::StorePerformed);
                    // Demand training of the generic L1 prefetcher: this
                    // is the "store in entry 0 performs → prefetch B1"
                    // behaviour of §III-A.
                    let mut candidates = Vec::new();
                    self.cores[core]
                        .prefetcher
                        .train(pc, block, &mut candidates);
                    if !candidates.is_empty() {
                        self.issue_cache_prefetches(core, &candidates, now, Want::Own);
                    }
                    StoreDrainOutcome::Performed { l1_hit: true }
                } else {
                    // In flight (IM / PF_IM): classify lateness once.
                    if let Some(origin) = prefetch.filter(|_| !used) {
                        self.stats.prefetch_late[origin.index()] += 1;
                        self.cores[core].l1.touch(block); // marks used
                    }
                    self.stats.store_retries += 1;
                    self.cores[core].demand_miss_until =
                        self.cores[core].demand_miss_until.max(line_ready);
                    StoreDrainOutcome::Retry { at: line_ready }
                }
            }
            Some((_, _, _, _)) => {
                // Readable but not writable: upgrade.
                self.stats.store_retries += 1;
                let now_adm = self.mshr_admit(core, now);
                let (ready, _level) = self.fill_below_l1(core, block, now_adm, Want::Own, None);
                if let Some(mut l) = self.cores[core].l1.lookup(block) {
                    l.set_state(CoherenceState::Modified);
                    l.set_ready(ready);
                }
                // A shared line can still have its read fill in flight
                // (downgraded mid-fill, or upgrading under a load miss):
                // fold the upgrade into that entry rather than duplicate.
                if !self.cores[core].mshr.merge_exclusive(block, ready) {
                    let _ = self.alloc_mshr(core, block, ready, true, None, now_adm);
                }
                self.cores[core].demand_miss_until = self.cores[core].demand_miss_until.max(ready);
                StoreDrainOutcome::Retry { at: ready }
            }
            None => {
                // Miss: same warm-ahead as the load miss path (see
                // `load_with_pc`) before the dependent probe chain.
                self.cores[core].l2.warm(block);
                self.l3.warm(block);
                self.directory.warm(block);
                self.recently_evicted_l1.warm(block);
                self.evicted_unused.warm(block);
                // Merge into an in-flight request if one exists.
                if let Some(ready) = self.cores[core].mshr.upgrade_to_exclusive(block) {
                    self.cores[core].mshr.record_merge();
                    self.stats.store_retries += 1;
                    self.upgrade_merged_entry(core, block, now);
                    self.cores[core].demand_miss_until =
                        self.cores[core].demand_miss_until.max(ready);
                    // Reinstate the L1 line if it was evicted mid-flight.
                    if self.cores[core].l1.peek(block).is_none() {
                        if let Some(ev) =
                            self.cores[core]
                                .l1
                                .insert(block, CoherenceState::Modified, ready, None)
                        {
                            self.handle_l1_eviction(core, ev, now);
                        }
                    } else if let Some(mut l) = self.cores[core].l1.lookup(block) {
                        l.set_state(CoherenceState::Modified);
                    }
                    return StoreDrainOutcome::Retry { at: ready };
                }
                // Demand RFO: the `Getx` of Figure 4's T0.
                self.stats.demand_store_misses += 1;
                self.stats.store_retries += 1;
                if self.recently_evicted_l1.remove(block).is_some() {
                    self.stats.l1_rereference_misses += 1;
                }
                if let Some(origin) = self.evicted_unused.remove(block) {
                    self.stats.prefetch_early[origin.index()] += 1;
                }
                let now_adm = self.mshr_admit(core, now);
                let (ready, _level) = self.fill_below_l1(core, block, now_adm, Want::Own, None);
                let _ = self.alloc_mshr(core, block, ready, true, None, now_adm);
                if let Some(ev) =
                    self.cores[core]
                        .l1
                        .insert(block, CoherenceState::Modified, ready, None)
                {
                    self.handle_l1_eviction(core, ev, now_adm);
                }
                self.cores[core].demand_miss_until = self.cores[core].demand_miss_until.max(ready);
                StoreDrainOutcome::Retry { at: ready }
            }
        }
    }

    /// A store-prefetch (write-permission) request from `origin` for the
    /// block containing `addr` — the at-execute/at-commit per-store RFO,
    /// or one block of an SPB burst.
    ///
    /// Also trains the generic L1 prefetcher (store prefetches are how
    /// the store stream reaches it, per §III-A).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn store_prefetch(
        &mut self,
        core: usize,
        addr: u64,
        pc: u64,
        now: u64,
        origin: RfoOrigin,
    ) -> RfoResponse {
        let _ = pc; // prefetcher training happens on demand accesses only
        let block = addr / 64;
        self.cores[core].mshr.retire_completed(now);
        self.stats.prefetch_requests[origin.index()] += 1;

        let line_state = self.cores[core].l1.lookup(block).map(|l| l.state());
        let response = match line_state {
            Some(state) if state.writable() => RfoResponse::Discarded, // PopReq
            Some(_) => {
                // Shared: upgrade in place.
                self.stats.prefetch_downstream[origin.index()] += 1;
                let now_adm = self.mshr_admit(core, now);
                let (mut ready, _) =
                    self.fill_below_l1(core, block, now_adm, Want::Own, Some(origin));
                if let Some(extra) = self.fault.ack_delay() {
                    ready += extra;
                    self.stats.faults_ack_delayed += 1;
                }
                if let Some(mut l) = self.cores[core].l1.lookup(block) {
                    l.set_state(CoherenceState::Modified);
                    l.set_ready(ready);
                }
                // The shared line's own fill may still be in flight:
                // fold the upgrade into that entry rather than duplicate.
                if !self.cores[core].mshr.merge_exclusive(block, ready) {
                    let _ = self.alloc_mshr(core, block, ready, true, Some(origin), now_adm);
                }
                RfoResponse::Issued
            }
            None => {
                if let Some(ready) = self.cores[core].mshr.upgrade_to_exclusive(block) {
                    self.cores[core].mshr.record_merge();
                    self.upgrade_merged_entry(core, block, now);
                    if self.cores[core].l1.peek(block).is_some() {
                        if let Some(mut l) = self.cores[core].l1.lookup(block) {
                            l.set_state(CoherenceState::Modified);
                        }
                    }
                    let _ = ready;
                    return RfoResponse::Merged;
                }
                // When the MSHR file is full the request waits in the L1
                // controller's prefetch queue (an SB entry in real
                // hardware holds its RFO until a fill buffer frees) and
                // is re-issued by `tick`. Fault injection can force this
                // path to model transient fill-buffer denial.
                {
                    let denied = self.fault.mshr_exhausted();
                    if denied {
                        self.stats.faults_mshr_denied += 1;
                    }
                    let mshr = &mut self.cores[core].mshr;
                    mshr.retire_completed(now);
                    if denied || mshr.len() >= mshr.capacity() {
                        self.stats.prefetch_requests[origin.index()] -= 1; // re-counted on reissue
                        let spec = self.spec_ctx;
                        self.cores[core].burst_queue.push_back((block, origin, spec));
                        self.coh(now, core as u8, block, CoherenceKind::PrefetchQueued);
                        return RfoResponse::Queued;
                    }
                }
                // `GetPFx`: a fresh ownership prefetch (PF_IM).
                self.stats.prefetch_downstream[origin.index()] += 1;
                let (mut ready, _) = self.fill_below_l1(core, block, now, Want::Own, Some(origin));
                if let Some(extra) = self.fault.ack_delay() {
                    ready += extra;
                    self.stats.faults_ack_delayed += 1;
                }
                let _ = self.alloc_mshr(core, block, ready, true, Some(origin), now);
                if let Some(ev) = self.cores[core].l1.insert(
                    block,
                    CoherenceState::Exclusive,
                    ready,
                    Some(origin),
                ) {
                    self.handle_l1_eviction(core, ev, now);
                }
                RfoResponse::Issued
            }
        };
        response
    }

    /// [`MemorySystem::store_prefetch`] on behalf of a *wrong-path*
    /// store: the RFO behaves identically at the controller, but any
    /// block whose ownership it obtains (fresh issue or merge-upgrade)
    /// is tagged speculative, together with the downstream traffic the
    /// request caused. [`MemorySystem::attribute_squash`] later charges
    /// still-tagged blocks as waste; an architectural store performing
    /// to the block first clears the tag (the speculation was useful).
    pub fn store_prefetch_spec(
        &mut self,
        core: usize,
        addr: u64,
        pc: u64,
        now: u64,
        origin: RfoOrigin,
    ) -> RfoResponse {
        let inval_before = self.stats.invalidations;
        let dram_before = self.stats.dram_accesses;
        self.spec_ctx = true;
        let resp = self.store_prefetch(core, addr, pc, now, origin);
        self.spec_ctx = false;
        match resp {
            RfoResponse::Issued | RfoResponse::Merged => {
                self.stats.spec_rfos_issued += 1;
                let coh = (self.stats.invalidations - inval_before) as u32;
                let dram = (self.stats.dram_accesses - dram_before) as u32;
                let block = addr / 64;
                if let Some(t) = self.spec_tags.get_mut(block) {
                    t.core = core as u8;
                    t.rfos += 1;
                    t.coh += coh;
                    t.dram += dram;
                } else {
                    self.spec_tags.insert(
                        block,
                        SpecTag {
                            core: core as u8,
                            rfos: 1,
                            coh,
                            dram,
                        },
                    );
                }
            }
            // Queued: tagged when the queue re-issues it (spec entry).
            // Discarded: the core already owned the line — this request
            // caused no ownership transition, so nothing to attribute.
            RfoResponse::Queued | RfoResponse::Discarded => {}
        }
        resp
    }

    /// A squash resolved on `core`: attributes every speculative tag it
    /// still owns as waste (the wrong-path RFOs bought ownership no
    /// architectural store ever used) and drops its still-queued
    /// speculative burst entries. Folds the per-tag traffic into the
    /// `spec_*` counters and emits one `squash` observer event.
    pub fn attribute_squash(&mut self, core: usize, now: u64) {
        let q = &mut self.cores[core].burst_queue;
        let before = q.len();
        q.retain(|&(_, _, spec)| !spec);
        self.stats.spec_dropped += (before - q.len()) as u64;

        let mut rfos = 0u64;
        let mut coh = 0u64;
        let mut dram = 0u64;
        let mut blocks = 0u64;
        if !self.spec_tags.is_empty() {
            let id = core as u8;
            self.spec_tags.retain(|_, t| {
                if t.core == id {
                    rfos += u64::from(t.rfos);
                    coh += u64::from(t.coh);
                    dram += u64::from(t.dram);
                    blocks += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.stats.spec_wasted_rfos += rfos;
        self.stats.spec_wasted_coh_msgs += coh;
        self.stats.spec_wasted_dram += dram;
        self.stats.spec_leaked_m_blocks += blocks;
        self.stats.spec_squashes += 1;
        self.obs.emit(|| Event {
            cycle: now,
            core: core as u8,
            kind: ObsEventKind::SquashAttributed {
                blocks: blocks as u32,
                rfos: rfos as u32,
            },
        });
    }

    /// Number of blocks currently tagged as speculatively owned.
    pub fn spec_tagged_blocks(&self) -> usize {
        self.spec_tags.len()
    }

    /// Queues a page burst: RFO prefetches for `blocks`, drained at
    /// [`MemoryConfig::burst_issue_per_cycle`] by [`MemorySystem::tick`].
    pub fn enqueue_burst(&mut self, core: usize, blocks: impl IntoIterator<Item = u64>, now: u64) {
        self.enqueue_burst_inner(core, blocks, now, false);
    }

    /// [`MemorySystem::enqueue_burst`] for a burst triggered by
    /// *wrong-path* stores: every issued block is speculatively tagged,
    /// and entries still queued when the squash arrives are dropped and
    /// counted instead of issued.
    pub fn enqueue_burst_spec(
        &mut self,
        core: usize,
        blocks: impl IntoIterator<Item = u64>,
        now: u64,
    ) {
        self.enqueue_burst_inner(core, blocks, now, true);
    }

    fn enqueue_burst_inner(
        &mut self,
        core: usize,
        blocks: impl IntoIterator<Item = u64>,
        now: u64,
        spec: bool,
    ) {
        let q = &mut self.cores[core].burst_queue;
        let before = q.len();
        let mut first = None;
        for b in blocks {
            first.get_or_insert(b);
            q.push_back((b, RfoOrigin::SpbBurst, spec));
        }
        let pushed = (q.len() - before) as u64;
        if pushed > 0 {
            self.burst_lengths.record(pushed);
            self.obs.emit(|| Event {
                cycle: now,
                core: core as u8,
                kind: ObsEventKind::BurstDetected {
                    page: (first.unwrap_or(0) * 64) & !0xfff,
                    blocks: pushed as u32,
                },
            });
        }
    }

    /// One cycle of L1-controller work: drains the burst queues and
    /// periodically runs the invariant checker.
    pub fn tick(&mut self, now: u64) {
        let interval = self.config.checker_interval;
        // `next_check_at` caches the boundary so the per-cycle fast
        // path is one compare instead of a hardware division; the exact
        // multiple test below keeps the check schedule identical even
        // if a caller ticks at a non-boundary cycle past the cache.
        if interval > 0 && now >= self.next_check_at {
            if now.is_multiple_of(interval) && self.pending_violation.is_none() {
                if let Err(v) = self.check_invariants(now) {
                    self.pending_violation = Some(v);
                }
            }
            self.next_check_at = (now / interval + 1) * interval;
        }
        for core in 0..self.cores.len() {
            for _ in 0..self.config.burst_issue_per_cycle {
                // Leave headroom in the MSHR file for demand requests.
                let mshr = &mut self.cores[core].mshr;
                mshr.retire_completed(now);
                if mshr.len() + 4 >= mshr.capacity() {
                    break;
                }
                let Some((block, origin, spec)) = self.cores[core].burst_queue.pop_front() else {
                    break;
                };
                if self.fault.drop_burst_block() {
                    // The controller sheds this request entirely: the
                    // store it covered falls back to a demand RFO.
                    self.stats.faults_bursts_dropped += 1;
                    self.coh(now, core as u8, block, CoherenceKind::PrefetchDropped);
                    continue;
                }
                self.obs.emit(|| Event {
                    cycle: now,
                    core: core as u8,
                    kind: ObsEventKind::BurstIssued { block },
                });
                if spec {
                    let _ = self.store_prefetch_spec(core, block * 64, 0, now, origin);
                } else {
                    let _ = self.store_prefetch(core, block * 64, 0, now, origin);
                }
            }
        }
        if self.obs.enabled() && now >= self.next_obs_at {
            if now.is_multiple_of(OBS_SAMPLE_INTERVAL) {
                for core in 0..self.cores.len() {
                    let occupancy = self.cores[core].mshr.len() as u32;
                    self.obs.emit(|| Event {
                        cycle: now,
                        core: core as u8,
                        kind: ObsEventKind::MshrOccupancy { occupancy },
                    });
                }
                let busy = self.dram.busy_channels(now) as u32;
                self.obs.emit(|| Event {
                    cycle: now,
                    core: 0,
                    kind: ObsEventKind::DramQueue { busy },
                });
            }
            self.next_obs_at = (now / OBS_SAMPLE_INTERVAL + 1) * OBS_SAMPLE_INTERVAL;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_core() -> MemorySystem {
        MemorySystem::new(MemoryConfig::default())
    }

    #[test]
    fn cold_load_misses_to_dram_then_hits() {
        let mut m = single_core();
        let r1 = m.load(0, 0x10000, 0);
        assert_eq!(r1.level, Level::Dram);
        assert!(!r1.l1_hit);
        assert!(r1.ready > 150);
        let r2 = m.load(0, 0x10008, r1.ready + 1);
        assert!(r2.l1_hit);
        assert_eq!(r2.ready, r1.ready + 1 + m.config().l1_latency);
        assert_eq!(m.stats().load_l1_hits, 1);
        assert_eq!(m.stats().load_dram, 1);
    }

    #[test]
    fn load_hit_under_fill_waits_for_line() {
        let mut m = single_core();
        let r1 = m.load(0, 0x20000, 0);
        let r2 = m.load(0, 0x20008, 5);
        assert!(!r2.l1_hit);
        assert_eq!(r2.ready, r1.ready, "second load waits for the same fill");
    }

    #[test]
    fn store_drain_miss_issues_demand_rfo_and_retries() {
        let mut m = single_core();
        match m.store_drain(0, 0x30000, 0) {
            StoreDrainOutcome::Retry { at } => {
                assert!(at > 100);
                // Retrying at the ready time performs.
                match m.store_drain(0, 0x30000, at) {
                    StoreDrainOutcome::Performed { l1_hit } => assert!(l1_hit),
                    other => panic!("expected perform, got {other:?}"),
                }
            }
            other => panic!("expected retry, got {other:?}"),
        }
        assert_eq!(m.stats().demand_store_misses, 1);
        assert_eq!(m.stats().stores_performed, 1);
    }

    #[test]
    fn at_commit_prefetch_turns_miss_into_hit() {
        let mut m = single_core();
        let resp = m.store_prefetch(0, 0x40000, 0x99, 0, RfoOrigin::AtCommit);
        assert_eq!(resp, RfoResponse::Issued);
        // Wait out the fill, then the drain succeeds immediately.
        let outcome = m.store_drain(0, 0x40000, 1000);
        assert_eq!(outcome, StoreDrainOutcome::Performed { l1_hit: true });
        assert_eq!(
            m.stats().prefetch_successful[RfoOrigin::AtCommit.index()],
            1
        );
    }

    #[test]
    fn prefetch_to_owned_block_is_discarded_popreq() {
        let mut m = single_core();
        let _ = m.store_prefetch(0, 0x50000, 0x99, 0, RfoOrigin::AtCommit);
        let resp = m.store_prefetch(0, 0x50000, 0x99, 1, RfoOrigin::AtCommit);
        assert_eq!(resp, RfoResponse::Discarded);
    }

    #[test]
    fn late_prefetch_is_classified_once() {
        let mut m = single_core();
        let _ = m.store_prefetch(0, 0x60000, 0x99, 0, RfoOrigin::AtCommit);
        // Demand store arrives while the RFO is still in flight.
        let o = m.store_drain(0, 0x60000, 2);
        assert!(matches!(o, StoreDrainOutcome::Retry { .. }));
        let _ = m.store_drain(0, 0x60000, 3);
        assert_eq!(m.stats().prefetch_late[RfoOrigin::AtCommit.index()], 1);
        assert_eq!(
            m.stats().prefetch_successful[RfoOrigin::AtCommit.index()],
            0
        );
    }

    #[test]
    fn burst_queue_drains_at_configured_rate() {
        let mut m = single_core();
        m.enqueue_burst(0, (0..10u64).map(|i| 0x1000 + i), 0);
        assert_eq!(m.burst_queue_len(0), 10);
        m.tick(0);
        assert_eq!(
            m.burst_queue_len(0),
            10 - m.config().burst_issue_per_cycle as usize
        );
        for now in 1..10 {
            m.tick(now);
        }
        assert_eq!(m.burst_queue_len(0), 0);
        assert_eq!(m.stats().prefetch_requests[RfoOrigin::SpbBurst.index()], 10);
    }

    #[test]
    fn spec_prefetch_tags_block_and_squash_attributes_waste() {
        let mut m = single_core();
        let resp = m.store_prefetch_spec(0, 0x80000, 0xDEAD, 0, RfoOrigin::AtExecute);
        assert_eq!(resp, RfoResponse::Issued);
        assert_eq!(m.stats().spec_rfos_issued, 1);
        assert_eq!(m.spec_tagged_blocks(), 1);
        // Cold block: the RFO went to DRAM, and no store ever performs.
        m.attribute_squash(0, 100);
        assert_eq!(m.stats().spec_wasted_rfos, 1);
        assert_eq!(m.stats().spec_leaked_m_blocks, 1);
        assert_eq!(m.stats().spec_wasted_dram, 1);
        assert_eq!(m.stats().spec_squashes, 1);
        assert_eq!(m.spec_tagged_blocks(), 0);
    }

    #[test]
    fn architectural_store_untags_speculative_block() {
        let mut m = single_core();
        let _ = m.store_prefetch_spec(0, 0x90000, 0xDEAD, 0, RfoOrigin::AtExecute);
        // The speculation turns out right: a committed store performs to
        // the block before any squash reaches the controller.
        let o = m.store_drain(0, 0x90000, 1000);
        assert_eq!(o, StoreDrainOutcome::Performed { l1_hit: true });
        assert_eq!(m.spec_tagged_blocks(), 0);
        m.attribute_squash(0, 1001);
        assert_eq!(m.stats().spec_wasted_rfos, 0);
        assert_eq!(m.stats().spec_leaked_m_blocks, 0);
        assert_eq!(m.stats().spec_squashes, 1);
    }

    #[test]
    fn squash_drops_queued_speculative_burst_entries() {
        let mut m = single_core();
        m.enqueue_burst(0, [0x1000, 0x1001], 0);
        m.enqueue_burst_spec(0, [0x2000, 0x2001, 0x2002], 0);
        assert_eq!(m.burst_queue_len(0), 5);
        m.attribute_squash(0, 0);
        assert_eq!(m.stats().spec_dropped, 3);
        assert_eq!(m.burst_queue_len(0), 2, "committed-path entries survive");
    }

    #[test]
    fn spec_checks_pass_on_healthy_speculation() {
        let mut m = single_core();
        let _ = m.store_prefetch_spec(0, 0xa0000, 0xDEAD, 0, RfoOrigin::AtExecute);
        m.check_invariants(1000).unwrap();
        m.check_invariants_thorough(1000).unwrap();
    }

    #[test]
    fn forget_untag_mutation_trips_speculative_leak_check() {
        let mut m = single_core();
        let _ = m.store_prefetch_spec(0, 0xb0000, 0xDEAD, 0, RfoOrigin::AtExecute);
        // Let the fill complete so the line is stable, then corrupt.
        let block = m.seed_forget_untag_mutation(1000).expect("tagged line");
        assert_eq!(block, 0xb0000 / 64);
        let err = m.check_invariants(1000).unwrap_err();
        assert_eq!(err.kind, InvariantKind::SpeculativeLeak);
        assert_eq!(err.block, Some(block));
        let err = m.check_invariants_thorough(1000).unwrap_err();
        assert_eq!(err.kind, InvariantKind::SpeculativeLeak);
    }

    #[test]
    fn demand_miss_tracking_reflects_outstanding_fill() {
        let mut m = single_core();
        assert!(!m.has_pending_demand_miss(0, 0));
        let r = m.load(0, 0x70000, 0);
        assert!(m.has_pending_demand_miss(0, 1));
        assert!(!m.has_pending_demand_miss(0, r.ready + 1));
    }

    #[test]
    fn multicore_store_invalidates_remote_copy() {
        let cfg = MemoryConfig {
            cores: 2,
            ..Default::default()
        };
        let mut m = MemorySystem::new(cfg);
        // Core 1 reads the block, then core 0 stores to it.
        let r = m.load(1, 0x80000, 0);
        let _ = m.store_drain(0, 0x80000, r.ready + 1);
        assert_eq!(m.stats().invalidations, 1);
        // Core 1's copy is gone: next read misses.
        let r2 = m.load(1, 0x80000, r.ready + 500);
        assert!(!r2.l1_hit);
    }

    #[test]
    fn remote_dirty_read_pays_remote_penalty() {
        let cfg = MemoryConfig {
            cores: 2,
            ..Default::default()
        };
        let mut m = MemorySystem::new(cfg);
        // Core 0 owns and writes the block.
        let StoreDrainOutcome::Retry { at } = m.store_drain(0, 0x90000, 0) else {
            panic!("expected retry");
        };
        let _ = m.store_drain(0, 0x90000, at);
        // Core 1 loads it: 3-hop.
        let r = m.load(1, 0x90000, at + 1);
        assert_eq!(r.level, Level::Remote);
    }

    #[test]
    fn evicted_unused_prefetch_becomes_early_on_demand() {
        // Tiny L1 to force evictions quickly: 2 sets x 2 ways.
        let cfg = MemoryConfig {
            l1_size: 256,
            l1_ways: 2,
            ..Default::default()
        };
        let mut m = MemorySystem::new(cfg);
        // Prefetch 8 blocks into a 4-line cache: some evict unused.
        for b in 0..8u64 {
            let _ = m.store_prefetch(0, b * 64, 0x9, 0, RfoOrigin::SpbBurst);
        }
        // Demand-store one of the early blocks (now evicted).
        let _ = m.store_drain(0, 0, 1000);
        assert!(m.stats().prefetch_early[RfoOrigin::SpbBurst.index()] >= 1);
    }

    #[test]
    fn finalize_counts_never_used_prefetches() {
        let mut m = single_core();
        let _ = m.store_prefetch(0, 0xA0000, 0x9, 0, RfoOrigin::SpbBurst);
        let _ = m.store_prefetch(0, 0xA0040, 0x9, 0, RfoOrigin::SpbBurst);
        // Use one of the two.
        let _ = m.store_drain(0, 0xA0000, 5000);
        m.finalize_stats();
        assert_eq!(
            m.stats().prefetch_never_used[RfoOrigin::SpbBurst.index()],
            1
        );
        assert_eq!(
            m.stats().prefetch_successful[RfoOrigin::SpbBurst.index()],
            1
        );
    }

    #[test]
    fn reset_stats_clears_counters_but_keeps_cache_contents() {
        let mut m = single_core();
        let r = m.load(0, 0xB0000, 0);
        m.reset_stats();
        assert_eq!(m.stats().loads, 0);
        let r2 = m.load(0, 0xB0000, r.ready + 1);
        assert!(r2.l1_hit, "warm line survives the stats reset");
    }

    #[test]
    fn store_merge_into_load_miss_upgrades() {
        let mut m = single_core();
        let r = m.load(0, 0xC0000, 0);
        // While the load is in flight, a store to the same block merges.
        let o = m.store_drain(0, 0xC0000, 1);
        match o {
            StoreDrainOutcome::Retry { at } => assert!(at >= r.ready),
            other => panic!("expected retry, got {other:?}"),
        }
    }

    #[test]
    fn dram_bandwidth_spreads_a_burst() {
        let mut m = single_core();
        // 32 parallel RFOs: later ones must queue behind channel slots.
        let mut readies = Vec::new();
        for b in 0..32u64 {
            let _ = m.store_prefetch(0, 0xD0000 + b * 64, 0x9, 0, RfoOrigin::SpbBurst);
            if let Some(l) = m.cores[0].l1.peek(0xD0000 / 64 + b) {
                readies.push(l.ready);
            }
        }
        let first = readies.iter().min().unwrap();
        let last = readies.iter().max().unwrap();
        assert!(last > first, "bursts are bandwidth-limited, not instant");
    }

    #[test]
    fn checker_is_clean_on_normal_traffic() {
        let cfg = MemoryConfig {
            cores: 2,
            ..Default::default()
        };
        let mut m = MemorySystem::new(cfg);
        let mut now = 0u64;
        for i in 0..200u64 {
            let r = m.load((i % 2) as usize, 0x1000 + (i % 16) * 64, now);
            let _ = m.store_drain(((i + 1) % 2) as usize, 0x9000 + (i % 8) * 64, now);
            m.tick(now);
            now = r.ready + 1;
        }
        m.check_invariants_thorough(now)
            .expect("protocol stays coherent");
        assert!(m.take_violation().is_none());
    }

    #[test]
    fn checker_flags_an_untracked_writer() {
        let cfg = MemoryConfig {
            cores: 2,
            ..Default::default()
        };
        let mut m = MemorySystem::new(cfg);
        let StoreDrainOutcome::Retry { at } = m.store_drain(0, 0x4000, 0) else {
            panic!("expected retry");
        };
        // Corrupt the model directly: the directory forgets the owner.
        m.directory.evicted(0, 0x4000 / 64);
        let err = m.check_invariants(at + 1).unwrap_err();
        assert_eq!(err.kind, InvariantKind::SingleWriter);
        assert_eq!(err.block, Some(0x4000 / 64));
        assert_eq!(err.core, Some(0));
        assert!(
            !err.history.is_empty(),
            "violation carries the block's event history"
        );
    }

    #[test]
    fn checker_flags_a_stuck_mshr_entry() {
        let mut m = single_core();
        let _ = m.cores[0]
            .mshr
            .allocate(7, MSHR_STUCK_HORIZON + 10, false, None, 0);
        let err = m.check_invariants(0).unwrap_err();
        assert_eq!(err.kind, InvariantKind::MshrLeak);
    }

    #[test]
    fn periodic_check_surfaces_through_take_violation() {
        let mut m = single_core();
        let _ = m.cores[0]
            .mshr
            .allocate(7, MSHR_STUCK_HORIZON + 10, false, None, 0);
        m.tick(0); // cycle 0 is always a checking cycle
        let v = m.take_violation().expect("violation pending");
        assert_eq!(v.kind, InvariantKind::MshrLeak);
        assert!(m.take_violation().is_none(), "taken exactly once");
    }

    #[test]
    fn disabled_checker_skips_periodic_scan() {
        let cfg = MemoryConfig {
            checker_interval: 0,
            ..Default::default()
        };
        let mut m = MemorySystem::new(cfg);
        let _ = m.cores[0]
            .mshr
            .allocate(7, MSHR_STUCK_HORIZON + 10, false, None, 0);
        m.tick(0);
        assert!(m.take_violation().is_none());
    }

    #[test]
    fn dram_spike_fault_delays_fills() {
        let clean = {
            let mut m = single_core();
            m.load(0, 0x10000, 0).ready
        };
        let faulty = {
            let mut m = MemorySystem::new(MemoryConfig {
                fault: FaultConfig {
                    dram_spike_rate: 1.0,
                    dram_spike_cycles: 500,
                    ..FaultConfig::none()
                },
                ..Default::default()
            });
            m.load(0, 0x10000, 0).ready
        };
        assert_eq!(faulty, clean + 500);
    }

    #[test]
    fn ack_delay_fault_postpones_prefetched_line() {
        let mut m = MemorySystem::new(MemoryConfig {
            fault: FaultConfig {
                ack_delay_rate: 1.0,
                ack_delay_cycles: 300,
                ..FaultConfig::none()
            },
            ..Default::default()
        });
        let _ = m.store_prefetch(0, 0x40000, 0x9, 0, RfoOrigin::AtCommit);
        let line_ready = m.cores[0].l1.peek(0x40000 / 64).unwrap().ready;
        assert_eq!(m.stats().faults_ack_delayed, 1);
        // A drain just before the delayed ready still retries.
        assert!(matches!(
            m.store_drain(0, 0x40000, line_ready - 1),
            StoreDrainOutcome::Retry { .. }
        ));
    }

    #[test]
    fn forced_mshr_exhaustion_queues_prefetches() {
        let mut m = MemorySystem::new(MemoryConfig {
            fault: FaultConfig {
                mshr_exhaust_rate: 1.0,
                ..FaultConfig::none()
            },
            ..Default::default()
        });
        let resp = m.store_prefetch(0, 0x50000, 0x9, 0, RfoOrigin::SpbBurst);
        assert_eq!(resp, RfoResponse::Queued);
        assert_eq!(m.burst_queue_len(0), 1);
        assert_eq!(m.stats().faults_mshr_denied, 1);
    }

    #[test]
    fn burst_drop_fault_shrinks_issued_bursts() {
        let mut m = MemorySystem::new(MemoryConfig {
            fault: FaultConfig {
                burst_drop_rate: 1.0,
                ..FaultConfig::none()
            },
            ..Default::default()
        });
        m.enqueue_burst(0, (0..8u64).map(|i| 0x100 + i), 0);
        for now in 0..4 {
            m.tick(now);
        }
        assert_eq!(m.burst_queue_len(0), 0, "drops still consume the queue");
        assert_eq!(m.stats().faults_bursts_dropped, 8);
        assert_eq!(m.stats().prefetch_requests[RfoOrigin::SpbBurst.index()], 0);
    }

    #[test]
    fn faulty_run_stays_coherent() {
        let cfg = MemoryConfig {
            cores: 2,
            fault: FaultConfig::uniform(0.2, 99),
            ..Default::default()
        };
        let mut m = MemorySystem::new(cfg);
        let mut now = 0u64;
        for i in 0..400u64 {
            let c = (i % 2) as usize;
            let r = m.load(c, 0x2000 + (i % 32) * 64, now);
            let _ = m.store_drain(1 - c, 0x2000 + (i % 32) * 64, now + 1);
            m.enqueue_burst(c, (0..4u64).map(|j| 0x800 + (i % 8) * 4 + j), 0);
            m.tick(now);
            assert!(m.take_violation().is_none(), "violation at iter {i}");
            now = r.ready + 1;
        }
        m.check_invariants_thorough(now)
            .expect("coherent under injected faults");
        let s = m.stats();
        assert!(
            s.faults_dram_spiked + s.faults_ack_delayed + s.faults_bursts_dropped > 0,
            "faults actually fired"
        );
    }

    #[test]
    fn no_fault_config_leaves_stats_untouched() {
        let mut m = single_core();
        let mut now = 0u64;
        for i in 0..100u64 {
            let r = m.load(0, 0x3000 + i * 64, now);
            m.tick(now);
            now = r.ready + 1;
        }
        let s = m.stats();
        assert_eq!(s.faults_ack_delayed, 0);
        assert_eq!(s.faults_dram_spiked, 0);
        assert_eq!(s.faults_mshr_denied, 0);
        assert_eq!(s.faults_bursts_dropped, 0);
    }

    #[test]
    fn diagnostic_snapshot_names_the_stuck_block() {
        let mut m = single_core();
        let _ = m.cores[0].mshr.allocate(0x77, 9_000_000, false, None, 0);
        let s = m.diagnostic_snapshot(100);
        assert!(s.contains("cycle 100"));
        assert!(s.contains("0x77"));
        assert!(s.contains("mshr 1/64"));
    }

    #[test]
    fn stride_prefetcher_issues_for_a_load_stream() {
        let mut m = single_core();
        let mut now = 0u64;
        for b in 0..40u64 {
            let r = m.load_with_pc(0, 0xE00000 + b * 64, 0x1234, now);
            now = r.ready + 1;
        }
        assert!(
            m.stats().prefetch_requests[RfoOrigin::CachePrefetcher.index()] > 0,
            "the stride prefetcher must have trained and issued"
        );
    }
}

//! Set-associative cache arrays with LRU replacement.
//!
//! # Layout
//!
//! The array is struct-of-arrays: parallel lanes (`tag`, `state`,
//! `ready`, `dirty`, `used`, `prefetch`, `lru`) indexed by
//! `set * ways + way`. A tag match scans 8 bytes per way instead of a
//! whole [`CacheLine`], and the periodic invariant checker's sweep over
//! every line touches only the lanes it reads. `u64::MAX` in the tag
//! lane marks an invalid way (no real block number reaches it); the
//! state lane is kept in sync ([`CoherenceState::Invalid`] ⟺ empty tag).
//!
//! [`CacheLine`] remains the exchange type: [`CacheArray::peek`],
//! [`CacheArray::invalidate`] and [`CacheArray::iter_valid`] hand out
//! assembled copies, while [`CacheArray::lookup`] returns a [`LineMut`]
//! proxy whose setters write the lanes in place.

use crate::line::{CacheLine, CoherenceState, RfoOrigin};

/// Tag-lane sentinel for an invalid way.
const NO_TAG: u64 = u64::MAX;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Block size in bytes (64 throughout the paper).
    pub block_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry, validating divisibility.
    ///
    /// # Panics
    ///
    /// Panics if the size is not an exact multiple of `ways * block_bytes`.
    pub fn new(size_bytes: u64, ways: usize) -> Self {
        let g = Self {
            size_bytes,
            ways,
            block_bytes: 64,
        };
        assert!(
            g.sets() > 0 && size_bytes.is_multiple_of(ways as u64 * g.block_bytes),
            "cache size must be a multiple of ways * block size"
        );
        g
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * self.block_bytes)) as usize
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// The set a block maps into.
    pub fn set_of(&self, block: u64) -> usize {
        (block % self.sets() as u64) as usize
    }
}

/// What `insert` evicted, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The block that was evicted.
    pub block: u64,
    /// Whether it held dirty data (needs write-back).
    pub dirty: bool,
    /// The prefetch origin if the victim was prefetched and never used.
    pub unused_prefetch: Option<RfoOrigin>,
}

/// One set-associative cache array (tags + metadata only; the simulator
/// does not model data values).
///
/// # Examples
///
/// ```
/// use spb_mem::cache::{CacheArray, CacheGeometry};
/// use spb_mem::line::CoherenceState;
///
/// let mut l1 = CacheArray::new(CacheGeometry::new(32 * 1024, 8));
/// assert!(l1.lookup(42).is_none());
/// l1.insert(42, CoherenceState::Exclusive, 10, None);
/// assert!(l1.lookup(42).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    geometry: CacheGeometry,
    tag: Vec<u64>,
    state: Vec<CoherenceState>,
    ready: Vec<u64>,
    dirty: Vec<bool>,
    used: Vec<bool>,
    prefetch: Vec<Option<RfoOrigin>>,
    lru: Vec<u64>,
    lru_clock: u64,
    tag_checks: u64,
    /// When enabled, blocks whose checker-visible lanes (`tag`, `state`,
    /// `ready`) changed since the log was last cleared, in write order.
    /// The invariant checker re-verifies exactly these blocks instead of
    /// sweeping every line (see `MemorySystem::check_invariants`).
    mutated: Vec<u64>,
    log_mutations: bool,
}

/// A mutable handle to one valid line, writing the SoA lanes in place.
#[derive(Debug)]
pub struct LineMut<'a> {
    arr: &'a mut CacheArray,
    idx: usize,
}

impl LineMut<'_> {
    /// The block held by this line.
    pub fn block(&self) -> u64 {
        self.arr.tag[self.idx]
    }

    /// The line's coherence state.
    pub fn state(&self) -> CoherenceState {
        self.arr.state[self.idx]
    }

    /// Rewrites the coherence state (e.g. an in-place upgrade to M).
    pub fn set_state(&mut self, state: CoherenceState) {
        debug_assert!(
            state != CoherenceState::Invalid,
            "invalidate lines via CacheArray::invalidate"
        );
        if self.arr.state[self.idx] != state {
            self.arr.state[self.idx] = state;
            let block = self.arr.tag[self.idx];
            self.arr.log_mutation(block);
        }
    }

    /// The cycle the line's fill completes.
    pub fn ready(&self) -> u64 {
        self.arr.ready[self.idx]
    }

    /// Moves the fill-completion cycle (upgrade in flight).
    pub fn set_ready(&mut self, ready: u64) {
        if self.arr.ready[self.idx] != ready {
            self.arr.ready[self.idx] = ready;
            let block = self.arr.tag[self.idx];
            self.arr.log_mutation(block);
        }
    }

    /// Whether the line holds dirty data.
    pub fn dirty(&self) -> bool {
        self.arr.dirty[self.idx]
    }

    /// Marks the line dirty (or clean).
    pub fn set_dirty(&mut self, dirty: bool) {
        self.arr.dirty[self.idx] = dirty;
    }

    /// The line's prefetch origin, if it was filled by a prefetch.
    pub fn prefetch(&self) -> Option<RfoOrigin> {
        self.arr.prefetch[self.idx]
    }

    /// Whether a demand access has touched the line since its fill.
    pub fn used(&self) -> bool {
        self.arr.used[self.idx]
    }

    /// Marks this line most recently used and demanded — the same effect
    /// as [`CacheArray::touch`] without paying a second tag search.
    pub fn touch(&mut self) {
        self.arr.lru_clock += 1;
        self.arr.lru[self.idx] = self.arr.lru_clock;
        self.arr.used[self.idx] = true;
    }
}

impl CacheArray {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let n = geometry.lines();
        Self {
            geometry,
            tag: vec![NO_TAG; n],
            state: vec![CoherenceState::Invalid; n],
            ready: vec![0; n],
            dirty: vec![false; n],
            used: vec![false; n],
            prefetch: vec![None; n],
            lru: vec![0; n],
            lru_clock: 0,
            tag_checks: 0,
            mutated: Vec::new(),
            log_mutations: false,
        }
    }

    /// Starts recording every block whose checker-visible lanes change
    /// into the mutation log. Off by default so arrays nobody audits
    /// (the shared L3, standalone tests) pay nothing.
    pub fn enable_mutation_log(&mut self) {
        self.log_mutations = true;
    }

    /// Whether the mutation log is being recorded.
    pub fn logs_mutations(&self) -> bool {
        self.log_mutations
    }

    /// Blocks mutated since the last [`CacheArray::clear_mutation_log`],
    /// in write order (duplicates possible).
    pub fn mutation_log(&self) -> &[u64] {
        &self.mutated
    }

    /// Forgets the recorded mutations (the checker consumed them).
    pub fn clear_mutation_log(&mut self) {
        self.mutated.clear();
    }

    #[inline]
    fn log_mutation(&mut self, block: u64) {
        if self.log_mutations {
            self.mutated.push(block);
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of tag-array checks performed so far (Figure 13's metric).
    pub fn tag_checks(&self) -> u64 {
        self.tag_checks
    }

    /// Resets the tag-check counter (end of warm-up).
    pub fn reset_tag_checks(&mut self) {
        self.tag_checks = 0;
    }

    fn set_start(&self, block: u64) -> usize {
        self.geometry.set_of(block) * self.geometry.ways
    }

    /// The lane index holding `block`, if present and valid.
    #[inline]
    fn find(&self, block: u64) -> Option<usize> {
        let start = self.set_start(block);
        self.tag[start..start + self.geometry.ways]
            .iter()
            .position(|&t| t == block)
            .map(|w| start + w)
    }

    /// Assembles the exchange-type view of one valid way.
    fn line(&self, idx: usize) -> CacheLine {
        CacheLine {
            block: self.tag[idx],
            state: self.state[idx],
            ready: self.ready[idx],
            dirty: self.dirty[idx],
            prefetch: self.prefetch[idx],
            used: self.used[idx],
            lru: self.lru[idx],
        }
    }

    /// Looks up `block`, counting one tag check. Does **not** update LRU;
    /// use [`CacheArray::touch`] on a demand access.
    pub fn lookup(&mut self, block: u64) -> Option<LineMut<'_>> {
        self.tag_checks += 1;
        let idx = self.find(block)?;
        Some(LineMut { arr: self, idx })
    }

    /// Pulls `block`'s set of the tag lane into the host cache without
    /// reading it (the 8-way × 8-byte tag row is exactly one host cache
    /// line). A batch of `warm` calls across cache levels turns the miss
    /// path's chain of dependent random probes into independent,
    /// overlapping loads. Semantically a no-op.
    #[inline]
    pub fn warm(&self, block: u64) {
        std::hint::black_box(self.tag[self.set_start(block)]);
    }

    /// Peeks at `block` without counting a tag check, returning a copy
    /// of the line's metadata.
    pub fn peek(&self, block: u64) -> Option<CacheLine> {
        self.find(block).map(|idx| self.line(idx))
    }

    /// Marks `block` as most recently used and demanded.
    pub fn touch(&mut self, block: u64) {
        self.lru_clock += 1;
        if let Some(idx) = self.find(block) {
            self.lru[idx] = self.lru_clock;
            self.used[idx] = true;
        }
    }

    /// Inserts `block` with `state`, ready at cycle `ready`, evicting the
    /// LRU way if the set is full. Prefetched fills carry their origin.
    ///
    /// Returns the eviction, if a valid line was displaced.
    ///
    /// # Panics
    ///
    /// Panics if the block is already present (callers must `lookup`
    /// first; double-insertion would duplicate a tag, which real
    /// hardware cannot represent).
    pub fn insert(
        &mut self,
        block: u64,
        state: CoherenceState,
        ready: u64,
        prefetch: Option<RfoOrigin>,
    ) -> Option<Eviction> {
        assert!(
            self.find(block).is_none(),
            "block {block:#x} inserted twice"
        );
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let start = self.set_start(block);
        let ways = self.geometry.ways;
        // Prefer an invalid way; otherwise evict the LRU way.
        let set_tags = &self.tag[start..start + ways];
        let victim = match set_tags.iter().position(|&t| t == NO_TAG) {
            Some(w) => start + w,
            None => {
                let lru = &self.lru[start..start + ways];
                let w = (0..ways)
                    .min_by_key(|&w| lru[w])
                    .expect("sets are never empty");
                start + w
            }
        };
        let eviction = (self.tag[victim] != NO_TAG).then(|| Eviction {
            block: self.tag[victim],
            dirty: self.dirty[victim],
            unused_prefetch: self.prefetch[victim].filter(|_| !self.used[victim]),
        });
        if let Some(ev) = &eviction {
            let evicted = ev.block;
            self.log_mutation(evicted);
        }
        self.log_mutation(block);
        self.tag[victim] = block;
        self.state[victim] = state;
        self.ready[victim] = ready;
        self.dirty[victim] = state == CoherenceState::Modified;
        self.prefetch[victim] = prefetch;
        self.used[victim] = false;
        self.lru[victim] = clock;
        eviction
    }

    /// Invalidates `block` (coherence invalidation or recall), returning
    /// the line it held.
    pub fn invalidate(&mut self, block: u64) -> Option<CacheLine> {
        let idx = self.find(block)?;
        self.log_mutation(block);
        let old = self.line(idx);
        self.tag[idx] = NO_TAG;
        self.state[idx] = CoherenceState::Invalid;
        self.ready[idx] = 0;
        self.dirty[idx] = false;
        self.used[idx] = false;
        self.prefetch[idx] = None;
        self.lru[idx] = 0;
        Some(old)
    }

    /// Downgrades `block` to `Shared` (remote read of an owned line),
    /// returning whether it was dirty.
    pub fn downgrade(&mut self, block: u64) -> Option<bool> {
        let idx = self.find(block)?;
        if self.state[idx] != CoherenceState::Shared {
            self.log_mutation(block);
        }
        let was_dirty = self.dirty[idx];
        self.state[idx] = CoherenceState::Shared;
        self.dirty[idx] = false;
        Some(was_dirty)
    }

    /// Number of valid lines (test/debug helper).
    pub fn valid_lines(&self) -> usize {
        self.tag.iter().filter(|&&t| t != NO_TAG).count()
    }

    /// Iterates over all valid lines as assembled [`CacheLine`] copies.
    pub fn iter_valid(&self) -> impl Iterator<Item = CacheLine> + '_ {
        (0..self.tag.len())
            .filter(|&i| self.tag[i] != NO_TAG)
            .map(|i| self.line(i))
    }

    /// Iterates `(block, state, ready)` of every valid line, touching
    /// only those three lanes — the invariant checker's periodic sweep.
    pub fn iter_valid_meta(&self) -> impl Iterator<Item = (u64, CoherenceState, u64)> + '_ {
        self.tag
            .iter()
            .enumerate()
            .filter(|(_, &t)| t != NO_TAG)
            .map(|(i, &t)| (t, self.state[i], self.ready[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways.
        CacheArray::new(CacheGeometry::new(256, 2))
    }

    #[test]
    fn geometry_derives_sets_and_lines() {
        let g = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.set_of(64), 0);
        assert_eq!(g.set_of(65), 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_geometry_panics() {
        let _ = CacheGeometry::new(100, 3);
    }

    #[test]
    fn insert_then_lookup_hits() {
        let mut c = tiny();
        c.insert(4, CoherenceState::Modified, 0, None);
        let l = c.lookup(4).unwrap();
        assert_eq!(l.state(), CoherenceState::Modified);
        assert!(l.dirty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.insert(0, CoherenceState::Exclusive, 0, None);
        c.insert(2, CoherenceState::Exclusive, 0, None);
        c.touch(0); // 0 is now MRU; 2 is LRU
        let ev = c.insert(4, CoherenceState::Exclusive, 0, None).unwrap();
        assert_eq!(ev.block, 2);
        assert!(c.peek(0).is_some());
        assert!(c.peek(2).is_none());
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut c = tiny();
        c.insert(0, CoherenceState::Modified, 0, None);
        c.insert(2, CoherenceState::Exclusive, 0, None);
        c.insert(4, CoherenceState::Exclusive, 0, None);
        // LRU is block 0 (inserted first, never touched): dirty.
        let hit0 = c.peek(0);
        assert!(hit0.is_none());
    }

    #[test]
    fn eviction_flags_unused_prefetch() {
        let mut c = tiny();
        c.insert(0, CoherenceState::Modified, 0, Some(RfoOrigin::SpbBurst));
        c.insert(2, CoherenceState::Exclusive, 0, None);
        let ev = c.insert(4, CoherenceState::Exclusive, 0, None).unwrap();
        assert_eq!(ev.block, 0);
        assert_eq!(ev.unused_prefetch, Some(RfoOrigin::SpbBurst));
    }

    #[test]
    fn touched_prefetch_is_not_flagged_on_eviction() {
        let mut c = tiny();
        c.insert(0, CoherenceState::Modified, 0, Some(RfoOrigin::AtCommit));
        c.touch(0);
        c.insert(2, CoherenceState::Exclusive, 0, None);
        c.touch(2);
        let ev = c.insert(4, CoherenceState::Exclusive, 0, None).unwrap();
        assert_eq!(ev.block, 0);
        assert_eq!(ev.unused_prefetch, None);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(8, CoherenceState::Shared, 0, None);
        let old = c.invalidate(8).unwrap();
        assert_eq!(old.block, 8);
        assert!(c.peek(8).is_none());
        assert!(c.invalidate(8).is_none());
    }

    #[test]
    fn downgrade_clears_dirty_and_reports_it() {
        let mut c = tiny();
        c.insert(8, CoherenceState::Modified, 0, None);
        assert_eq!(c.downgrade(8), Some(true));
        let l = c.peek(8).unwrap();
        assert_eq!(l.state, CoherenceState::Shared);
        assert!(!l.dirty);
    }

    #[test]
    fn tag_checks_count_lookups() {
        let mut c = tiny();
        let _ = c.lookup(1);
        let _ = c.lookup(2);
        assert_eq!(c.tag_checks(), 2);
        c.reset_tag_checks();
        assert_eq!(c.tag_checks(), 0);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut c = tiny();
        c.insert(4, CoherenceState::Exclusive, 0, None);
        c.insert(4, CoherenceState::Exclusive, 0, None);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for b in 0..100u64 {
            let _ = c.insert(b, CoherenceState::Exclusive, 0, None);
        }
        assert!(c.valid_lines() <= c.geometry().lines());
    }

    #[test]
    fn line_mut_writes_are_visible_through_peek() {
        let mut c = tiny();
        c.insert(4, CoherenceState::Shared, 7, None);
        {
            let mut l = c.lookup(4).unwrap();
            l.set_state(CoherenceState::Modified);
            l.set_ready(99);
            l.set_dirty(true);
            assert_eq!(l.block(), 4);
        }
        let l = c.peek(4).unwrap();
        assert_eq!(l.state, CoherenceState::Modified);
        assert_eq!(l.ready, 99);
        assert!(l.dirty);
    }

    #[test]
    fn meta_walk_matches_iter_valid() {
        let mut c = tiny();
        c.insert(0, CoherenceState::Exclusive, 5, None);
        c.insert(3, CoherenceState::Shared, 9, None);
        let full: Vec<_> = c.iter_valid().map(|l| (l.block, l.state, l.ready)).collect();
        let meta: Vec<_> = c.iter_valid_meta().collect();
        assert_eq!(full, meta);
    }
}

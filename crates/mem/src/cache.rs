//! Set-associative cache arrays with LRU replacement.

use crate::line::{CacheLine, CoherenceState, RfoOrigin};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Block size in bytes (64 throughout the paper).
    pub block_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry, validating divisibility.
    ///
    /// # Panics
    ///
    /// Panics if the size is not an exact multiple of `ways * block_bytes`.
    pub fn new(size_bytes: u64, ways: usize) -> Self {
        let g = Self {
            size_bytes,
            ways,
            block_bytes: 64,
        };
        assert!(
            g.sets() > 0 && size_bytes.is_multiple_of(ways as u64 * g.block_bytes),
            "cache size must be a multiple of ways * block size"
        );
        g
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * self.block_bytes)) as usize
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// The set a block maps into.
    pub fn set_of(&self, block: u64) -> usize {
        (block % self.sets() as u64) as usize
    }
}

/// What `insert` evicted, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The block that was evicted.
    pub block: u64,
    /// Whether it held dirty data (needs write-back).
    pub dirty: bool,
    /// The prefetch origin if the victim was prefetched and never used.
    pub unused_prefetch: Option<RfoOrigin>,
}

/// One set-associative cache array (tags + metadata only; the simulator
/// does not model data values).
///
/// # Examples
///
/// ```
/// use spb_mem::cache::{CacheArray, CacheGeometry};
/// use spb_mem::line::CoherenceState;
///
/// let mut l1 = CacheArray::new(CacheGeometry::new(32 * 1024, 8));
/// assert!(l1.lookup(42).is_none());
/// l1.insert(42, CoherenceState::Exclusive, 10, None);
/// assert!(l1.lookup(42).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    geometry: CacheGeometry,
    lines: Vec<CacheLine>,
    lru_clock: u64,
    tag_checks: u64,
}

impl CacheArray {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        Self {
            geometry,
            lines: vec![CacheLine::invalid(); geometry.lines()],
            lru_clock: 0,
            tag_checks: 0,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of tag-array checks performed so far (Figure 13's metric).
    pub fn tag_checks(&self) -> u64 {
        self.tag_checks
    }

    /// Resets the tag-check counter (end of warm-up).
    pub fn reset_tag_checks(&mut self) {
        self.tag_checks = 0;
    }

    fn set_range(&self, block: u64) -> std::ops::Range<usize> {
        let set = self.geometry.set_of(block);
        let start = set * self.geometry.ways;
        start..start + self.geometry.ways
    }

    /// Looks up `block`, counting one tag check. Does **not** update LRU;
    /// use [`CacheArray::touch`] on a demand access.
    pub fn lookup(&mut self, block: u64) -> Option<&mut CacheLine> {
        self.tag_checks += 1;
        let range = self.set_range(block);
        self.lines[range]
            .iter_mut()
            .find(|l| l.is_valid() && l.block == block)
    }

    /// Peeks at `block` without counting a tag check or taking `&mut`.
    pub fn peek(&self, block: u64) -> Option<&CacheLine> {
        let range = self.set_range(block);
        self.lines[range]
            .iter()
            .find(|l| l.is_valid() && l.block == block)
    }

    /// Marks `block` as most recently used and demanded.
    pub fn touch(&mut self, block: u64) {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let range = self.set_range(block);
        if let Some(l) = self.lines[range]
            .iter_mut()
            .find(|l| l.is_valid() && l.block == block)
        {
            l.lru = clock;
            l.used = true;
        }
    }

    /// Inserts `block` with `state`, ready at cycle `ready`, evicting the
    /// LRU way if the set is full. Prefetched fills carry their origin.
    ///
    /// Returns the eviction, if a valid line was displaced.
    ///
    /// # Panics
    ///
    /// Panics if the block is already present (callers must `lookup`
    /// first; double-insertion would duplicate a tag, which real
    /// hardware cannot represent).
    pub fn insert(
        &mut self,
        block: u64,
        state: CoherenceState,
        ready: u64,
        prefetch: Option<RfoOrigin>,
    ) -> Option<Eviction> {
        assert!(
            self.peek(block).is_none(),
            "block {block:#x} inserted twice"
        );
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let range = self.set_range(block);
        let set = &mut self.lines[range];
        // Prefer an invalid way; otherwise evict the LRU way.
        let victim_idx = set.iter().position(|l| !l.is_valid()).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("sets are never empty")
        });
        let victim = set[victim_idx];
        let eviction = victim.is_valid().then(|| Eviction {
            block: victim.block,
            dirty: victim.dirty,
            unused_prefetch: victim.prefetch.filter(|_| !victim.used),
        });
        set[victim_idx] = CacheLine {
            block,
            state,
            ready,
            dirty: state == CoherenceState::Modified,
            prefetch,
            used: false,
            lru: clock,
        };
        eviction
    }

    /// Invalidates `block` (coherence invalidation or recall), returning
    /// the line it held.
    pub fn invalidate(&mut self, block: u64) -> Option<CacheLine> {
        let range = self.set_range(block);
        let line = self.lines[range]
            .iter_mut()
            .find(|l| l.is_valid() && l.block == block)?;
        let old = *line;
        *line = CacheLine::invalid();
        Some(old)
    }

    /// Downgrades `block` to `Shared` (remote read of an owned line),
    /// returning whether it was dirty.
    pub fn downgrade(&mut self, block: u64) -> Option<bool> {
        let range = self.set_range(block);
        let line = self.lines[range]
            .iter_mut()
            .find(|l| l.is_valid() && l.block == block)?;
        let was_dirty = line.dirty;
        line.state = CoherenceState::Shared;
        line.dirty = false;
        Some(was_dirty)
    }

    /// Number of valid lines (test/debug helper).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.is_valid()).count()
    }

    /// Iterates over all valid lines.
    pub fn iter_valid(&self) -> impl Iterator<Item = &CacheLine> {
        self.lines.iter().filter(|l| l.is_valid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways.
        CacheArray::new(CacheGeometry::new(256, 2))
    }

    #[test]
    fn geometry_derives_sets_and_lines() {
        let g = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.set_of(64), 0);
        assert_eq!(g.set_of(65), 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_geometry_panics() {
        let _ = CacheGeometry::new(100, 3);
    }

    #[test]
    fn insert_then_lookup_hits() {
        let mut c = tiny();
        c.insert(4, CoherenceState::Modified, 0, None);
        let l = c.lookup(4).unwrap();
        assert_eq!(l.state, CoherenceState::Modified);
        assert!(l.dirty);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.insert(0, CoherenceState::Exclusive, 0, None);
        c.insert(2, CoherenceState::Exclusive, 0, None);
        c.touch(0); // 0 is now MRU; 2 is LRU
        let ev = c.insert(4, CoherenceState::Exclusive, 0, None).unwrap();
        assert_eq!(ev.block, 2);
        assert!(c.peek(0).is_some());
        assert!(c.peek(2).is_none());
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut c = tiny();
        c.insert(0, CoherenceState::Modified, 0, None);
        c.insert(2, CoherenceState::Exclusive, 0, None);
        c.insert(4, CoherenceState::Exclusive, 0, None);
        // LRU is block 0 (inserted first, never touched): dirty.
        let hit0 = c.peek(0);
        assert!(hit0.is_none());
    }

    #[test]
    fn eviction_flags_unused_prefetch() {
        let mut c = tiny();
        c.insert(0, CoherenceState::Modified, 0, Some(RfoOrigin::SpbBurst));
        c.insert(2, CoherenceState::Exclusive, 0, None);
        let ev = c.insert(4, CoherenceState::Exclusive, 0, None).unwrap();
        assert_eq!(ev.block, 0);
        assert_eq!(ev.unused_prefetch, Some(RfoOrigin::SpbBurst));
    }

    #[test]
    fn touched_prefetch_is_not_flagged_on_eviction() {
        let mut c = tiny();
        c.insert(0, CoherenceState::Modified, 0, Some(RfoOrigin::AtCommit));
        c.touch(0);
        c.insert(2, CoherenceState::Exclusive, 0, None);
        c.touch(2);
        let ev = c.insert(4, CoherenceState::Exclusive, 0, None).unwrap();
        assert_eq!(ev.block, 0);
        assert_eq!(ev.unused_prefetch, None);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(8, CoherenceState::Shared, 0, None);
        let old = c.invalidate(8).unwrap();
        assert_eq!(old.block, 8);
        assert!(c.peek(8).is_none());
        assert!(c.invalidate(8).is_none());
    }

    #[test]
    fn downgrade_clears_dirty_and_reports_it() {
        let mut c = tiny();
        c.insert(8, CoherenceState::Modified, 0, None);
        assert_eq!(c.downgrade(8), Some(true));
        let l = c.peek(8).unwrap();
        assert_eq!(l.state, CoherenceState::Shared);
        assert!(!l.dirty);
    }

    #[test]
    fn tag_checks_count_lookups() {
        let mut c = tiny();
        let _ = c.lookup(1);
        let _ = c.lookup(2);
        assert_eq!(c.tag_checks(), 2);
        c.reset_tag_checks();
        assert_eq!(c.tag_checks(), 0);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut c = tiny();
        c.insert(4, CoherenceState::Exclusive, 0, None);
        c.insert(4, CoherenceState::Exclusive, 0, None);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for b in 0..100u64 {
            let _ = c.insert(b, CoherenceState::Exclusive, 0, None);
        }
        assert!(c.valid_lines() <= c.geometry().lines());
    }
}

//! Memory-hierarchy substrate for the SPB simulator.
//!
//! The paper evaluates SPB inside gem5's Ruby memory system: private
//! L1/L2 caches, a shared banked L3, a MESI protocol with prefetch
//! transient states (`PF_IM` in the paper's Figure 4), MSHRs, a stride
//! prefetcher, and the aggressive/adaptive prefetchers of Srinath et al.
//! for the Figure 16 comparison. This crate implements all of that:
//!
//! - [`cache`]: set-associative cache arrays with LRU replacement and
//!   per-line coherence state, fill time, dirtiness and prefetch origin.
//! - [`mshr`]: miss-status holding registers with merge semantics.
//! - [`dram`]: a bandwidth-limited memory port.
//! - [`directory`]: a full-map MESI directory for multi-core runs
//!   (single-writer / multiple-reader invariant).
//! - [`prefetch`]: the baseline stride prefetcher plus the aggressive
//!   and feedback-directed (adaptive) variants.
//! - [`system`]: [`system::MemorySystem`] — the assembled hierarchy the
//!   CPU model talks to, including the L1-controller *prefetch-burst
//!   queue* that SPB targets, and the prefetch-outcome classification
//!   (successful / late / early / never-used) behind Figure 11.
//! - [`fault`]: deterministic, seeded fault injection (delayed prefetch
//!   acks, DRAM latency spikes, MSHR exhaustion, dropped bursts).
//! - [`checker`]: coherence invariant checking — structured
//!   [`checker::InvariantViolation`]s with per-block event history.
//!
//! # Examples
//!
//! ```
//! use spb_mem::system::{MemoryConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemoryConfig::default());
//! // A cold load misses all the way to DRAM…
//! let r1 = mem.load(0, 0x4000, 0);
//! assert!(r1.ready > 100);
//! // …and a reuse of the same block hits in L1.
//! let r2 = mem.load(0, 0x4008, r1.ready);
//! assert_eq!(r2.ready, r1.ready + mem.config().l1_latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockmap;
pub mod cache;
pub mod checker;
pub mod directory;
pub mod dram;
pub mod fault;
pub mod line;
pub mod mshr;
pub mod prefetch;
pub mod system;

pub use checker::{InvariantKind, InvariantViolation};
pub use fault::{FaultConfig, FaultCounts};
pub use line::{CoherenceState, RfoOrigin};
pub use system::{MemoryConfig, MemorySystem};

//! A bandwidth-limited DRAM port with an open-row model.
//!
//! The last level of the hierarchy is modelled as a small number of
//! channels, each able to start a new transfer every `service_interval`
//! cycles. Each channel keeps one **open row**: an access to the open
//! row pays `row_hit_latency`; any other access pays the full
//! `row_miss_latency` (precharge + activate + transfer).
//!
//! Both effects matter to the paper's phenomenon: channel queueing is
//! what makes a 64-block SPB page burst take noticeably longer than a
//! single miss, and the open row is why a *sequential* burst streams
//! faster per block than scattered misses — 4 KiB pages sit inside one
//! 8 KiB DRAM row, so a page burst is one activation plus a train of
//! row hits.

/// Configuration of the DRAM port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Latency of an access that misses the open row
    /// (precharge + activate + CAS + transfer).
    pub latency: u64,
    /// Latency of an access hitting the open row (CAS + transfer).
    pub row_hit_latency: u64,
    /// Cycles between successive transfer starts on one channel.
    pub service_interval: u64,
    /// Number of independent channels.
    pub channels: usize,
    /// Cache blocks per DRAM row (8 KiB row / 64 B blocks = 128).
    pub row_blocks: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // ~85 ns row-miss / ~65 ns row-hit at 2 GHz, with bandwidth
        // typical of dual-channel DDR4: one 64 B line every ~4 cycles
        // per channel.
        Self {
            latency: 175,
            row_hit_latency: 130,
            service_interval: 4,
            channels: 2,
            row_blocks: 128,
        }
    }
}

/// The DRAM port: per-channel availability and open rows.
///
/// # Examples
///
/// ```
/// use spb_mem::dram::{DramConfig, DramPort};
///
/// let mut dram = DramPort::new(DramConfig {
///     latency: 100,
///     row_hit_latency: 60,
///     service_interval: 10,
///     channels: 1,
///     row_blocks: 128,
/// });
/// let a = dram.access(0, 0);   // row miss: opens the row
/// let b = dram.access(0, 1);   // same row: hit, but queues behind a
/// assert_eq!(a, 100);
/// assert_eq!(b, 70, "row hit at the next transfer slot");
/// ```
#[derive(Debug, Clone)]
pub struct DramPort {
    config: DramConfig,
    next_free: Vec<u64>,
    open_row: Vec<Option<u64>>,
    accesses: u64,
    row_hits: u64,
    writebacks: u64,
}

impl DramPort {
    /// Creates an idle port (all rows closed).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels, zero interval, or
    /// zero row size, or if the row-hit latency exceeds the miss
    /// latency.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        assert!(
            config.service_interval > 0,
            "service interval must be positive"
        );
        assert!(config.row_blocks > 0, "rows must hold at least one block");
        assert!(
            config.row_hit_latency <= config.latency,
            "a row hit cannot be slower than a row miss"
        );
        Self {
            next_free: vec![0; config.channels],
            open_row: vec![None; config.channels],
            config,
            accesses: 0,
            row_hits: 0,
            writebacks: 0,
        }
    }

    /// The port's configuration.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Total read/fill accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that hit an open row.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Total write-backs absorbed.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Channels still servicing a request at `now` — a cheap queue-
    /// pressure reading sampled by the observability layer.
    pub fn busy_channels(&self, now: u64) -> usize {
        self.next_free.iter().filter(|&&t| t > now).count()
    }

    fn channel_and_row(&self, block: u64) -> (usize, u64) {
        let row = block / self.config.row_blocks;
        ((row as usize) % self.config.channels, row)
    }

    fn latency_for(&mut self, ch: usize, row: u64) -> u64 {
        if self.open_row[ch] == Some(row) {
            self.row_hits += 1;
            self.config.row_hit_latency
        } else {
            self.open_row[ch] = Some(row);
            self.config.latency
        }
    }

    /// Services a fill for `block` starting no earlier than `now`;
    /// returns the cycle the data arrives. Whole rows map to one
    /// channel, so a sequential burst streams row hits after its first
    /// activation.
    pub fn access(&mut self, now: u64, block: u64) -> u64 {
        self.accesses += 1;
        let (ch, row) = self.channel_and_row(block);
        let start = self.next_free[ch].max(now);
        self.next_free[ch] = start + self.config.service_interval;
        start + self.latency_for(ch, row)
    }

    /// Absorbs a write-back: consumes channel bandwidth (and the open
    /// row) but nobody waits for its completion.
    pub fn writeback(&mut self, now: u64, block: u64) {
        self.writebacks += 1;
        let (ch, row) = self.channel_and_row(block);
        let start = self.next_free[ch].max(now);
        self.next_free[ch] = start + self.config.service_interval;
        let _ = self.latency_for(ch, row);
    }

    /// Resets counters (end of warm-up) but keeps channel/row state.
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.row_hits = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_channel() -> DramPort {
        DramPort::new(DramConfig {
            latency: 100,
            row_hit_latency: 60,
            service_interval: 8,
            channels: 1,
            row_blocks: 128,
        })
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut d = one_channel();
        assert_eq!(d.access(5, 0), 105);
        assert_eq!(d.row_hits(), 0);
    }

    #[test]
    fn same_row_accesses_hit_after_activation() {
        let mut d = one_channel();
        let a = d.access(0, 0);
        let b = d.access(0, 1);
        let c = d.access(0, 127);
        assert_eq!(a, 100);
        assert_eq!(b, 68, "row hit from the second transfer slot");
        assert_eq!(c, 76);
        assert_eq!(d.row_hits(), 2);
    }

    #[test]
    fn row_conflict_pays_full_latency() {
        let mut d = one_channel();
        let _ = d.access(0, 0); // row 0 open
        let b = d.access(0, 128); // row 1: conflict
        assert_eq!(b, 108, "8 (queue) + 100 (row miss)");
        let c = d.access(0, 0); // row 0 again: conflict again
        assert_eq!(c, 116);
        assert_eq!(d.row_hits(), 0);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut d = one_channel();
        let a = d.access(0, 0);
        let b = d.access(0, 1);
        let c = d.access(0, 2);
        assert_eq!(a, 100);
        assert_eq!(b, 68);
        assert_eq!(c, 76);
    }

    #[test]
    fn idle_gaps_do_not_accumulate_bandwidth() {
        let mut d = one_channel();
        let _ = d.access(0, 0);
        // Long idle period: the channel is free again; the row stayed open.
        let late = d.access(1000, 1);
        assert_eq!(late, 1060);
    }

    #[test]
    fn channels_interleave_by_row() {
        let mut d = DramPort::new(DramConfig {
            latency: 100,
            row_hit_latency: 60,
            service_interval: 8,
            channels: 2,
            row_blocks: 128,
        });
        let a = d.access(0, 0); // row 0 -> channel 0
        let b = d.access(0, 128); // row 1 -> channel 1
        assert_eq!(a, 100);
        assert_eq!(b, 100, "different channels serve in parallel");
    }

    #[test]
    fn writebacks_consume_bandwidth_and_rows() {
        let mut d = one_channel();
        d.writeback(0, 0);
        // The writeback opened row 0: the following fill row-hits but
        // queues behind the writeback's slot.
        let a = d.access(0, 1);
        assert_eq!(a, 68);
        assert_eq!(d.writebacks(), 1);
    }

    #[test]
    fn reset_counters_keeps_timing_and_rows() {
        let mut d = one_channel();
        let _ = d.access(0, 0);
        d.reset_counters();
        assert_eq!(d.accesses(), 0);
        assert_eq!(d.row_hits(), 0);
        let b = d.access(0, 1);
        assert_eq!(b, 68, "row state survives the counter reset");
    }

    #[test]
    #[should_panic(expected = "row hit cannot be slower")]
    fn invalid_row_latency_rejected() {
        let _ = DramPort::new(DramConfig {
            latency: 50,
            row_hit_latency: 60,
            service_interval: 1,
            channels: 1,
            row_blocks: 128,
        });
    }
}

//! Generic L1 cache prefetchers.
//!
//! Three variants, matching the paper's comparisons:
//!
//! - [`PrefetcherKind::Stride`]: the baseline "stream prefetcher
//!   (stride)" of Table I — a PC-indexed stride table with a low degree.
//! - [`PrefetcherKind::Aggressive`]: the fixed aggressive configuration
//!   (high degree and distance) from Srinath et al.'s comparison point.
//! - [`PrefetcherKind::Adaptive`]: feedback-directed prefetching (FDP):
//!   aggressiveness moves up or down with measured prefetch accuracy.
//!
//! All variants train on *demand* L1 accesses (loads and stores) and
//! emit candidate block addresses; the memory system decides state
//! (read vs ownership) and issues them. As the paper's §III-A explains,
//! none of these can cover a store burst: their window is anchored to
//! recent demand accesses, so at best they run a fixed distance ahead.

/// Which generic prefetcher the L1 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetcherKind {
    /// No generic prefetcher.
    None,
    /// Baseline stride/stream prefetcher (degree 1).
    #[default]
    Stride,
    /// Fixed aggressive prefetcher (degree 4, distance 4).
    Aggressive,
    /// Feedback-directed adaptive prefetcher (degree 1..=4).
    Adaptive,
    /// Page-footprint spatial prefetcher (stealth/SMS class, §VII-A).
    Spatial,
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc: u64,
    last_block: u64,
    stride: i64,
    confidence: u8,
}

/// Aggressiveness level: (degree, distance) in blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggressiveness {
    /// Blocks prefetched per trigger.
    pub degree: u32,
    /// How far ahead (in strides) the first prefetch lands.
    pub distance: u32,
}

/// FDP accuracy thresholds (from the feedback-directed prefetching
/// scheme: accuracy above the high threshold increases aggressiveness,
/// below the low threshold decreases it).
const FDP_HIGH_ACCURACY: f64 = 0.75;
const FDP_LOW_ACCURACY: f64 = 0.40;
/// FDP evaluates feedback every this many issued prefetches.
const FDP_WINDOW: u64 = 256;

/// The PC-indexed stride prefetcher with optional feedback throttling.
///
/// # Examples
///
/// ```
/// use spb_mem::prefetch::{Prefetcher, PrefetcherKind};
///
/// let mut p = Prefetcher::new(PrefetcherKind::Stride);
/// let mut out = Vec::new();
/// // Train a +1 block stride at one PC.
/// for b in 0..4u64 {
///     out.clear();
///     p.train(0x400, b, &mut out);
/// }
/// assert!(out.contains(&4), "after training, the next block is prefetched");
/// ```
#[derive(Debug, Clone)]
pub struct Prefetcher {
    kind: PrefetcherKind,
    table: Vec<StrideEntry>,
    spatial: Option<SpatialPrefetcher>,
    aggressiveness: Aggressiveness,
    // FDP feedback state.
    issued_window: u64,
    useful_window: u64,
    level_idx: usize,
    issued_total: u64,
}

/// FDP's aggressiveness ladder.
const FDP_LEVELS: [Aggressiveness; 4] = [
    Aggressiveness {
        degree: 1,
        distance: 1,
    },
    Aggressiveness {
        degree: 2,
        distance: 2,
    },
    Aggressiveness {
        degree: 3,
        distance: 3,
    },
    Aggressiveness {
        degree: 4,
        distance: 4,
    },
];

impl Prefetcher {
    /// Creates a prefetcher of the given kind with a 256-entry table.
    pub fn new(kind: PrefetcherKind) -> Self {
        let aggressiveness = match kind {
            PrefetcherKind::None | PrefetcherKind::Stride | PrefetcherKind::Spatial => {
                Aggressiveness {
                    degree: 1,
                    distance: 1,
                }
            }
            PrefetcherKind::Aggressive => Aggressiveness {
                degree: 4,
                distance: 4,
            },
            PrefetcherKind::Adaptive => FDP_LEVELS[1],
        };
        Self {
            kind,
            spatial: (kind == PrefetcherKind::Spatial).then(SpatialPrefetcher::new),
            table: vec![StrideEntry::default(); 256],
            aggressiveness,
            issued_window: 0,
            useful_window: 0,
            level_idx: 1,
            issued_total: 0,
        }
    }

    /// The prefetcher's kind.
    pub fn kind(&self) -> PrefetcherKind {
        self.kind
    }

    /// Current aggressiveness (degree/distance).
    pub fn aggressiveness(&self) -> Aggressiveness {
        self.aggressiveness
    }

    /// Total prefetch candidates issued.
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }

    /// Reports that a previously prefetched block was used by a demand
    /// access (FDP accuracy feedback).
    pub fn feedback_useful(&mut self) {
        self.useful_window += 1;
    }

    /// Trains on a demand access to `block` from `pc`; pushes candidate
    /// prefetch block addresses into `out`.
    pub fn train(&mut self, pc: u64, block: u64, out: &mut Vec<u64>) {
        if self.kind == PrefetcherKind::None {
            return;
        }
        if let Some(spatial) = &mut self.spatial {
            let before = out.len();
            spatial.train(block, out);
            self.issued_total += (out.len() - before) as u64;
            return;
        }
        let idx = (pc as usize ^ (pc >> 8) as usize) % self.table.len();
        let e = &mut self.table[idx];
        if e.pc != pc {
            *e = StrideEntry {
                pc,
                last_block: block,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let delta = block as i64 - e.last_block as i64;
        if delta == 0 {
            // Same block (e.g. successive 8-byte stores): no retrain.
            return;
        }
        if delta == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = delta;
            e.confidence = 0;
        }
        e.last_block = block;
        if e.confidence >= 2 {
            let before = out.len();
            let Aggressiveness { degree, distance } = self.aggressiveness;
            for k in 0..degree as i64 {
                let target = block as i64 + e.stride * (distance as i64 + k);
                if target >= 0 {
                    out.push(target as u64);
                }
            }
            let pushed = (out.len() - before) as u64;
            self.issued_total += pushed;
            self.issued_window += pushed;
            self.maybe_adapt();
        }
    }

    fn maybe_adapt(&mut self) {
        if self.kind != PrefetcherKind::Adaptive || self.issued_window < FDP_WINDOW {
            return;
        }
        let accuracy = self.useful_window as f64 / self.issued_window as f64;
        if accuracy >= FDP_HIGH_ACCURACY {
            self.level_idx = (self.level_idx + 1).min(FDP_LEVELS.len() - 1);
        } else if accuracy < FDP_LOW_ACCURACY {
            self.level_idx = self.level_idx.saturating_sub(1);
        }
        self.aggressiveness = FDP_LEVELS[self.level_idx];
        self.issued_window = 0;
        self.useful_window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_stream(
        p: &mut Prefetcher,
        pc: u64,
        blocks: impl IntoIterator<Item = u64>,
    ) -> Vec<u64> {
        let mut all = Vec::new();
        for b in blocks {
            p.train(pc, b, &mut all);
        }
        all
    }

    #[test]
    fn none_kind_never_prefetches() {
        let mut p = Prefetcher::new(PrefetcherKind::None);
        let out = train_stream(&mut p, 0x1, 0..100);
        assert!(out.is_empty());
    }

    #[test]
    fn stride_learns_unit_stride() {
        let mut p = Prefetcher::new(PrefetcherKind::Stride);
        let out = train_stream(&mut p, 0x10, 0..6);
        assert!(out.contains(&4));
        assert!(out.contains(&5));
    }

    #[test]
    fn stride_learns_negative_stride() {
        let mut p = Prefetcher::new(PrefetcherKind::Stride);
        let out = train_stream(&mut p, 0x10, [100u64, 98, 96, 94, 92]);
        assert!(out.contains(&90), "out: {out:?}");
    }

    #[test]
    fn same_block_accesses_do_not_disturb_training() {
        let mut p = Prefetcher::new(PrefetcherKind::Stride);
        // 8 stores per block, as in a store burst.
        let seq = [0u64, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3];
        let out = train_stream(&mut p, 0x20, seq);
        assert!(out.contains(&4), "out: {out:?}");
    }

    #[test]
    fn aggressive_issues_degree_four() {
        let mut p = Prefetcher::new(PrefetcherKind::Aggressive);
        let mut out = Vec::new();
        for b in 0..4u64 {
            out.clear();
            p.train(0x30, b, &mut out);
        }
        assert_eq!(out.len(), 4);
        assert!(out.contains(&7)); // distance 4 + degree up to 4 from block 3
    }

    #[test]
    fn pc_conflict_resets_entry() {
        let mut p = Prefetcher::new(PrefetcherKind::Stride);
        let _ = train_stream(&mut p, 0x10, 0..6);
        // A different PC hashing elsewhere must not inherit training.
        let mut out = Vec::new();
        p.train(0x11, 100, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn adaptive_ramps_up_with_good_feedback() {
        let mut p = Prefetcher::new(PrefetcherKind::Adaptive);
        let start = p.aggressiveness().degree;
        // Every issued prefetch is useful.
        let mut out = Vec::new();
        for b in 0..2000u64 {
            out.clear();
            p.train(0x40, b, &mut out);
            for _ in 0..out.len() {
                p.feedback_useful();
            }
        }
        assert!(p.aggressiveness().degree > start);
    }

    #[test]
    fn adaptive_throttles_down_with_bad_feedback() {
        let mut p = Prefetcher::new(PrefetcherKind::Adaptive);
        let mut out = Vec::new();
        for b in 0..2000u64 {
            out.clear();
            p.train(0x40, b, &mut out);
            // no feedback_useful: accuracy 0
        }
        assert_eq!(p.aggressiveness().degree, 1);
    }

    #[test]
    fn issued_total_accumulates() {
        let mut p = Prefetcher::new(PrefetcherKind::Stride);
        let out = train_stream(&mut p, 0x50, 0..10);
        assert_eq!(p.issued_total(), out.len() as u64);
        assert!(p.issued_total() > 0);
    }
}

// ---------------------------------------------------------------------------
// Spatial (page-footprint) prefetcher
// ---------------------------------------------------------------------------

/// A page-learning spatial prefetcher (the §VII-A comparison class:
/// stealth prefetching / spatial pattern prediction).
///
/// It records which blocks of a page were touched during a *generation*
/// (first access until the page's tracking slot is recycled) and, when
/// the same page is accessed again in a later generation, prefetches
/// the recorded footprint at once.
///
/// The paper's argument against this class for store bursts: a
/// `memcpy`/`clear_page` page is typically written **once** in the whole
/// program, so there is no second access to replay the footprint on —
/// the `spatial` experiment demonstrates exactly that, while the same
/// prefetcher does help re-referenced footprints.
#[derive(Debug, Clone)]
pub struct SpatialPrefetcher {
    /// Active generations: (page, footprint bitvec), small FIFO.
    active: Vec<(u64, u64)>,
    /// Learned footprints: direct-mapped by page, (page, bitvec).
    pht: Vec<(u64, u64)>,
    issued_total: u64,
    replays: u64,
}

impl Default for SpatialPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl SpatialPrefetcher {
    /// Creates the prefetcher with a 32-generation active table and a
    /// 1024-entry pattern history table.
    pub fn new() -> Self {
        Self {
            active: Vec::with_capacity(32),
            pht: vec![(u64::MAX, 0); 1024],
            issued_total: 0,
            replays: 0,
        }
    }

    /// Total prefetch candidates issued.
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }

    /// Footprint replays triggered (re-accessed pages with a learned
    /// footprint).
    pub fn replays(&self) -> u64 {
        self.replays
    }

    fn pht_slot(&self, page: u64) -> usize {
        (page as usize) % self.pht.len()
    }

    /// Trains on a demand access to `block`; pushes absolute block
    /// candidates into `out` when a learned footprint replays.
    pub fn train(&mut self, block: u64, out: &mut Vec<u64>) {
        let page = block / 64;
        let offset = block % 64;
        if let Some((_, fp)) = self.active.iter_mut().find(|(p, _)| *p == page) {
            *fp |= 1 << offset;
            return;
        }
        // First access of a new generation for this page.
        let slot = self.pht_slot(page);
        let (learned_page, learned_fp) = self.pht[slot];
        if learned_page == page && learned_fp != 0 {
            // Replay the learned footprint (minus the trigger block).
            self.replays += 1;
            let before = out.len();
            for off in 0..64u64 {
                if off != offset && learned_fp & (1 << off) != 0 {
                    out.push(page * 64 + off);
                }
            }
            self.issued_total += (out.len() - before) as u64;
        }
        // Start tracking; recycle the oldest generation into the PHT.
        if self.active.len() == 32 {
            let (old_page, old_fp) = self.active.remove(0);
            let slot = self.pht_slot(old_page);
            self.pht[slot] = (old_page, old_fp);
        }
        self.active.push((page, 1 << offset));
    }
}

#[cfg(test)]
mod spatial_tests {
    use super::*;

    fn touch_page(p: &mut SpatialPrefetcher, page: u64, offsets: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for &off in offsets {
            p.train(page * 64 + off, &mut out);
        }
        out
    }

    /// Churns the active table so `page`'s generation retires to the PHT.
    fn retire_generations(p: &mut SpatialPrefetcher) {
        for filler in 10_000..10_040u64 {
            let _ = touch_page(p, filler, &[0]);
        }
    }

    #[test]
    fn replays_learned_footprint_on_reaccess() {
        let mut p = SpatialPrefetcher::new();
        let _ = touch_page(&mut p, 5, &[3, 7, 10]);
        retire_generations(&mut p);
        let out = touch_page(&mut p, 5, &[3]);
        let mut expect = vec![5 * 64 + 7, 5 * 64 + 10];
        expect.sort_unstable();
        let mut got = out.clone();
        got.sort_unstable();
        assert_eq!(got, expect, "footprint minus the trigger block");
        assert_eq!(p.replays(), 1);
    }

    #[test]
    fn one_shot_pages_never_replay() {
        let mut p = SpatialPrefetcher::new();
        // Touch 1000 distinct pages once each (a store burst's life).
        for page in 0..1000u64 {
            let out = touch_page(&mut p, page, &[0, 1, 2, 3]);
            assert!(out.is_empty(), "page {page} replayed without reuse");
        }
        assert_eq!(p.replays(), 0);
        assert_eq!(p.issued_total(), 0);
    }

    #[test]
    fn footprint_accumulates_within_a_generation() {
        let mut p = SpatialPrefetcher::new();
        let _ = touch_page(&mut p, 9, &[0, 0, 1, 1, 2]);
        retire_generations(&mut p);
        let out = touch_page(&mut p, 9, &[0]);
        assert_eq!(out.len(), 2, "offsets 1 and 2 replay");
    }

    #[test]
    fn pht_conflicts_evict_older_pages() {
        let mut p = SpatialPrefetcher::new();
        let _ = touch_page(&mut p, 5, &[1]);
        retire_generations(&mut p);
        // Page 5 + 1024 maps to the same PHT slot.
        let _ = touch_page(&mut p, 5 + 1024, &[2]);
        retire_generations(&mut p);
        let out = touch_page(&mut p, 5, &[1]);
        assert!(
            out.is_empty(),
            "conflicting page must have evicted the footprint"
        );
    }
}

//! Deterministic fault injection for the memory hierarchy.
//!
//! The paper's whole argument rests on SPB degrading *gracefully* when
//! ownership prefetches are late, denied, or stolen (the `IM`/`PF_IM`
//! races of Figure 4). This module makes that adversarial timing
//! reproducible: a seeded [`FaultPlan`] decides, per event, whether to
//!
//! - **delay a prefetch ack** (the `GetPFx` response arrives late),
//! - **spike DRAM latency** (a fill suddenly costs hundreds of extra
//!   cycles, as under heavy co-runner traffic),
//! - **force MSHR exhaustion** (a prefetch finds no free fill buffer and
//!   must wait in the L1 controller's queue), or
//! - **drop an SPB burst request** outright (the controller sheds load),
//!
//! and [`crate::system::MemorySystem`] applies the outcome at the
//! matching injection point. Decisions are a pure function of the seed
//! and a per-site event counter, so a faulty run is exactly as
//! reproducible as a clean one.
//!
//! With every rate at zero ([`FaultConfig::none`], the default) the plan
//! is disabled and the injection points are never consulted: a run with
//! faults off is bit-identical to one built before this module existed.
//!
//! # Examples
//!
//! ```
//! use spb_mem::fault::{FaultConfig, FaultPlan};
//!
//! let mut plan = FaultPlan::new(FaultConfig::uniform(1.0, 7));
//! assert!(plan.config().enabled());
//! assert!(plan.dram_spike().is_some(), "rate 1.0 always fires");
//! assert!(FaultPlan::new(FaultConfig::none()).dram_spike().is_none());
//! ```

/// Rates and magnitudes of the injectable faults.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per
/// event. The default ([`FaultConfig::none`]) disables everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Probability that a store-prefetch ack is delayed.
    pub ack_delay_rate: f64,
    /// Extra cycles a delayed ack arrives late.
    pub ack_delay_cycles: u64,
    /// Probability that a DRAM fill pays a latency spike.
    pub dram_spike_rate: f64,
    /// Extra cycles a spiked DRAM fill costs.
    pub dram_spike_cycles: u64,
    /// Probability that a prefetch finds the MSHR file "full" even when
    /// entries are free (transient fill-buffer denial).
    pub mshr_exhaust_rate: f64,
    /// Probability that a block popped from the SPB burst queue is
    /// dropped instead of issued.
    pub burst_drop_rate: f64,
}

impl FaultConfig {
    /// All rates zero: no faults, zero perturbation.
    pub fn none() -> Self {
        Self {
            seed: 0,
            ack_delay_rate: 0.0,
            ack_delay_cycles: 0,
            dram_spike_rate: 0.0,
            dram_spike_cycles: 0,
            mshr_exhaust_rate: 0.0,
            burst_drop_rate: 0.0,
        }
    }

    /// Every fault kind at the same `rate`, with representative
    /// magnitudes (a delayed ack costs ~a DRAM round trip, a DRAM spike
    /// roughly doubles the fill).
    pub fn uniform(rate: f64, seed: u64) -> Self {
        Self {
            seed,
            ack_delay_rate: rate,
            ack_delay_cycles: 200,
            dram_spike_rate: rate,
            dram_spike_cycles: 400,
            mshr_exhaust_rate: rate,
            burst_drop_rate: rate,
        }
    }

    /// Whether any fault can ever fire.
    pub fn enabled(&self) -> bool {
        self.ack_delay_rate > 0.0
            || self.dram_spike_rate > 0.0
            || self.mshr_exhaust_rate > 0.0
            || self.burst_drop_rate > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// How many faults of each kind actually fired (observability; these
/// also feed the `faults_*` counters in
/// [`crate::system::MemStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Prefetch acks delayed.
    pub acks_delayed: u64,
    /// DRAM fills spiked.
    pub dram_spikes: u64,
    /// Prefetches denied an MSHR entry.
    pub mshr_exhausted: u64,
    /// SPB burst blocks dropped.
    pub bursts_dropped: u64,
}

/// Decision sites, kept distinct so the streams for different fault
/// kinds never alias even when consulted in different orders.
#[derive(Debug, Clone, Copy)]
enum Site {
    AckDelay = 1,
    DramSpike = 2,
    MshrExhaust = 3,
    BurstDrop = 4,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded, deterministic fault decision stream.
///
/// Each query hashes `(seed, site, per-site counter)`, so the k-th
/// decision of each kind is fixed by the seed alone — independent of
/// simulated time and of the other fault kinds.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    draws: [u64; 5],
    counts: FaultCounts,
}

impl FaultPlan {
    /// A plan following `config`.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            draws: [0; 5],
            counts: FaultCounts::default(),
        }
    }

    /// The configuration driving this plan.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Faults fired so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Resets the fired-fault counters (end of warm-up). The decision
    /// stream itself keeps advancing — determinism comes from the draw
    /// counters, which are never reset.
    pub fn reset_counts(&mut self) {
        self.counts = FaultCounts::default();
    }

    fn roll(&mut self, site: Site, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let i = site as usize;
        let n = self.draws[i];
        self.draws[i] += 1;
        let h = splitmix64(self.config.seed ^ ((i as u64) << 56) ^ n);
        // Map to [0, 1): 53 explicitly-random bits, like rand's f64.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    /// Extra cycles to add to a store-prefetch ack, if this one is hit.
    pub fn ack_delay(&mut self) -> Option<u64> {
        if self.roll(Site::AckDelay, self.config.ack_delay_rate) {
            self.counts.acks_delayed += 1;
            Some(self.config.ack_delay_cycles)
        } else {
            None
        }
    }

    /// Extra cycles to add to a DRAM fill, if this one is hit.
    pub fn dram_spike(&mut self) -> Option<u64> {
        if self.roll(Site::DramSpike, self.config.dram_spike_rate) {
            self.counts.dram_spikes += 1;
            Some(self.config.dram_spike_cycles)
        } else {
            None
        }
    }

    /// Whether this prefetch is denied an MSHR entry (forced to queue).
    pub fn mshr_exhausted(&mut self) -> bool {
        let hit = self.roll(Site::MshrExhaust, self.config.mshr_exhaust_rate);
        if hit {
            self.counts.mshr_exhausted += 1;
        }
        hit
    }

    /// Whether this SPB burst block is dropped instead of issued.
    pub fn drop_burst_block(&mut self) -> bool {
        let hit = self.roll(Site::BurstDrop, self.config.burst_drop_rate);
        if hit {
            self.counts.bursts_dropped += 1;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let mut p = FaultPlan::new(FaultConfig::none());
        for _ in 0..1000 {
            assert!(p.ack_delay().is_none());
            assert!(p.dram_spike().is_none());
            assert!(!p.mshr_exhausted());
            assert!(!p.drop_burst_block());
        }
        assert_eq!(p.counts(), FaultCounts::default());
        assert!(!p.config().enabled());
    }

    #[test]
    fn rate_one_always_fires() {
        let mut p = FaultPlan::new(FaultConfig::uniform(1.0, 3));
        assert_eq!(p.ack_delay(), Some(200));
        assert_eq!(p.dram_spike(), Some(400));
        assert!(p.mshr_exhausted());
        assert!(p.drop_burst_block());
        assert_eq!(
            p.counts(),
            FaultCounts {
                acks_delayed: 1,
                dram_spikes: 1,
                mshr_exhausted: 1,
                bursts_dropped: 1
            }
        );
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let mut p = FaultPlan::new(FaultConfig::uniform(0.3, seed));
            (0..256).map(|_| p.drop_burst_block()).collect()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10), "different seeds diverge");
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let mut p = FaultPlan::new(FaultConfig::uniform(0.25, 42));
        let fired = (0..10_000).filter(|_| p.mshr_exhausted()).count();
        let rate = fired as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn sites_use_independent_streams() {
        // Consuming one stream must not shift another.
        let mut a = FaultPlan::new(FaultConfig::uniform(0.5, 11));
        let mut b = FaultPlan::new(FaultConfig::uniform(0.5, 11));
        for _ in 0..100 {
            let _ = a.ack_delay();
        }
        let seq_a: Vec<bool> = (0..64).map(|_| a.drop_burst_block()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.drop_burst_block()).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn identical_configs_give_identical_plans() {
        // Two plans built from the same config must agree decision for
        // decision under an arbitrary interleaving of all four fault
        // sites — the property resumable sweeps and the fuzzer rely on.
        let mut a = FaultPlan::new(FaultConfig::uniform(0.3, 77));
        let mut b = FaultPlan::new(FaultConfig::uniform(0.3, 77));
        for i in 0..512 {
            match i % 4 {
                0 => assert_eq!(a.ack_delay(), b.ack_delay()),
                1 => assert_eq!(a.dram_spike(), b.dram_spike()),
                2 => assert_eq!(a.mshr_exhausted(), b.mshr_exhausted()),
                _ => assert_eq!(a.drop_burst_block(), b.drop_burst_block()),
            }
        }
        assert_eq!(a.counts(), b.counts());
        assert_ne!(
            a.counts(),
            FaultCounts::default(),
            "the plan actually fired"
        );
    }

    #[test]
    fn seed_and_rate_both_shape_the_plan() {
        let stream = |rate: f64, seed: u64| -> Vec<bool> {
            let mut p = FaultPlan::new(FaultConfig::uniform(rate, seed));
            (0..256).map(|_| p.mshr_exhausted()).collect()
        };
        assert_eq!(stream(0.4, 21), stream(0.4, 21));
        assert_ne!(stream(0.4, 21), stream(0.4, 22), "seed changes the plan");
        assert_ne!(stream(0.4, 21), stream(0.9, 21), "rate changes the plan");
    }

    #[test]
    fn reset_counts_keeps_the_stream_position() {
        let mut p = FaultPlan::new(FaultConfig::uniform(0.5, 5));
        let mut q = FaultPlan::new(FaultConfig::uniform(0.5, 5));
        let _ = p.dram_spike();
        let _ = q.dram_spike();
        p.reset_counts();
        assert_eq!(p.counts(), FaultCounts::default());
        // Post-reset decisions continue where they left off.
        for _ in 0..32 {
            assert_eq!(p.dram_spike(), q.dram_spike());
        }
    }
}

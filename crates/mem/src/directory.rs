//! Full-map MESI directory for multi-core coherence.
//!
//! The home node (at the shared L3) tracks, for every block with cached
//! copies, either a single **owner** (M/E in some core's private caches)
//! or a set of **sharers** (S copies). The directory enforces the
//! single-writer / multiple-reader invariant; the memory system uses it
//! to decide which invalidations/downgrades a request must pay for.
//!
//! Simplification versus a real design (documented in DESIGN.md): the
//! directory is a map keyed by block, not embedded in L3 tags, so L3
//! evictions do not force recalls. This removes an interaction that is
//! orthogonal to store prefetching.

use crate::blockmap::BlockMap;
use std::fmt;
use std::ops::Deref;

/// Maximum number of cores the sharer bitmask supports.
pub const MAX_CORES: usize = 16;

/// A block's directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirEntry {
    /// One core holds the block in M or E.
    Owned {
        /// The owning core.
        owner: u8,
    },
    /// One or more cores hold read-only copies.
    Shared {
        /// Bitmask of sharing cores.
        sharers: u16,
    },
}

impl Default for DirEntry {
    /// Slot filler for the backing [`BlockMap`]; never observable
    /// through the map API.
    fn default() -> Self {
        DirEntry::Owned { owner: 0 }
    }
}

/// An inline set of core ids to invalidate.
///
/// Exclusive requests used to heap-allocate a `Vec<u8>` per remote
/// invalidation; the sharer mask bounds the set by [`MAX_CORES`], so it
/// fits in a fixed array on the stack. Derefs to a slice for iteration
/// and comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalSet {
    cores: [u8; MAX_CORES],
    len: u8,
}

impl InvalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self {
            cores: [0; MAX_CORES],
            len: 0,
        }
    }

    /// Adds a core id.
    pub fn push(&mut self, core: u8) {
        self.cores[self.len as usize] = core;
        self.len += 1;
    }
}

impl Default for InvalSet {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for InvalSet {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.cores[..self.len as usize]
    }
}

/// What a requester must do before its access can proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceActions {
    /// Cores whose copies must be invalidated (exclusive requests).
    pub invalidate: InvalSet,
    /// Core whose M/E copy must be downgraded to S (read requests).
    pub downgrade: Option<u8>,
}

impl CoherenceActions {
    /// No remote action needed.
    pub fn none() -> Self {
        Self {
            invalidate: InvalSet::new(),
            downgrade: None,
        }
    }

    /// Whether any remote cache must be touched.
    pub fn is_remote(&self) -> bool {
        !self.invalidate.is_empty() || self.downgrade.is_some()
    }
}

/// The directory itself.
///
/// # Examples
///
/// ```
/// use spb_mem::directory::Directory;
///
/// let mut dir = Directory::new(2);
/// // Core 0 takes ownership; core 1's read must downgrade it.
/// let a0 = dir.request_exclusive(0, 100);
/// assert!(!a0.is_remote());
/// let a1 = dir.request_shared(1, 100);
/// assert_eq!(a1.downgrade, Some(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    cores: usize,
    entries: BlockMap<DirEntry>,
    /// Blocks whose current entry is malformed, in write order. Every
    /// entry write funnels through [`Directory::set`], which validates
    /// it, so this list is the whole answer to [`find_malformed`] —
    /// empty (the always case) makes the periodic invariant check O(1)
    /// instead of a full table sweep.
    ///
    /// [`find_malformed`]: Directory::find_malformed
    malformed: Vec<u64>,
    /// When enabled, blocks whose entry was written or removed since the
    /// log was last cleared, in write order (duplicates possible). The
    /// invariant checker re-verifies exactly these blocks instead of
    /// sweeping every cached line.
    mutated: Vec<u64>,
    log_mutations: bool,
    invalidations_sent: u64,
    downgrades_sent: u64,
    reinstates: u64,
}

impl Directory {
    /// Creates a directory for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds [`MAX_CORES`].
    pub fn new(cores: usize) -> Self {
        assert!(
            cores > 0 && cores <= MAX_CORES,
            "cores must be 1..={MAX_CORES}"
        );
        Self {
            cores,
            entries: BlockMap::new(),
            malformed: Vec::new(),
            mutated: Vec::new(),
            log_mutations: false,
            invalidations_sent: 0,
            downgrades_sent: 0,
            reinstates: 0,
        }
    }

    /// Starts recording every entry write/removal into the mutation log.
    /// Off by default so standalone directories pay nothing.
    pub fn enable_mutation_log(&mut self) {
        self.log_mutations = true;
    }

    /// Blocks whose entry changed since the last
    /// [`Directory::clear_mutation_log`], in write order.
    pub fn mutation_log(&self) -> &[u64] {
        &self.mutated
    }

    /// Forgets the recorded mutations (the checker consumed them).
    pub fn clear_mutation_log(&mut self) {
        self.mutated.clear();
    }

    /// Number of cores tracked.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Current entry for `block`, if any core caches it.
    pub fn entry(&self, block: u64) -> Option<DirEntry> {
        self.entries.get(block).copied()
    }

    /// Total invalidation messages generated.
    pub fn invalidations_sent(&self) -> u64 {
        self.invalidations_sent
    }

    /// Total downgrade messages generated.
    pub fn downgrades_sent(&self) -> u64 {
        self.downgrades_sent
    }

    /// Why `e` is malformed for a `cores`-core directory, if it is.
    fn malformed_why(e: &DirEntry, cores: usize) -> Option<String> {
        match e {
            DirEntry::Owned { owner } if (*owner as usize) >= cores => {
                Some(format!("owner {owner} out of range (cores={cores})"))
            }
            DirEntry::Shared { sharers } if *sharers == 0 => {
                Some("shared entry with empty sharer mask".into())
            }
            DirEntry::Shared { sharers } if (*sharers >> cores) != 0 => {
                Some(format!("sharer mask {sharers:#b} names out-of-range cores"))
            }
            _ => None,
        }
    }

    /// Writes `block`'s entry, keeping the malformed-block list exact.
    fn set(&mut self, block: u64, e: DirEntry) {
        if self.log_mutations {
            self.mutated.push(block);
        }
        match Self::malformed_why(&e, self.cores) {
            Some(_) => {
                if !self.malformed.contains(&block) {
                    self.malformed.push(block);
                }
            }
            None => {
                if !self.malformed.is_empty() {
                    self.malformed.retain(|&b| b != block);
                }
            }
        }
        self.entries.insert(block, e);
    }

    /// Removes `block`'s entry, keeping the malformed-block list exact.
    fn unset(&mut self, block: u64) {
        if self.log_mutations {
            self.mutated.push(block);
        }
        if !self.malformed.is_empty() {
            self.malformed.retain(|&b| b != block);
        }
        self.entries.remove(block);
    }

    /// Core `core` requests ownership of `block` (store / RFO).
    ///
    /// Returns the remote actions the memory system must model, and
    /// records `core` as the owner.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn request_exclusive(&mut self, core: u8, block: u64) -> CoherenceActions {
        assert!((core as usize) < self.cores, "core id out of range");
        let mut actions = CoherenceActions::none();
        match self.entries.get(block).copied() {
            None => {}
            Some(DirEntry::Owned { owner }) if owner == core => {}
            Some(DirEntry::Owned { owner }) => {
                actions.invalidate.push(owner);
            }
            Some(DirEntry::Shared { sharers }) => {
                for c in 0..self.cores as u8 {
                    if c != core && sharers & (1 << c) != 0 {
                        actions.invalidate.push(c);
                    }
                }
            }
        }
        self.invalidations_sent += actions.invalidate.len() as u64;
        self.set(block, DirEntry::Owned { owner: core });
        actions
    }

    /// Core `core` requests a readable copy of `block` (load).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn request_shared(&mut self, core: u8, block: u64) -> CoherenceActions {
        assert!((core as usize) < self.cores, "core id out of range");
        let mut actions = CoherenceActions::none();
        match self.entries.get(block).copied() {
            None => {
                // First copy: grant E (recorded as Owned so a later store
                // by the same core upgrades silently).
                self.set(block, DirEntry::Owned { owner: core });
            }
            Some(DirEntry::Owned { owner }) if owner == core => {}
            Some(DirEntry::Owned { owner }) => {
                actions.downgrade = Some(owner);
                self.downgrades_sent += 1;
                let sharers = (1u16 << owner) | (1u16 << core);
                self.set(block, DirEntry::Shared { sharers });
            }
            Some(DirEntry::Shared { sharers }) => {
                self.set(
                    block,
                    DirEntry::Shared {
                        sharers: sharers | (1 << core),
                    },
                );
            }
        }
        actions
    }

    /// Re-registers `core` as the owner of `block` **iff the directory
    /// has no entry for it** — the case where a private line was evicted
    /// while its fill was still in flight (the directory forgot the
    /// block) and the core later reinstates it from the MSHR entry.
    ///
    /// Without this, the reinstated copy would be invisible to the
    /// directory: a later exclusive request by another core would not
    /// invalidate it and the single-writer invariant could break. The
    /// call sends no messages and touches no counters other than
    /// [`Directory::reinstates`], so it cannot perturb timing on its
    /// own.
    pub fn reinstate_owner(&mut self, core: u8, block: u64) {
        assert!((core as usize) < self.cores, "core id out of range");
        if !self.entries.contains(block) {
            self.set(block, DirEntry::Owned { owner: core });
            self.reinstates += 1;
        }
    }

    /// How many times [`Directory::reinstate_owner`] actually re-created
    /// a forgotten entry.
    pub fn reinstates(&self) -> u64 {
        self.reinstates
    }

    /// Core `core` evicted its copy of `block`; the directory forgets it.
    pub fn evicted(&mut self, core: u8, block: u64) {
        match self.entries.get(block).copied() {
            Some(DirEntry::Owned { owner }) if owner == core => {
                self.unset(block);
            }
            Some(DirEntry::Shared { sharers }) => {
                let s = sharers & !(1 << core);
                if s == 0 {
                    self.unset(block);
                } else {
                    self.set(block, DirEntry::Shared { sharers: s });
                }
            }
            _ => {}
        }
    }

    /// Verifies the single-writer invariant for a block (test helper):
    /// an `Owned` entry never coexists with sharers by construction, so
    /// this checks internal consistency of the sharer mask.
    pub fn check_invariants(&self) -> bool {
        self.find_malformed().is_none()
    }

    /// Finds the first malformed entry (owner out of range, empty or
    /// out-of-range sharer mask), if any, with a description.
    ///
    /// O(1) in the healthy case: every write validates its entry and
    /// maintains the malformed-block list, so this only has work to do
    /// when a directory bug already happened.
    pub fn find_malformed(&self) -> Option<(u64, String)> {
        let &block = self.malformed.first()?;
        let e = self.entries.get(block)?;
        Self::malformed_why(e, self.cores).map(|why| (block, why))
    }

    /// Warms the host cache for `block`'s entry slot (see
    /// [`crate::blockmap::BlockMap::warm`]). Semantically a no-op.
    #[inline]
    pub fn warm(&self, block: u64) {
        self.entries.warm(block);
    }

    /// Whether the directory believes `core` holds a copy of `block`.
    pub fn tracks(&self, core: u8, block: u64) -> bool {
        match self.entries.get(block) {
            Some(DirEntry::Owned { owner }) => *owner == core,
            Some(DirEntry::Shared { sharers }) => sharers & (1 << core) != 0,
            None => false,
        }
    }

    /// Iterates over all tracked blocks and their entries.
    pub fn iter_entries(&self) -> impl Iterator<Item = (u64, DirEntry)> + '_ {
        self.entries.iter().map(|(b, &e)| (b, e))
    }
}

impl fmt::Display for Directory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "directory: {} tracked blocks, {} invals, {} downgrades",
            self.entries.len(),
            self.invalidations_sent,
            self.downgrades_sent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reader_gets_exclusive() {
        let mut d = Directory::new(4);
        let a = d.request_shared(2, 7);
        assert!(!a.is_remote());
        assert_eq!(d.entry(7), Some(DirEntry::Owned { owner: 2 }));
    }

    #[test]
    fn second_reader_downgrades_owner() {
        let mut d = Directory::new(4);
        d.request_exclusive(0, 7);
        let a = d.request_shared(1, 7);
        assert_eq!(a.downgrade, Some(0));
        assert_eq!(d.entry(7), Some(DirEntry::Shared { sharers: 0b11 }));
        assert_eq!(d.downgrades_sent(), 1);
    }

    #[test]
    fn writer_invalidates_all_sharers() {
        let mut d = Directory::new(4);
        d.request_shared(0, 9);
        d.request_shared(1, 9);
        d.request_shared(2, 9);
        let a = d.request_exclusive(3, 9);
        let mut inv = a.invalidate.to_vec();
        inv.sort_unstable();
        assert_eq!(inv, vec![0, 1, 2]);
        assert_eq!(d.entry(9), Some(DirEntry::Owned { owner: 3 }));
    }

    #[test]
    fn writer_steals_ownership() {
        let mut d = Directory::new(2);
        d.request_exclusive(0, 9);
        let a = d.request_exclusive(1, 9);
        assert_eq!(&a.invalidate[..], [0]);
        assert_eq!(d.entry(9), Some(DirEntry::Owned { owner: 1 }));
    }

    #[test]
    fn re_request_by_owner_is_silent() {
        let mut d = Directory::new(2);
        d.request_exclusive(0, 9);
        let a = d.request_exclusive(0, 9);
        assert!(!a.is_remote());
        let b = d.request_shared(0, 9);
        assert!(!b.is_remote());
    }

    #[test]
    fn eviction_forgets_copies() {
        let mut d = Directory::new(3);
        d.request_shared(0, 5);
        d.request_shared(1, 5);
        d.evicted(0, 5);
        assert_eq!(d.entry(5), Some(DirEntry::Shared { sharers: 0b10 }));
        d.evicted(1, 5);
        assert_eq!(d.entry(5), None);
    }

    #[test]
    fn eviction_of_owned_block() {
        let mut d = Directory::new(2);
        d.request_exclusive(1, 5);
        d.evicted(1, 5);
        assert_eq!(d.entry(5), None);
        // Eviction by a non-owner is a no-op.
        d.request_exclusive(0, 6);
        d.evicted(1, 6);
        assert_eq!(d.entry(6), Some(DirEntry::Owned { owner: 0 }));
    }

    #[test]
    fn invariants_hold_after_random_traffic() {
        let mut d = Directory::new(4);
        let mut x = 123456789u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let core = (x % 4) as u8;
            let block = (x >> 8) % 32;
            match (x >> 16) % 3 {
                0 => {
                    let _ = d.request_shared(core, block);
                }
                1 => {
                    let _ = d.request_exclusive(core, block);
                }
                _ => d.evicted(core, block),
            }
            assert!(d.check_invariants());
        }
    }

    #[test]
    #[should_panic(expected = "core id out of range")]
    fn out_of_range_core_panics() {
        let mut d = Directory::new(2);
        let _ = d.request_shared(5, 0);
    }

    #[test]
    fn reinstate_fills_only_forgotten_entries() {
        let mut d = Directory::new(2);
        // Forgotten block: reinstate re-registers ownership.
        d.reinstate_owner(1, 9);
        assert_eq!(d.entry(9), Some(DirEntry::Owned { owner: 1 }));
        assert_eq!(d.reinstates(), 1);
        // Tracked block: reinstate must not clobber the real state.
        d.request_exclusive(0, 10);
        d.reinstate_owner(1, 10);
        assert_eq!(d.entry(10), Some(DirEntry::Owned { owner: 0 }));
        assert_eq!(d.reinstates(), 1);
    }

    #[test]
    fn tracks_reflects_owner_and_sharers() {
        let mut d = Directory::new(3);
        d.request_shared(0, 4);
        d.request_shared(1, 4);
        assert!(d.tracks(0, 4));
        assert!(d.tracks(1, 4));
        assert!(!d.tracks(2, 4));
        assert!(!d.tracks(0, 5));
    }
}

//! Property-based tests for the memory substrate.

use proptest::prelude::*;
use spb_mem::cache::{CacheArray, CacheGeometry};
use spb_mem::directory::Directory;
use spb_mem::line::CoherenceState;
use spb_mem::mshr::MshrFile;
use spb_mem::system::{MemoryConfig, MemorySystem, StoreDrainOutcome};
use std::collections::HashSet;

proptest! {
    /// A cache never holds more lines than its geometry allows, never
    /// holds a block twice, and a lookup after insert (without
    /// intervening conflict pressure) hits.
    #[test]
    fn cache_capacity_and_uniqueness(blocks in proptest::collection::vec(0u64..512, 1..300)) {
        let mut cache = CacheArray::new(CacheGeometry::new(4096, 4)); // 16 sets x 4 ways
        for &b in &blocks {
            if cache.peek(b).is_none() {
                cache.insert(b, CoherenceState::Exclusive, 0, None);
            }
            cache.touch(b);
            prop_assert!(cache.valid_lines() <= cache.geometry().lines());
            // Uniqueness: counting valid lines per block address.
            let mut seen = HashSet::new();
            for line in cache.iter_valid() {
                prop_assert!(seen.insert(line.block), "duplicate tag for {:#x}", line.block);
            }
            // The just-touched block must be present.
            prop_assert!(cache.peek(b).is_some());
        }
    }

    /// LRU: after touching a block, inserting conflicting blocks evicts
    /// others in the set before it (with fewer conflicts than ways).
    #[test]
    fn cache_touch_protects_mru(extra in 1u64..3) {
        let mut cache = CacheArray::new(CacheGeometry::new(1024, 4)); // 4 sets x 4 ways
        let sets = 4u64;
        // Fill set 0 with 4 blocks; block 0 is touched last (MRU).
        for b in [0u64, sets, 2 * sets, 3 * sets] {
            cache.insert(b, CoherenceState::Exclusive, 0, None);
        }
        cache.touch(0);
        // Insert up to 3 more conflicting blocks: block 0 must survive.
        for i in 0..extra {
            cache.insert((4 + i) * sets, CoherenceState::Exclusive, 0, None);
        }
        prop_assert!(cache.peek(0).is_some(), "MRU block was evicted");
    }

    /// MSHR files never exceed capacity, and the error path reports a
    /// ready time of some live entry.
    #[test]
    fn mshr_capacity_respected(ops in proptest::collection::vec((0u64..64, 1u64..500), 1..200)) {
        let mut m = MshrFile::new(8);
        let mut now = 0;
        for (block, dur) in ops {
            now += 1;
            if m.lookup(block).is_none() {
                match m.allocate(block, now + dur, false, None, now) {
                    Ok(()) => {}
                    Err(earliest) => prop_assert!(earliest > now),
                }
            }
            prop_assert!(m.len() <= m.capacity());
        }
    }

    /// Directory single-writer invariant under arbitrary traffic, plus
    /// internal mask consistency.
    #[test]
    fn directory_single_writer(ops in proptest::collection::vec((0u8..4, 0u64..16, 0u8..3), 1..500)) {
        let mut d = Directory::new(4);
        for (core, block, op) in ops {
            match op {
                0 => { let _ = d.request_shared(core, block); }
                1 => { let _ = d.request_exclusive(core, block); }
                _ => d.evicted(core, block),
            }
            prop_assert!(d.check_invariants());
        }
    }

    /// In a single-core system, every store eventually performs: a
    /// `Retry` outcome always carries a time after which the drain
    /// succeeds, regardless of address pattern.
    #[test]
    fn store_drain_always_converges(addrs in proptest::collection::vec(0u64..(1 << 20), 1..60)) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut now = 0;
        for addr in addrs {
            let mut attempts = 0;
            loop {
                match mem.store_drain(0, addr, now) {
                    StoreDrainOutcome::Performed { .. } => break,
                    StoreDrainOutcome::Retry { at } => {
                        prop_assert!(at > now, "retry must advance time");
                        now = at;
                        attempts += 1;
                        prop_assert!(attempts < 64, "drain livelock for {addr:#x}");
                    }
                }
            }
            now += 1;
        }
    }

    /// Loads are monotone: a second load of the same block at a later
    /// time is never slower than the L1 hit latency.
    #[test]
    fn warm_loads_hit(addr in 0u64..(1 << 24)) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let first = mem.load(0, addr, 0);
        let second = mem.load(0, addr, first.ready + 1);
        prop_assert!(second.l1_hit);
        prop_assert_eq!(second.ready, first.ready + 1 + mem.config().l1_latency);
    }

    /// The classification identity: for any traffic, each prefetched
    /// block is classified at most once (successful + late + early +
    /// never-used never exceeds downstream-issued prefetches).
    #[test]
    fn prefetch_classification_bounded(
        blocks in proptest::collection::vec(0u64..256, 1..100),
        drains in proptest::collection::vec(0u64..256, 0..100),
    ) {
        use spb_mem::RfoOrigin;
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut now = 0;
        for b in blocks {
            let _ = mem.store_prefetch(0, b * 64, 0x9, now, RfoOrigin::SpbBurst);
            now += 1;
        }
        for b in drains {
            let _ = mem.store_drain(0, b * 64, now + 1000);
            now += 1;
        }
        mem.finalize_stats();
        let s = mem.stats();
        let i = RfoOrigin::SpbBurst.index();
        let classified = s.prefetch_successful[i] + s.prefetch_late[i]
            + s.prefetch_early[i] + s.prefetch_never_used[i];
        prop_assert!(
            classified <= s.prefetch_downstream[i],
            "classified {} > issued {}",
            classified,
            s.prefetch_downstream[i]
        );
    }
}

//! Multicore coherence-path tests: upgrades, downgrades, and the
//! classification of remote involvement.

use spb_mem::system::{Level, MemoryConfig, MemorySystem, RfoResponse, StoreDrainOutcome};
use spb_mem::RfoOrigin;

fn two_cores() -> MemorySystem {
    MemorySystem::new(MemoryConfig {
        cores: 2,
        ..Default::default()
    })
}

fn drain_until_done(mem: &mut MemorySystem, core: usize, addr: u64, mut now: u64) -> u64 {
    loop {
        match mem.store_drain(core, addr, now) {
            StoreDrainOutcome::Performed { .. } => return now,
            StoreDrainOutcome::Retry { at } => now = at,
        }
    }
}

#[test]
fn store_to_shared_line_upgrades_in_place() {
    let mut mem = two_cores();
    // Both cores read the block: it ends Shared.
    let r0 = mem.load(0, 0x5000, 0);
    let _r1 = mem.load(1, 0x5000, r0.ready + 1);
    // Core 0 stores: its S copy upgrades; core 1 gets invalidated.
    let done = drain_until_done(&mut mem, 0, 0x5000, r0.ready + 500);
    assert!(done > 0);
    assert!(mem.stats().invalidations >= 1);
    // Core 1's next read is a miss serviced remotely or below.
    let r1b = mem.load(1, 0x5000, done + 1);
    assert!(!r1b.l1_hit);
}

#[test]
fn remote_dirty_line_downgrades_on_read() {
    let mut mem = two_cores();
    let done = drain_until_done(&mut mem, 0, 0x6000, 0);
    // Core 1 reads the dirty line: 3-hop service, owner downgraded.
    let r = mem.load(1, 0x6000, done + 1);
    assert_eq!(r.level, Level::Remote);
    // Both can now read locally.
    let r0 = mem.load(0, 0x6000, r.ready + 1);
    assert!(r0.l1_hit, "owner keeps a (downgraded) copy");
}

#[test]
fn write_ping_pong_invalidate_each_round() {
    let mut mem = two_cores();
    let mut now = 0;
    for round in 0..6 {
        let core = round % 2;
        now = drain_until_done(&mut mem, core, 0x7000, now) + 1;
    }
    // Five ownership transfers after the first.
    assert!(
        mem.stats().invalidations >= 5,
        "got {} invalidations",
        mem.stats().invalidations
    );
}

#[test]
fn prefetch_to_remote_owned_block_is_a_remote_rfo() {
    let mut mem = two_cores();
    let done = drain_until_done(&mut mem, 0, 0x8000, 0);
    // Core 1 RFO-prefetches the same block: must invalidate core 0.
    let resp = mem.store_prefetch(1, 0x8000, 0x9, done + 1, RfoOrigin::AtCommit);
    assert_eq!(resp, RfoResponse::Issued);
    assert!(mem.stats().invalidations >= 1);
    // Core 0's re-read misses now.
    let r0 = mem.load(0, 0x8000, done + 500);
    assert!(!r0.l1_hit);
}

#[test]
fn burst_to_private_pages_causes_no_invalidations() {
    // The paper's coherence-friendliness claim in miniature: bursts to
    // uncontended pages never generate coherence traffic.
    let mut mem = two_cores();
    mem.enqueue_burst(0, 0x100..0x140, 0); // one page of blocks
    mem.enqueue_burst(1, 0x200..0x240, 0); // a different page
    for now in 0..200 {
        mem.tick(now);
    }
    assert_eq!(mem.stats().invalidations, 0);
}

#[test]
fn l2_hit_after_l1_eviction() {
    // Fill enough distinct blocks to evict an early one from L1 (512
    // lines) while it stays in the 16k-line L2.
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut now = 0;
    let first = 0xA0000u64;
    let r = mem.load(0, first, now);
    now = r.ready + 1;
    for i in 1..1500u64 {
        let r = mem.load(0, first + i * 64, now);
        now = r.ready + 1;
    }
    let again = mem.load(0, first, now);
    assert!(!again.l1_hit, "block must have been evicted from L1");
    assert_eq!(again.level, Level::L2, "and must be served by the L2");
}

//! Figure 11: breakdown of store-prefetch outcomes at the L1D.
//!
//! Every block brought in by a store prefetch is classified by its fate:
//! *successful* (owned and ready when the demanding store drained),
//! *late* (still in flight), *early* (evicted or invalidated unused but
//! demanded later), or *never used*. Paper headline: at-commit is
//! dominated by late prefetches (success 5–10%) because its RFOs issue
//! at the end of the store's life; SPB bursts run a page ahead and reach
//! 45–50% success on SB-bound applications.

use crate::grid::Grid;
use crate::Budget;
use spb_mem::RfoOrigin;
use spb_sim::config::PolicyKind;
use spb_sim::runner::RunResult;
use spb_stats::summary::mean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

/// The four outcome fractions for one origin set, over classified blocks.
fn fractions(r: &RunResult, origins: &[RfoOrigin]) -> [f64; 4] {
    let mut sums = [0u64; 4];
    for o in origins {
        let i = o.index();
        sums[0] += r.mem.prefetch_successful[i];
        sums[1] += r.mem.prefetch_late[i];
        sums[2] += r.mem.prefetch_early[i];
        sums[3] += r.mem.prefetch_never_used[i];
    }
    let total: u64 = sums.iter().sum();
    if total == 0 {
        return [0.0; 4];
    }
    [
        sums[0] as f64 / total as f64,
        sums[1] as f64 / total as f64,
        sums[2] as f64 / total as f64,
        sums[3] as f64 / total as f64,
    ]
}

/// Builds the table from matched per-app at-commit and SPB runs (SB56).
fn tables_from_runs(apps: &[AppProfile], ac: &[RunResult], spb: &[RunResult]) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 11 — store-prefetch outcome fractions at L1D (SB56; ac = at-commit, spb = SPB policy)",
        &[
            "ac succ", "ac late", "ac early", "ac never", "spb succ", "spb late", "spb early",
            "spb never",
        ],
    );
    let mut all_rows: Vec<[f64; 8]> = Vec::new();
    let mut bound_rows: Vec<[f64; 8]> = Vec::new();
    for (a, app) in apps.iter().enumerate() {
        let f_ac = fractions(&ac[a], &[RfoOrigin::AtCommit]);
        // The SPB policy's prefetching is its bursts plus the underlying
        // per-store at-commit requests.
        let f_spb = fractions(&spb[a], &[RfoOrigin::SpbBurst, RfoOrigin::AtCommit]);
        let row = [
            f_ac[0], f_ac[1], f_ac[2], f_ac[3], f_spb[0], f_spb[1], f_spb[2], f_spb[3],
        ];
        if app.is_sb_bound() {
            t.push_row(app.name(), &row);
            bound_rows.push(row);
        }
        all_rows.push(row);
    }
    let col_mean =
        |rows: &[[f64; 8]], i: usize| mean(&rows.iter().map(|r| r[i]).collect::<Vec<_>>());
    let all: Vec<f64> = (0..8).map(|i| col_mean(&all_rows, i)).collect();
    let bound: Vec<f64> = (0..8).map(|i| col_mean(&bound_rows, i)).collect();
    t.push_row("SB-BOUND", &bound);
    t.push_row("ALL", &all);
    vec![t]
}

/// Re-renders the figure from the shared grid's SB56 column (at-commit
/// and SPB views).
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    tables_from_runs(&grid.apps, &grid.at(1, 2).runs, &grid.at(2, 2).runs)
}

/// Runs the experiment at `budget` (SB56, the default configuration).
pub fn run(budget: Budget) -> Vec<Table> {
    let cfg = budget.sim_config();
    let apps = AppProfile::spec2017();
    let ac: Vec<RunResult> = apps
        .iter()
        .map(|app| spb_sim::Simulation::with_config(app, &cfg).run_or_panic())
        .collect();
    let spb: Vec<RunResult> = apps
        .iter()
        .map(|app| {
            spb_sim::Simulation::with_config(
                app,
                &cfg.clone().with_policy(PolicyKind::spb_default()),
            )
            .run_or_panic()
        })
        .collect();
    tables_from_runs(&apps, &ac, &spb)
}

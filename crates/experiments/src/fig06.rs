//! Figure 6: per-application performance of the SB-bound applications,
//! normalized to the ideal SB, for each SB size.

use crate::grid::{policies, Grid, SB_SIZES};
use crate::Budget;
use spb_stats::Table;

/// Builds the three per-SB-size tables from a grid run over the
/// SB-bound subset.
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    let labels: Vec<String> = policies().iter().map(|p| p.label()).collect();
    let cols: Vec<&str> = labels.iter().map(String::as_str).collect();
    SB_SIZES
        .iter()
        .enumerate()
        .map(|(s, &sb)| {
            let mut t = Table::new(
                format!("Fig. 6 — SB-bound apps normalized to Ideal (SB{sb})"),
                &cols,
            );
            for (a, app) in grid.apps.iter().enumerate() {
                let row: Vec<f64> = (0..policies().len())
                    .map(|p| grid.norm_perf_vs_ideal(grid.at(p, s))[a])
                    .collect();
                t.push_row(app.name(), &row);
            }
            t
        })
        .collect()
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_from_grid(&Grid::spec_sb_bound(budget))
}

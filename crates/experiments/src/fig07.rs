//! Figure 7: energy normalized to at-commit (lower is better).
//!
//! Breakdown into cache dynamic energy (L1+L2+L3), total core dynamic
//! energy, and total energy (dynamic + static), for the at-execute and
//! SPB policies relative to the at-commit baseline at each SB size.
//! Paper headline: SPB's net total-energy savings are 6.7% / 3.4% / 1.5%
//! for SB14 / SB28 / SB56 (16.8% / 9% / 4.3% for SB-bound only).

use crate::grid::{Grid, SB_SIZES};
use crate::Budget;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;

fn norm_energy<F: Fn(&spb_energy::EnergyBreakdown) -> f64>(
    suite: &SuiteResult,
    baseline: &SuiteResult,
    sb_bound_only: bool,
    metric: F,
) -> f64 {
    let vals: Vec<f64> = suite
        .runs
        .iter()
        .zip(&baseline.runs)
        .zip(&suite.sb_bound)
        .filter(|(_, b)| !sb_bound_only || **b)
        .map(|((r, base), _)| metric(&r.energy) / metric(&base.energy))
        .collect();
    geomean(&vals)
}

/// Builds the Figure 7 tables from the main grid (at-execute = policy 0,
/// at-commit = 1, SPB = 2).
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    let mut out = Vec::new();
    for (title, sb_bound_only) in [
        (
            "Fig. 7 — energy normalized to at-commit (geomean, ALL)",
            false,
        ),
        (
            "Fig. 7 — energy normalized to at-commit (geomean, SB-BOUND)",
            true,
        ),
    ] {
        let mut t = Table::new(
            title,
            &[
                "exe cache-dyn",
                "exe core-dyn",
                "exe total",
                "spb cache-dyn",
                "spb core-dyn",
                "spb total",
            ],
        );
        for (s, &sb) in SB_SIZES.iter().enumerate() {
            let base = grid.at(1, s);
            let exe = grid.at(0, s);
            let spb = grid.at(2, s);
            t.push_row(
                format!("SB{sb}"),
                &[
                    norm_energy(exe, base, sb_bound_only, |e| e.cache_dynamic_nj),
                    norm_energy(exe, base, sb_bound_only, |e| e.core_dynamic_nj),
                    norm_energy(exe, base, sb_bound_only, |e| e.total_nj()),
                    norm_energy(spb, base, sb_bound_only, |e| e.cache_dynamic_nj),
                    norm_energy(spb, base, sb_bound_only, |e| e.core_dynamic_nj),
                    norm_energy(spb, base, sb_bound_only, |e| e.total_nj()),
                ],
            );
        }
        out.push(t);
    }
    out
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_from_grid(&Grid::spec(budget))
}

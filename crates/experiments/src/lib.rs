//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each `figXX` module computes the data behind the corresponding figure
//! of the paper and renders it as [`spb_stats::Table`]s whose rows and
//! columns mirror the publication, so shape can be compared directly.
//! Every module has a same-named thin binary (`cargo run --release -p
//! spb-experiments --bin fig05`), and the `all` binary regenerates the
//! whole evaluation and writes `EXPERIMENTS.md`-ready output.
//!
//! Budgets: [`Budget::Paper`] runs the default µop budget used for the
//! recorded results; [`Budget::Quick`] is for smoke tests and CI. Pass
//! `--quick` to any binary to use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod coalescing;
pub mod grid;
pub mod registry;
pub mod smt_validation;
pub mod spatial;
pub mod squash;
pub mod variance;

pub mod fig01;
pub mod fig03;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod sb20;
pub mod sens_n;
pub mod tab1;

use spb_sim::SimConfig;

/// How much simulation to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Small budgets for smoke tests and benches.
    Quick,
    /// The budget used for the recorded EXPERIMENTS.md results.
    Paper,
}

impl Budget {
    /// Parses `--quick` from argv (default: [`Budget::Paper`]).
    pub fn from_args() -> Budget {
        if std::env::args().any(|a| a == "--quick") {
            Budget::Quick
        } else {
            Budget::Paper
        }
    }

    /// The base simulation configuration for this budget.
    pub fn sim_config(self) -> SimConfig {
        match self {
            Budget::Quick => SimConfig::quick(),
            Budget::Paper => SimConfig::paper_default(),
        }
    }

    /// A scaled-down configuration for 8-thread PARSEC runs, keeping
    /// total simulated work comparable to a single-threaded run.
    pub fn parsec_sim_config(self) -> SimConfig {
        let mut cfg = self.sim_config();
        cfg.warmup_uops /= 4;
        cfg.measure_uops /= 4;
        cfg
    }
}

/// Prints a list of tables with blank lines between them (the common
/// tail of every experiment binary).
pub fn print_tables(tables: &[spb_stats::Table]) {
    for t in tables {
        println!("{t}");
    }
}

//! Ablations of SPB's design choices (beyond the paper's N sweep).
//!
//! Variants against the shipped detector, on the SB-bound suite at a
//! 14-entry SB:
//!
//! - **backward bursts** (§IV-A, left out by the paper): the paper
//!   "found no evidence that backward store bursts cause SB stalls" —
//!   this ablation verifies that on our suite (expect ≈ no change).
//! - **cross-page bursts** (footnote 2): prefetch 1 or 3 pages past the
//!   boundary. Expect small gains at best (the next page is usually a
//!   fresh burst's job) and extra traffic.
//! - **no-dedupe**: re-burst the same page every window (the literal
//!   67-bit design). Expect identical performance but more L1 requests.
//! - **half-page bursts** (`frac=0.5`): request only the nearest half
//!   of the remaining page — less traffic, less coverage.
//! - **feedback bursts**: FDP-style accuracy feedback picks the page
//!   fraction at run time.
//!
//! Every variant is an ordinary [`PolicyKind`] spelling — the same
//! grammar `spbsim run --policy` and `spbsim tune` accept — so this
//! experiment is now plain sweep plumbing over the standard suite
//! runner rather than a bespoke policy loop.
//!
//! Columns: performance normalized to the ideal SB, and L1 tag checks
//! normalized to the shipped SPB configuration.

use crate::Budget;
use spb_sim::config::{PolicyKind, SimConfig};
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

/// The ablation rows: display label + policy spelling.
const VARIANTS: [(&str, &str); 6] = [
    ("spb (shipped)", "spb"),
    ("+ backward bursts", "spb:backward=on"),
    ("+ cross-page (1)", "spb:cross=1"),
    ("+ cross-page (3)", "spb:cross=3"),
    ("no-dedupe", "spb:dedupe=off"),
    ("half-page bursts", "spb:frac=0.5"),
];

fn suite_cycles_and_tags(apps: &[AppProfile], cfg: &SimConfig) -> Vec<(u64, u64)> {
    SuiteResult::run(apps, cfg)
        .runs
        .iter()
        .map(|r| (r.cycles, r.mem.l1_tag_checks))
        .collect()
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::spec2017_sb_bound();
    let base_cfg = budget.sim_config().with_sb(14);
    let ideal = SuiteResult::run(&apps, &base_cfg.clone().with_policy(PolicyKind::IdealSb));
    let ideal_cycles: Vec<u64> = ideal.runs.iter().map(|r| r.cycles).collect();

    let mut t = Table::new(
        "Ablations — SPB design choices (SB-bound suite, SB14)",
        &["perf vs ideal", "tag checks vs shipped"],
    );
    let mut shipped_tags: Option<Vec<u64>> = None;
    let rows = VARIANTS
        .iter()
        .map(|&(label, spec)| (label, PolicyKind::parse(spec).expect(spec)))
        .chain(std::iter::once((
            "feedback bursts",
            PolicyKind::SpbFeedback { n: 48 },
        )));
    for (label, policy) in rows {
        let results = suite_cycles_and_tags(&apps, &base_cfg.clone().with_policy(policy));
        let perf: Vec<f64> = results
            .iter()
            .zip(&ideal_cycles)
            .map(|((cycles, _), &ic)| ic as f64 / *cycles as f64)
            .collect();
        let tags: Vec<u64> = results.iter().map(|(_, t)| *t).collect();
        let tag_ratio = match &shipped_tags {
            None => {
                shipped_tags = Some(tags);
                1.0
            }
            Some(base) => geomean(
                &tags
                    .iter()
                    .zip(base)
                    .map(|(&a, &b)| a as f64 / b.max(1) as f64)
                    .collect::<Vec<_>>(),
            ),
        };
        t.push_row(label, &[geomean(&perf), tag_ratio]);
    }
    vec![t]
}

//! Ablations of SPB's design choices (beyond the paper's N sweep).
//!
//! Four variants against the shipped detector, on the SB-bound suite at
//! a 14-entry SB:
//!
//! - **backward bursts** (§IV-A, left out by the paper): the paper
//!   "found no evidence that backward store bursts cause SB stalls" —
//!   this ablation verifies that on our suite (expect ≈ no change).
//! - **cross-page bursts** (footnote 2): prefetch 1 or 3 pages past the
//!   boundary. Expect small gains at best (the next page is usually a
//!   fresh burst's job) and extra traffic.
//! - **no-dedupe**: re-burst the same page every window (the literal
//!   67-bit design). Expect identical performance but more L1 requests.
//!
//! Columns: performance normalized to the ideal SB, and L1 tag checks
//! normalized to the shipped SPB configuration.

use crate::Budget;
use spb_core::extensions::{ExtSpbConfig, ExtendedSpbDetector};
use spb_core::policy::ExtendedSpbPolicy;
use spb_core::SpbConfig;
use spb_cpu::StorePrefetchPolicy;
use spb_sim::config::{PolicyKind, SimConfig};
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

/// A custom policy runner: SuiteResult-compatible sweep with an
/// arbitrary policy factory (PolicyKind can't name the extended
/// variants, so this bypasses it).
fn run_suite_with<F>(apps: &[AppProfile], cfg: &SimConfig, factory: F) -> Vec<(u64, u64)>
where
    F: Fn() -> Box<dyn StorePrefetchPolicy + Send>,
{
    use spb_cpu::core::Core;
    use spb_mem::MemorySystem;
    apps.iter()
        .map(|app| {
            let mut mem_cfg = cfg.mem.clone();
            mem_cfg.cores = 1;
            let mut mem = MemorySystem::new(mem_cfg);
            let mut core = Core::new(0, cfg.core, Box::new(app.build(cfg.seed)), factory());
            let mut now = 0u64;
            while core.committed_uops() < cfg.warmup_uops {
                mem.tick(now);
                core.cycle(&mut mem, now);
                now += 1;
            }
            core.reset_stats();
            mem.reset_stats();
            let start = now;
            while core.committed_uops() < cfg.measure_uops {
                mem.tick(now);
                core.cycle(&mut mem, now);
                now += 1;
            }
            mem.finalize_stats();
            (now - start, mem.stats().l1_tag_checks)
        })
        .collect()
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::spec2017_sb_bound();
    let base_cfg = budget.sim_config().with_sb(14);
    let ideal = SuiteResult::run(&apps, &base_cfg.clone().with_policy(PolicyKind::IdealSb));
    let ideal_cycles: Vec<u64> = ideal.runs.iter().map(|r| r.cycles).collect();

    let variants: Vec<(&str, ExtSpbConfig)> = vec![
        ("spb (shipped)", ExtSpbConfig::default()),
        (
            "+ backward bursts",
            ExtSpbConfig {
                backward: true,
                ..Default::default()
            },
        ),
        (
            "+ cross-page (1)",
            ExtSpbConfig {
                cross_pages: 1,
                ..Default::default()
            },
        ),
        (
            "+ cross-page (3)",
            ExtSpbConfig {
                cross_pages: 3,
                ..Default::default()
            },
        ),
        (
            "no-dedupe",
            ExtSpbConfig {
                base: SpbConfig {
                    n: 48,
                    dedupe: false,
                },
                ..Default::default()
            },
        ),
    ];

    let mut t = Table::new(
        "Ablations — SPB design choices (SB-bound suite, SB14)",
        &["perf vs ideal", "tag checks vs shipped"],
    );
    let mut shipped_tags: Option<Vec<u64>> = None;
    for (label, ext) in variants {
        let results = run_suite_with(&apps, &base_cfg, || Box::new(ExtendedSpbPolicy::new(ext)));
        let perf: Vec<f64> = results
            .iter()
            .zip(&ideal_cycles)
            .map(|((cycles, _), &ic)| ic as f64 / *cycles as f64)
            .collect();
        let tags: Vec<u64> = results.iter().map(|(_, t)| *t).collect();
        let tag_ratio = match &shipped_tags {
            None => {
                shipped_tags = Some(tags);
                1.0
            }
            Some(base) => geomean(
                &tags
                    .iter()
                    .zip(base)
                    .map(|(&a, &b)| a as f64 / b.max(1) as f64)
                    .collect::<Vec<_>>(),
            ),
        };
        t.push_row(label, &[geomean(&perf), tag_ratio]);
    }
    vec![t]
}

// Sanity anchor: the extended detector with defaults must behave like
// the shipped one (unit-tested in spb-core; referenced here so the
// ablation's baseline row is meaningful).
#[allow(dead_code)]
fn _anchor() -> ExtendedSpbDetector {
    ExtendedSpbDetector::new(ExtSpbConfig::default())
}

//! §VII-A: why spatial (page-footprint) prefetchers cannot replace SPB.
//!
//! "Spatial prefetchers … collect the accessed blocks within a page and
//! prefetch them again on the first access to that page. … [a memory
//! copy or initialization] may happen only once in the execution of a
//! program, so learning the page is not an effective mechanism."
//!
//! This experiment runs the SB-bound suite at SB14 under the stride and
//! spatial generic prefetchers, with and without SPB. If the paper is
//! right, the spatial prefetcher's column should look like the stride
//! column (store bursts touch each page once — nothing to replay),
//! while SPB helps under both.

use crate::Budget;
use spb_mem::prefetch::PrefetcherKind;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::spec2017_sb_bound();
    let mut t = Table::new(
        "§VII-A — spatial prefetching vs SPB (SB-bound geomean, SB14, vs Ideal+stride)",
        &["at-commit", "spb"],
    );
    // One ideal baseline (stride) so columns are directly comparable.
    let mut base_cfg = budget.sim_config().with_sb(14);
    base_cfg.mem.prefetcher = PrefetcherKind::Stride;
    let ideal = SuiteResult::run(&apps, &base_cfg.clone().with_policy(PolicyKind::IdealSb));
    let norm = |suite: &SuiteResult| {
        geomean(
            &suite
                .runs
                .iter()
                .zip(&ideal.runs)
                .map(|(r, i)| i.cycles as f64 / r.cycles as f64)
                .collect::<Vec<_>>(),
        )
    };
    for (label, pk) in [
        ("stride", PrefetcherKind::Stride),
        ("spatial", PrefetcherKind::Spatial),
        ("none", PrefetcherKind::None),
    ] {
        let mut cfg = budget.sim_config().with_sb(14);
        cfg.mem.prefetcher = pk;
        let ac = SuiteResult::run(&apps, &cfg.clone());
        let spb = SuiteResult::run(&apps, &cfg.clone().with_policy(PolicyKind::spb_default()));
        t.push_row(label, &[norm(&ac), norm(&spb)]);
    }
    vec![t]
}

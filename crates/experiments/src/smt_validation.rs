//! Validation of the paper's SMT methodology.
//!
//! The paper never simulates SMT directly: it approximates an SMT-2
//! (SMT-4) processor by running one thread with a 28-entry (14-entry)
//! SB — the per-thread share of the statically partitioned 56-entry
//! buffer. This experiment runs a *real* fine-grained SMT-2 core
//! (shared pipeline, partitioned queues) and compares the per-thread
//! SB-stall ratio and SPB benefit against the single-thread SB28
//! approximation, for the SB-bound applications.
//!
//! If the approximation is sound, the two columns of each pair should
//! tell the same story: similar SB-stall ratios, similar relative SPB
//! gains.

use crate::Budget;
use spb_cpu::smt::{SmtCore, ThreadContext};
use spb_cpu::CoreConfig;
use spb_mem::{MemoryConfig, MemorySystem};
use spb_sim::config::PolicyKind;
use spb_stats::Table;
use spb_trace::phased::PhasedWorkload;
use spb_trace::profile::AppProfile;

fn run_smt2(app: &AppProfile, policy: PolicyKind, uops_per_thread: u64) -> (u64, f64) {
    let mem_cfg = MemoryConfig {
        cores: 2,
        ..Default::default()
    };
    let mut mem = MemorySystem::new(mem_cfg);
    let mut contexts: Vec<ThreadContext> = Vec::new();
    for i in 0..2usize {
        let trace = PhasedWorkload::for_thread(app.phases().to_vec(), 42, i as u32);
        contexts.push((i, Box::new(trace), policy.build()));
    }
    let mut core = SmtCore::new(CoreConfig::skylake(), contexts);
    // Warm up, then measure, on one continuous clock.
    let mut now = 0u64;
    let warm = uops_per_thread / 4;
    while core
        .thread(0)
        .committed_uops()
        .min(core.thread(1).committed_uops())
        < warm
    {
        mem.tick(now);
        core.cycle(&mut mem, now);
        now += 1;
    }
    // reset_stats zeroes the committed-µop counters, so the measured
    // loop targets the per-thread budget directly.
    core.reset_stats();
    mem.reset_stats();
    let start = now;
    while core
        .thread(0)
        .committed_uops()
        .min(core.thread(1).committed_uops())
        < uops_per_thread
    {
        mem.tick(now);
        core.cycle(&mut mem, now);
        now += 1;
    }
    (now - start, core.topdown().sb_stall_ratio())
}

fn run_approx(app: &AppProfile, policy: PolicyKind, budget: Budget) -> (u64, f64) {
    let cfg = budget.sim_config().with_sb(28).with_policy(policy);
    let r = spb_sim::Simulation::with_config(app, &cfg).run_or_panic();
    (r.cycles, r.sb_stall_ratio())
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    let uops = budget.sim_config().measure_uops / 2;
    let mut t = Table::new(
        "SMT validation — real SMT-2 vs the paper's single-thread SB28 approximation",
        &[
            "smt2 SB-stall %",
            "approx SB-stall %",
            "smt2 spb speedup",
            "approx spb speedup",
        ],
    );
    for app in AppProfile::spec2017_sb_bound() {
        let (smt_ac, smt_stall) = run_smt2(&app, PolicyKind::AtCommit, uops);
        let (smt_spb, _) = run_smt2(&app, PolicyKind::spb_default(), uops);
        let (approx_ac, approx_stall) = run_approx(&app, PolicyKind::AtCommit, budget);
        let (approx_spb, _) = run_approx(&app, PolicyKind::spb_default(), budget);
        t.push_row(
            app.name(),
            &[
                smt_stall * 100.0,
                approx_stall * 100.0,
                smt_ac as f64 / smt_spb as f64,
                approx_ac as f64 / approx_spb as f64,
            ],
        );
    }
    t.set_precision(2);
    vec![t]
}

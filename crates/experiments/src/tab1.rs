//! Table I: the simulated configuration.
//!
//! Prints the structural parameters the simulator actually uses so a
//! reader can diff them against the paper's Table I.

use crate::Budget;
use spb_stats::Table;

/// Emits the configuration dump (budget is unused; the configuration is
/// static).
pub fn run(_budget: Budget) -> Vec<Table> {
    let core = spb_cpu::CoreConfig::skylake();
    let mem = spb_mem::MemoryConfig::default();
    let mut t = Table::new("Table I — simulated configuration", &["value"]);
    t.set_precision(0);
    t.push_row("dispatch/commit width", &[f64::from(core.dispatch_width)]);
    t.push_row("ROB entries", &[core.rob_entries as f64]);
    t.push_row("issue queue entries", &[core.iq_entries as f64]);
    t.push_row("load queue entries", &[core.lq_entries as f64]);
    t.push_row("store queue / SB entries", &[core.sb_entries as f64]);
    t.push_row("int physical registers", &[core.int_regs as f64]);
    t.push_row("fp physical registers", &[core.fp_regs as f64]);
    t.push_row("L1D size (KiB)", &[mem.l1_size as f64 / 1024.0]);
    t.push_row("L1D ways", &[mem.l1_ways as f64]);
    t.push_row("L1D latency (cycles)", &[mem.l1_latency as f64]);
    t.push_row("L2 size (KiB)", &[mem.l2_size as f64 / 1024.0]);
    t.push_row("L2 ways", &[mem.l2_ways as f64]);
    t.push_row("L2 latency (cycles)", &[mem.l2_latency as f64]);
    t.push_row("L3 size (MiB)", &[mem.l3_size as f64 / 1024.0 / 1024.0]);
    t.push_row("L3 ways", &[mem.l3_ways as f64]);
    t.push_row("L3 latency (cycles)", &[mem.l3_latency as f64]);
    t.push_row("MSHR entries per cache", &[mem.mshrs_per_core as f64]);
    t.push_row("DRAM latency (cycles)", &[mem.dram.latency as f64]);
    t.push_row("DRAM channels", &[mem.dram.channels as f64]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_parameters() {
        let t = &run(Budget::Quick)[0];
        assert_eq!(t.get("ROB entries", "value"), Some(224.0));
        assert_eq!(t.get("store queue / SB entries", "value"), Some(56.0));
        assert_eq!(t.get("L1D size (KiB)", "value"), Some(32.0));
        assert_eq!(t.get("L3 size (MiB)", "value"), Some(16.0));
        assert_eq!(t.get("MSHR entries per cache", "value"), Some(64.0));
    }
}

//! Figure 18: PARSEC with 8 threads.
//!
//! Multi-threaded runs over the shared-L3 MESI hierarchy. Two things the
//! paper checks: (i) multi-threaded applications also contain store
//! bursts that SPB captures, and (ii) SPB is coherence-friendly — no
//! application regresses, because bursts target uncontended (private)
//! pages.

use crate::Budget;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

fn norm(suite: &SuiteResult, ideal: &SuiteResult, a: usize) -> f64 {
    ideal.runs[a].cycles as f64 / suite.runs[a].cycles as f64
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::parsec();
    let cfg = budget.parsec_sim_config();
    let ideal = SuiteResult::run(&apps, &cfg.clone().with_policy(PolicyKind::IdealSb));
    let ac56 = SuiteResult::run(&apps, &cfg.clone().with_sb(56));
    let spb56 = SuiteResult::run(
        &apps,
        &cfg.clone()
            .with_sb(56)
            .with_policy(PolicyKind::spb_default()),
    );
    let ac14 = SuiteResult::run(&apps, &cfg.clone().with_sb(14));
    let spb14 = SuiteResult::run(
        &apps,
        &cfg.clone()
            .with_sb(14)
            .with_policy(PolicyKind::spb_default()),
    );

    let mut t = Table::new(
        "Fig. 18 — PARSEC (8 threads) normalized to Ideal",
        &["at-commit SB56", "spb SB56", "at-commit SB14", "spb SB14"],
    );
    let mut rows_all: Vec<[f64; 4]> = Vec::new();
    let mut rows_bound: Vec<[f64; 4]> = Vec::new();
    for (a, app) in apps.iter().enumerate() {
        let row = [
            norm(&ac56, &ideal, a),
            norm(&spb56, &ideal, a),
            norm(&ac14, &ideal, a),
            norm(&spb14, &ideal, a),
        ];
        if app.is_sb_bound() {
            t.push_row(app.name(), &row);
            rows_bound.push(row);
        }
        rows_all.push(row);
    }
    let gm = |rows: &[[f64; 4]], i: usize| geomean(&rows.iter().map(|r| r[i]).collect::<Vec<_>>());
    t.push_row(
        "SB-BOUND",
        &[
            gm(&rows_bound, 0),
            gm(&rows_bound, 1),
            gm(&rows_bound, 2),
            gm(&rows_bound, 3),
        ],
    );
    t.push_row(
        "ALL",
        &[
            gm(&rows_all, 0),
            gm(&rows_all, 1),
            gm(&rows_all, 2),
            gm(&rows_all, 3),
        ],
    );
    vec![t]
}

//! §VII-B: SPB versus non-speculative store coalescing.
//!
//! Coalescing (Ros & Kaxiras, ISCA'18) merges same-block stores into one
//! SB entry, multiplying the *effective* SB size by up to 8 for 8-byte
//! bursts — but it does nothing about the *latency* of the head entry's
//! miss, while SPB hides that latency without enlarging the SB. The
//! paper argues SPB reaches near-ideal "with minimal hardware overhead"
//! where coalescing needs significant SB redesign; this experiment puts
//! the two (and their combination) side by side.

use crate::Budget;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::spec2017_sb_bound();
    let mut t = Table::new(
        "§VII-B — SPB vs store coalescing (SB-bound geomean vs Ideal)",
        &["SB14", "SB56"],
    );
    let base = budget.sim_config();
    let ideal = SuiteResult::run(&apps, &base.clone().with_policy(PolicyKind::IdealSb));
    let norm = |suite: &SuiteResult| {
        geomean(
            &suite
                .runs
                .iter()
                .zip(&ideal.runs)
                .map(|(r, i)| i.cycles as f64 / r.cycles as f64)
                .collect::<Vec<_>>(),
        )
    };
    let run_cfg = |sb: usize, coalesce: bool, policy: PolicyKind| {
        let mut cfg = base.clone().with_sb(sb).with_policy(policy);
        if coalesce {
            cfg.core = cfg.core.with_coalescing();
        }
        norm(&SuiteResult::run(&apps, &cfg))
    };
    for (label, coalesce, policy) in [
        ("at-commit", false, PolicyKind::AtCommit),
        ("at-commit + coalescing", true, PolicyKind::AtCommit),
        ("spb", false, PolicyKind::spb_default()),
        ("spb + coalescing", true, PolicyKind::spb_default()),
    ] {
        t.push_row(
            label,
            &[run_cfg(14, coalesce, policy), run_cfg(56, coalesce, policy)],
        );
    }
    vec![t]
}

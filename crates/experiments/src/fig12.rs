//! Figure 12: prefetch traffic of SPB normalized to at-commit.
//!
//! REQ counts all store-prefetch requests reaching the L1 controller
//! (each checks the tags); MISS counts the subset that missed L1 and
//! generated downstream (L2 and beyond) traffic. Paper headline: SPB
//! adds modest traffic (a few percent overall; 8–19% REQ for SB-bound
//! apps) because it is only enabled on detected bursts.

use crate::grid::Grid;
use crate::Budget;
use spb_mem::RfoOrigin;
use spb_sim::config::PolicyKind;
use spb_sim::RunResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

fn store_prefetch_traffic(r: &spb_sim::RunResult) -> (u64, u64) {
    let origins = [
        RfoOrigin::AtExecute,
        RfoOrigin::AtCommit,
        RfoOrigin::SpbBurst,
    ];
    let req = origins
        .iter()
        .map(|o| r.mem.prefetch_requests[o.index()])
        .sum();
    let miss = origins
        .iter()
        .map(|o| r.mem.prefetch_downstream[o.index()])
        .sum();
    (req, miss)
}

/// Builds the table from matched per-app at-commit and SPB runs (SB56).
fn tables_from_runs(
    apps: &[AppProfile],
    ac_runs: &[RunResult],
    spb_runs: &[RunResult],
) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 12 — SPB prefetch traffic normalized to at-commit (SB56)",
        &["REQ", "MISS"],
    );
    let mut all_req = Vec::new();
    let mut all_miss = Vec::new();
    let mut bound_req = Vec::new();
    let mut bound_miss = Vec::new();
    for (a, app) in apps.iter().enumerate() {
        let (req_ac, miss_ac) = store_prefetch_traffic(&ac_runs[a]);
        let (req_spb, miss_spb) = store_prefetch_traffic(&spb_runs[a]);
        if req_ac < 100 {
            // Effectively store-free application: a traffic *ratio* is
            // meaningless noise, skip it (matches the paper's plotting
            // of SB-bound apps only).
            continue;
        }
        let req = req_spb as f64 / req_ac as f64;
        let miss = miss_spb as f64 / miss_ac.max(1) as f64;
        if app.is_sb_bound() {
            t.push_row(app.name(), &[req, miss]);
            bound_req.push(req);
            bound_miss.push(miss);
        }
        all_req.push(req);
        if miss_ac >= 100 {
            // MISS ratios are only meaningful when the baseline has
            // downstream traffic (cache-resident stores have none).
            all_miss.push(miss);
        }
    }
    t.push_row("SB-BOUND", &[geomean(&bound_req), geomean(&bound_miss)]);
    t.push_row("ALL", &[geomean(&all_req), geomean(&all_miss)]);
    vec![t]
}

/// Re-renders the figure from the shared grid's SB56 column (at-commit
/// and SPB views).
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    tables_from_runs(&grid.apps, &grid.at(1, 2).runs, &grid.at(2, 2).runs)
}

/// Runs the experiment at `budget` (SB56).
pub fn run(budget: Budget) -> Vec<Table> {
    let cfg = budget.sim_config();
    let apps = AppProfile::spec2017();
    let ac: Vec<RunResult> = apps
        .iter()
        .map(|app| spb_sim::Simulation::with_config(app, &cfg).run_or_panic())
        .collect();
    let spb: Vec<RunResult> = apps
        .iter()
        .map(|app| {
            spb_sim::Simulation::with_config(
                app,
                &cfg.clone().with_policy(PolicyKind::spb_default()),
            )
            .run_or_panic()
        })
        .collect();
    tables_from_runs(&apps, &ac, &spb)
}

//! Figure 5: performance normalized to the ideal SB.
//!
//! Paper targets (geomean over SPEC CPU 2017, "ALL" / "SB-BOUND"):
//!
//! | SB size | at-commit | SPB |
//! |---------|-----------|-----|
//! | SB56    | 0.981     | 1.005 (SB-bound 1.023) |
//! | SB28    | 0.936     | 0.989 (SB-bound 0.987) |
//! | SB14    | 0.859 (SB-bound 0.701) | 0.954 (SB-bound 0.926) |

use crate::grid::{policies, Grid, SB_SIZES};
use crate::Budget;
use spb_stats::Table;

/// Builds the Figure 5 tables from an existing grid.
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    let mut all = Table::new(
        "Fig. 5 — performance normalized to Ideal (geomean, ALL)",
        &["at-execute", "at-commit", "spb"],
    );
    let mut sb_bound = Table::new(
        "Fig. 5 — performance normalized to Ideal (geomean, SB-BOUND)",
        &["at-execute", "at-commit", "spb"],
    );
    for (s, &sb) in SB_SIZES.iter().enumerate() {
        let row_all: Vec<f64> = (0..policies().len())
            .map(|p| grid.geomean_norm_perf_all(grid.at(p, s)))
            .collect();
        let row_sb: Vec<f64> = (0..policies().len())
            .map(|p| grid.geomean_norm_perf_sb_bound(grid.at(p, s)))
            .collect();
        all.push_row(format!("SB{sb}"), &row_all);
        sb_bound.push_row(format!("SB{sb}"), &row_sb);
    }
    vec![all, sb_bound]
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    let grid = Grid::spec(budget);
    tables_from_grid(&grid)
}

//! Figure 3: where the stores causing SB-induced stalls live.
//!
//! For each SB-bound application, the fraction of SB-stall cycles whose
//! blocking store belongs to `memcpy`, `memset`, `calloc`, the kernel's
//! `clear_page`, or the application itself. Library/OS code dominates
//! for most applications; `deepsjeng` and `roms` stall on their own
//! hand-written copy loops.

use crate::grid::Grid;
use crate::Budget;
use spb_sim::RunResult;
use spb_stats::Table;
use spb_trace::profile::AppProfile;
use spb_trace::CodeRegion;

fn empty_table() -> Table {
    let columns: Vec<String> = CodeRegion::ALL.iter().map(|r| r.to_string()).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    Table::new(
        "Fig. 3 — SB-stall cycles by code region of the blocking store (at-commit, SB56)",
        &col_refs,
    )
}

fn region_fractions(r: &RunResult) -> Vec<f64> {
    let total: u64 = r.cpu.sb_stall_by_region.iter().sum();
    r.cpu
        .sb_stall_by_region
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            }
        })
        .collect()
}

/// Re-renders the figure from the shared grid's at-commit/SB56 view,
/// keeping only the SB-bound applications.
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    let mut t = empty_table();
    let suite = grid.at(1, 2); // at-commit, SB56
    for (a, app) in grid.apps.iter().enumerate() {
        if app.is_sb_bound() {
            t.push_row(app.name(), &region_fractions(&suite.runs[a]));
        }
    }
    vec![t]
}

/// Runs the experiment at `budget` (at-commit, 56-entry SB).
pub fn run(budget: Budget) -> Vec<Table> {
    let cfg = budget.sim_config();
    let mut t = empty_table();
    for app in AppProfile::spec2017_sb_bound() {
        let r = spb_sim::Simulation::with_config(&app, &cfg).run_or_panic();
        t.push_row(app.name(), &region_fractions(&r));
    }
    vec![t]
}

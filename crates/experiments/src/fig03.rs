//! Figure 3: where the stores causing SB-induced stalls live.
//!
//! For each SB-bound application, the fraction of SB-stall cycles whose
//! blocking store belongs to `memcpy`, `memset`, `calloc`, the kernel's
//! `clear_page`, or the application itself. Library/OS code dominates
//! for most applications; `deepsjeng` and `roms` stall on their own
//! hand-written copy loops.

use crate::Budget;
use spb_stats::Table;
use spb_trace::profile::AppProfile;
use spb_trace::CodeRegion;

/// Runs the experiment at `budget` (at-commit, 56-entry SB).
pub fn run(budget: Budget) -> Vec<Table> {
    let cfg = budget.sim_config();
    let columns: Vec<String> = CodeRegion::ALL.iter().map(|r| r.to_string()).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig. 3 — SB-stall cycles by code region of the blocking store (at-commit, SB56)",
        &col_refs,
    );
    for app in AppProfile::spec2017_sb_bound() {
        let r = spb_sim::Simulation::with_config(&app, &cfg).run_or_panic();
        let total: u64 = r.cpu.sb_stall_by_region.iter().sum();
        let fractions: Vec<f64> = r
            .cpu
            .sb_stall_by_region
            .iter()
            .map(|&c| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            })
            .collect();
        t.push_row(app.name(), &fractions);
    }
    vec![t]
}

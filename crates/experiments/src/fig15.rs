//! Figure 15: per-application version of Figure 14 for the SB-bound
//! applications — execution stalls with an L1D miss pending, normalized
//! to at-commit.
//!
//! All SB-bound applications benefit except `roms`, whose SPB bursts
//! evict live blocks (conflict misses) that its re-referenced loads then
//! miss on — the §VI-A pathology.

use crate::grid::{Grid, SB_SIZES};
use crate::Budget;
use spb_stats::Table;

/// Builds the three per-SB-size tables from a grid over the SB-bound
/// subset.
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    SB_SIZES
        .iter()
        .enumerate()
        .map(|(s, &sb)| {
            let mut t = Table::new(
                format!(
                    "Fig. 15 — per-app execution stalls w/ L1D miss pending vs at-commit (SB{sb})"
                ),
                &["at-execute", "spb", "ideal"],
            );
            let base = grid.at(1, s);
            for (a, app) in grid.apps.iter().enumerate() {
                let b = base.runs[a].topdown.l1d_miss_pending_stalls().max(1) as f64;
                let row: Vec<f64> = [grid.at(0, s), grid.at(2, s), &grid.ideal]
                    .iter()
                    .map(|suite| suite.runs[a].topdown.l1d_miss_pending_stalls() as f64 / b)
                    .collect();
                t.push_row(app.name(), &row);
            }
            t
        })
        .collect()
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_from_grid(&Grid::spec_sb_bound(budget))
}

//! The SB-shrinking claim: a 20-entry SB with SPB matches a standard
//! 56-entry SB with at-commit prefetching (§I / §VI-A), making SPB an
//! enabler for smaller, more energy-efficient store buffers.

use crate::Budget;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

/// Runs the experiment at `budget`: SB ∈ {14, 20, 28, 56} for both
/// policies, normalized to the 56-entry at-commit baseline (>1.0 means
/// faster than the Skylake default).
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::spec2017();
    let base_cfg = budget.sim_config().with_sb(56);
    let baseline = SuiteResult::run(&apps, &base_cfg);
    let mut t = Table::new(
        "SB-shrink claim — geomean speedup vs 56-entry at-commit",
        &["at-commit", "spb"],
    );
    for sb in [14usize, 20, 28, 56] {
        let ac = SuiteResult::run(&apps, &budget.sim_config().with_sb(sb));
        let spb = SuiteResult::run(
            &apps,
            &budget
                .sim_config()
                .with_sb(sb)
                .with_policy(PolicyKind::spb_default()),
        );
        t.push_row(
            format!("SB{sb}"),
            &[
                ac.geomean_speedup_all(&baseline),
                spb.geomean_speedup_all(&baseline),
            ],
        );
    }
    vec![t]
}

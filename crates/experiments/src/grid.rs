//! The shared run grid most figures are views of.
//!
//! Figures 5, 6, 8, 9, 10, 14 and 15 all slice the same experiment
//! space: {at-execute, at-commit, SPB} × {SB14, SB28, SB56} plus the
//! ideal SB, over SPEC CPU 2017. [`Grid::compute`] runs it once; the
//! figure modules extract their views.

use crate::Budget;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_trace::profile::AppProfile;

/// The SB sizes the paper evaluates.
pub const SB_SIZES: [usize; 3] = [14, 28, 56];

/// The non-ideal policies of the main comparison, in figure order.
pub fn policies() -> [PolicyKind; 3] {
    [
        PolicyKind::AtExecute,
        PolicyKind::AtCommit,
        PolicyKind::spb_default(),
    ]
}

/// All runs of the main comparison.
pub struct Grid {
    /// The applications, in suite order.
    pub apps: Vec<AppProfile>,
    /// Ideal-SB results (SB-size independent).
    pub ideal: SuiteResult,
    /// `results[p][s]` = policy `policies()[p]` at SB size `SB_SIZES[s]`.
    pub results: Vec<Vec<SuiteResult>>,
}

impl Grid {
    /// Runs the full grid over `apps` at `budget`.
    pub fn compute(apps: Vec<AppProfile>, budget: Budget) -> Self {
        let base = budget.sim_config();
        let ideal = SuiteResult::run(&apps, &base.clone().with_policy(PolicyKind::IdealSb));
        let results = policies()
            .iter()
            .map(|p| {
                SB_SIZES
                    .iter()
                    .map(|&sb| SuiteResult::run(&apps, &base.clone().with_sb(sb).with_policy(*p)))
                    .collect()
            })
            .collect();
        Self {
            apps,
            ideal,
            results,
        }
    }

    /// The full SPEC CPU 2017 grid.
    pub fn spec(budget: Budget) -> Self {
        Self::compute(AppProfile::spec2017(), budget)
    }

    /// Only the SB-bound subset (for per-application figures).
    pub fn spec_sb_bound(budget: Budget) -> Self {
        Self::compute(AppProfile::spec2017_sb_bound(), budget)
    }

    /// The result set for (policy index, SB index).
    pub fn at(&self, policy_idx: usize, sb_idx: usize) -> &SuiteResult {
        &self.results[policy_idx][sb_idx]
    }

    /// Per-application performance of `suite` normalized to the ideal SB
    /// (`ideal_cycles / cycles`; 1.0 = matches ideal).
    pub fn norm_perf_vs_ideal(&self, suite: &SuiteResult) -> Vec<f64> {
        suite
            .runs
            .iter()
            .zip(&self.ideal.runs)
            .map(|(r, i)| i.cycles as f64 / r.cycles as f64)
            .collect()
    }

    /// Geometric-mean normalized performance over all applications.
    pub fn geomean_norm_perf_all(&self, suite: &SuiteResult) -> f64 {
        spb_stats::summary::geomean(&self.norm_perf_vs_ideal(suite))
    }

    /// Geometric-mean normalized performance over the SB-bound subset.
    pub fn geomean_norm_perf_sb_bound(&self, suite: &SuiteResult) -> f64 {
        let vals: Vec<f64> = self
            .norm_perf_vs_ideal(suite)
            .into_iter()
            .zip(&suite.sb_bound)
            .filter(|(_, sb)| **sb)
            .map(|(v, _)| v)
            .collect();
        spb_stats::summary::geomean(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_has_expected_shape() {
        let apps: Vec<AppProfile> = ["x264", "povray"]
            .iter()
            .map(|n| AppProfile::by_name(n).unwrap())
            .collect();
        let grid = Grid::compute(apps, Budget::Quick);
        assert_eq!(grid.results.len(), 3);
        assert_eq!(grid.results[0].len(), 3);
        assert_eq!(grid.ideal.runs.len(), 2);
        let norm = grid.norm_perf_vs_ideal(grid.at(1, 2));
        assert_eq!(norm.len(), 2);
        // Nothing should beat the ideal SB by much.
        for v in norm {
            assert!(v < 1.15, "normalized perf {v} suspiciously above ideal");
        }
    }
}

//! The shared run grid most figures are views of.
//!
//! Figures 5, 6, 8, 9, 10, 14 and 15 all slice the same experiment
//! space: {at-execute, at-commit, SPB} × {SB14, SB28, SB56} plus the
//! ideal SB, over SPEC CPU 2017. [`Grid::compute`] runs it once; the
//! figure modules extract their views.

use crate::Budget;
use spb_sim::config::{PolicyKind, SimConfig};
use spb_sim::suite::SuiteResult;
use spb_sim::sweep::{run_cells, SweepOptions, SweepReport};
use spb_trace::profile::AppProfile;

/// The SB sizes the paper evaluates.
pub const SB_SIZES: [usize; 3] = [14, 28, 56];

/// The non-ideal policies of the main comparison, in figure order.
pub fn policies() -> [PolicyKind; 3] {
    [
        PolicyKind::AtExecute,
        PolicyKind::AtCommit,
        PolicyKind::spb_default(),
    ]
}

/// All runs of the main comparison.
pub struct Grid {
    /// The applications, in suite order.
    pub apps: Vec<AppProfile>,
    /// Ideal-SB results (SB-size independent).
    pub ideal: SuiteResult,
    /// `results[p][s]` = policy `policies()[p]` at SB size `SB_SIZES[s]`.
    pub results: Vec<Vec<SuiteResult>>,
}

impl Grid {
    /// Runs the full grid over `apps` at `budget`, parallelized per
    /// [`SweepOptions::from_env`].
    pub fn compute(apps: Vec<AppProfile>, budget: Budget) -> Self {
        Self::compute_with(apps, budget, &SweepOptions::from_env())
    }

    /// Runs the full grid with explicit sweep options. The whole grid —
    /// the ideal SB plus every `policy × SB size` suite — is flattened
    /// into one cell list so the worker pool never drains between
    /// suites; results are re-assembled in the serial order.
    pub fn compute_with(apps: Vec<AppProfile>, budget: Budget, opts: &SweepOptions) -> Self {
        let base = budget.sim_config();
        let mut configs = vec![base.clone().with_policy(PolicyKind::IdealSb)];
        for p in policies() {
            for &sb in &SB_SIZES {
                configs.push(base.clone().with_sb(sb).with_policy(p));
            }
        }
        let cells: Vec<(&AppProfile, SimConfig)> = configs
            .iter()
            .flat_map(|c| apps.iter().map(|a| (a, c.clone())))
            .collect();
        let mut runs = run_cells(&cells, opts).into_iter();
        let sb_bound: Vec<bool> = apps.iter().map(|a| a.is_sb_bound()).collect();
        let mut next_suite = || SuiteResult {
            runs: runs.by_ref().take(apps.len()).collect(),
            sb_bound: sb_bound.clone(),
        };
        let ideal = next_suite();
        let results = policies()
            .iter()
            .map(|_| SB_SIZES.iter().map(|_| next_suite()).collect())
            .collect();
        Self {
            apps,
            ideal,
            results,
        }
    }

    /// Flattens every run of the grid into one machine-readable report
    /// (ideal suite first, then policy-major × SB-minor, matching
    /// [`Grid::compute`] order).
    pub fn to_report(&self, name: impl Into<String>) -> SweepReport {
        let all: Vec<_> = std::iter::once(&self.ideal)
            .chain(self.results.iter().flatten())
            .flat_map(|s| s.runs.iter().cloned())
            .collect();
        SweepReport::new(name, &all)
    }

    /// The full SPEC CPU 2017 grid.
    pub fn spec(budget: Budget) -> Self {
        Self::compute(AppProfile::spec2017(), budget)
    }

    /// Only the SB-bound subset (for per-application figures).
    pub fn spec_sb_bound(budget: Budget) -> Self {
        Self::compute(AppProfile::spec2017_sb_bound(), budget)
    }

    /// The result set for (policy index, SB index).
    pub fn at(&self, policy_idx: usize, sb_idx: usize) -> &SuiteResult {
        &self.results[policy_idx][sb_idx]
    }

    /// Per-application performance of `suite` normalized to the ideal SB
    /// (`ideal_cycles / cycles`; 1.0 = matches ideal).
    pub fn norm_perf_vs_ideal(&self, suite: &SuiteResult) -> Vec<f64> {
        suite
            .runs
            .iter()
            .zip(&self.ideal.runs)
            .map(|(r, i)| i.cycles as f64 / r.cycles as f64)
            .collect()
    }

    /// Geometric-mean normalized performance over all applications.
    pub fn geomean_norm_perf_all(&self, suite: &SuiteResult) -> f64 {
        spb_stats::summary::geomean(&self.norm_perf_vs_ideal(suite))
    }

    /// Geometric-mean normalized performance over the SB-bound subset.
    pub fn geomean_norm_perf_sb_bound(&self, suite: &SuiteResult) -> f64 {
        let vals: Vec<f64> = self
            .norm_perf_vs_ideal(suite)
            .into_iter()
            .zip(&suite.sb_bound)
            .filter(|(_, sb)| **sb)
            .map(|(v, _)| v)
            .collect();
        spb_stats::summary::geomean(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_has_expected_shape() {
        let apps: Vec<AppProfile> = ["x264", "povray"]
            .iter()
            .map(|n| AppProfile::by_name(n).unwrap())
            .collect();
        let grid = Grid::compute(apps, Budget::Quick);
        assert_eq!(grid.results.len(), 3);
        assert_eq!(grid.results[0].len(), 3);
        assert_eq!(grid.ideal.runs.len(), 2);
        let norm = grid.norm_perf_vs_ideal(grid.at(1, 2));
        assert_eq!(norm.len(), 2);
        // 1 ideal + 3 policies × 3 SB sizes, each over 2 apps.
        let report = grid.to_report("unit");
        assert_eq!(report.records.len(), 2 * 10);
        assert_eq!(report.records[0].app, "x264");
        // Nothing should beat the ideal SB by much.
        for v in norm {
            assert!(v < 1.15, "normalized perf {v} suspiciously above ideal");
        }
    }
}

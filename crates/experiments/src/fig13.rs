//! Figure 13: L1D tag-access overhead of SPB normalized to at-commit.
//!
//! SPB's burst RFOs (and the continuing per-store at-commit requests
//! that get discarded as `PopReq`) all check the L1 tags. Paper
//! headline: +3.4% / +7.7% / +3.5% tag checks for SB14 / SB28 / SB56
//! overall (8.6–18.9% for SB-bound apps), partially offset by fewer
//! wrong-path L1 accesses.

use crate::grid::{Grid, SB_SIZES};
use crate::Budget;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;

fn norm_tag_checks(suite: &SuiteResult, baseline: &SuiteResult, sb_bound_only: bool) -> f64 {
    let vals: Vec<f64> = suite
        .runs
        .iter()
        .zip(&baseline.runs)
        .zip(&suite.sb_bound)
        .filter(|(_, b)| !sb_bound_only || **b)
        .map(|((r, base), _)| r.mem.l1_tag_checks as f64 / base.mem.l1_tag_checks.max(1) as f64)
        .collect();
    geomean(&vals)
}

/// Builds the table from the main grid.
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 13 — L1D tag checks of SPB normalized to at-commit",
        &["ALL", "SB-BOUND"],
    );
    for (s, &sb) in SB_SIZES.iter().enumerate() {
        let base = grid.at(1, s);
        let spb = grid.at(2, s);
        t.push_row(
            format!("SB{sb}"),
            &[
                norm_tag_checks(spb, base, false),
                norm_tag_checks(spb, base, true),
            ],
        );
    }
    vec![t]
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_from_grid(&Grid::spec(budget))
}

//! Squash storms: wasted-traffic curves under wrong-path store bursts.
//!
//! The paper's traffic numbers assume the detector only ever sees
//! committed stores. This scenario turns the wrong-path model on
//! ([`spb_trace::squash`]) and sweeps squash intensity × prefetch
//! policy, reporting what each policy *wastes* when its speculation is
//! thrown away: RFOs that tagged blocks nobody ever stored, M-state
//! lines leaked into the L1, and the energy of both ([`spb_energy`]'s
//! speculative-waste column). Per-store speculation (at-execute) pays
//! one wasted RFO per wrong-path store by construction; at-commit is
//! the passive floor (zero by definition — it never fires before
//! commit); SPB sits between them, bounded by the episodes' page spans
//! (the bound `spb_verify::leak` checks).
//!
//! Counters are normalized per 1k committed µops so the curves are
//! comparable across budgets, and the slowdown table pins the cost of
//! the storms themselves (redirect penalties plus wasted fetch slots)
//! against the rate-0 baseline of the same policy.

use crate::Budget;
use spb_energy::EnergyModel;
use spb_sim::config::{PolicyKind, SimConfig};
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;
use spb_trace::SquashConfig;

/// The squash intensities the sweep visits (`rate=0` is the disabled
/// model — its rows are the executable zero baseline).
pub const RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

/// The policies whose waste curves the tables compare, in column order.
pub fn policies() -> [(&'static str, PolicyKind); 3] {
    [
        ("at-execute", PolicyKind::AtExecute),
        ("spb", PolicyKind::spb_default()),
        ("at-commit", PolicyKind::AtCommit),
    ]
}

/// Squash spec for one sweep row.
fn storm(rate: f64) -> SquashConfig {
    SquashConfig::parse(&format!("rate={rate},depth=8..32,storm=4,seed=11")).unwrap()
}

/// Builds the waste-curve tables for `apps` on top of `base`.
pub fn tables_for(apps: &[AppProfile], base: &SimConfig) -> Vec<Table> {
    let cols: Vec<&str> = policies().iter().map(|(l, _)| *l).collect();
    let mut rfos = Table::new(
        "Squash storms — wasted RFOs per 1k committed µops (SB14)",
        &cols,
    );
    let mut leaked = Table::new(
        "Squash storms — leaked M-state blocks per 1k committed µops (SB14)",
        &cols,
    );
    let mut energy = Table::new(
        "Squash storms — speculative-waste energy, nJ per 1k committed µops (SB14)",
        &cols,
    );
    let mut slowdown = Table::new(
        "Squash storms — geomean slowdown vs the same policy at rate 0 (SB14)",
        &cols,
    );
    let model = EnergyModel::default();

    let mut baselines: Vec<Option<SuiteResult>> = vec![None; policies().len()];
    for rate in RATES {
        let label = format!("rate={rate}");
        let (mut r_rfos, mut r_leak, mut r_nj, mut r_slow) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for (p, (_, policy)) in policies().into_iter().enumerate() {
            let cfg = base
                .clone()
                .with_sb(14)
                .with_policy(policy)
                .with_squash(storm(rate));
            let suite = SuiteResult::run(apps, &cfg);
            let uops: u64 = suite.runs.iter().map(|r| r.uops).sum();
            let per_k = |count: u64| count as f64 * 1_000.0 / uops as f64;
            let wasted_rfos: u64 = suite.runs.iter().map(|r| r.mem.spec_wasted_rfos).sum();
            let leaked_m: u64 = suite.runs.iter().map(|r| r.mem.spec_leaked_m_blocks).sum();
            let nj: f64 = suite
                .runs
                .iter()
                .map(|r| {
                    model.speculative_waste_nj(
                        r.mem.spec_wasted_rfos,
                        r.mem.spec_wasted_coh_msgs,
                        r.mem.spec_wasted_dram,
                    )
                })
                .sum();
            r_rfos.push(per_k(wasted_rfos));
            r_leak.push(per_k(leaked_m));
            r_nj.push(nj * 1_000.0 / uops as f64);
            let baseline = baselines[p].get_or_insert_with(|| suite.clone());
            r_slow.push(geomean(
                &suite
                    .runs
                    .iter()
                    .zip(&baseline.runs)
                    .map(|(r, b)| r.cycles as f64 / b.cycles as f64)
                    .collect::<Vec<_>>(),
            ));
        }
        rfos.push_row(&label, &r_rfos);
        leaked.push_row(&label, &r_leak);
        energy.push_row(&label, &r_nj);
        slowdown.push_row(&label, &r_slow);
    }
    vec![rfos, leaked, energy, slowdown]
}

/// Runs the experiment at `budget` over the SB-bound SPEC subset.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_for(&AppProfile::spec2017_sb_bound(), &budget.sim_config())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waste_curves_have_the_expected_shape() {
        // One tiny app keeps this affordable in `cargo test`.
        let apps = vec![AppProfile::by_name("x264").unwrap()];
        let mut base = SimConfig::quick();
        base.warmup_uops = 4_000;
        base.measure_uops = 40_000;
        let tables = tables_for(&apps, &base);
        assert_eq!(tables.len(), 4);
        let rfos = &tables[0];
        // Rate 0 is the executable zero baseline for every policy…
        for col in ["at-execute", "spb", "at-commit"] {
            assert_eq!(rfos.get("rate=0", col), Some(0.0), "{col}");
        }
        // …at-commit never speculates at any rate…
        for rate in RATES {
            assert_eq!(rfos.get(&format!("rate={rate}"), "at-commit"), Some(0.0));
        }
        // …and at-execute wastes strictly more than nothing under storms,
        // with SPB at or below the per-store curve.
        let exe = rfos.get("rate=0.2", "at-execute").unwrap();
        let spb = rfos.get("rate=0.2", "spb").unwrap();
        assert!(exe > 0.0, "per-store speculation wastes RFOs under storms");
        assert!(
            spb <= exe,
            "SPB's burst waste {spb} must not exceed per-store {exe}"
        );
        let energy = &tables[2];
        assert!(energy.get("rate=0.2", "at-execute").unwrap() > 0.0);
        let slowdown = &tables[3];
        assert_eq!(slowdown.get("rate=0", "spb"), Some(1.0));
    }
}

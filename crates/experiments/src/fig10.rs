//! Figure 10: issue-stall cycles normalized to at-commit, split into
//! SB-caused and Other-caused.
//!
//! Removing SB stalls (the ideal SB) shifts pressure to other resources
//! (ROB, load queue, …): the ideal's "Other" bar *grows* while its SB
//! bar vanishes. SPB removes a large share of SB stalls while slightly
//! *reducing* Other stalls (its prefetches shorten load waits), which is
//! how it can approach — and for SB-bound apps at SB56 beat — the
//! ideal's net stall reduction.

use crate::grid::{Grid, SB_SIZES};
use crate::Budget;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::mean;
use spb_stats::{StallCause, Table};

/// Mean (over apps) of the given stall component normalized to the
/// baseline's *total* issue stalls — so components of one row sum to the
/// row's net total.
fn component(
    suite: &SuiteResult,
    baseline: &SuiteResult,
    sb_bound_only: bool,
    sb_part: bool,
) -> f64 {
    let vals: Vec<f64> = suite
        .runs
        .iter()
        .zip(&baseline.runs)
        .zip(&suite.sb_bound)
        .filter(|(_, b)| !sb_bound_only || **b)
        .filter_map(|((r, base), _)| {
            let total_base = base.topdown.total_stall_cycles();
            if total_base < 100 {
                return None;
            }
            let part = if sb_part {
                r.topdown.stall_cycles(StallCause::StoreBuffer)
            } else {
                r.topdown.other_stall_cycles()
            };
            Some(part as f64 / total_base as f64)
        })
        .collect();
    mean(&vals)
}

/// Builds the Figure 10 tables from the main grid.
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    let mut out = Vec::new();
    for (scope, bound_only) in [("ALL", false), ("SB-BOUND", true)] {
        for (s, &sb) in SB_SIZES.iter().enumerate() {
            let base = grid.at(1, s);
            let mut t = Table::new(
                format!("Fig. 10 — issue stalls normalized to at-commit (SB{sb}, {scope})"),
                &["sb-stalls", "other-stalls", "net"],
            );
            for (label, suite) in [
                ("at-commit", base),
                ("at-execute", grid.at(0, s)),
                ("spb", grid.at(2, s)),
                ("ideal", &grid.ideal),
            ] {
                let sb_part = component(suite, base, bound_only, true);
                let other = component(suite, base, bound_only, false);
                t.push_row(label, &[sb_part, other, sb_part + other]);
            }
            out.push(t);
        }
    }
    out
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_from_grid(&Grid::spec(budget))
}

//! Runs the full figure grid (ideal SB + {at-execute, at-commit, SPB} ×
//! {SB14, SB28, SB56} over SPEC CPU 2017) as one flattened sweep and
//! writes the machine-readable JSON report under `results/`.
//!
//! Pass --quick for the smoke budget. SPB_JOBS controls the worker
//! pool; the final line prints the wall time, so
//! `SPB_JOBS=1 sweep_report --quick` vs `SPB_JOBS=4 sweep_report
//! --quick` measures the executor's parallel speedup.
use spb_experiments as exp;
use spb_sim::sweep::SweepOptions;
use std::time::Instant;

fn main() {
    let budget = exp::Budget::from_args();
    let opts = SweepOptions::from_env().progress(true);
    let label = match budget {
        exp::Budget::Quick => "quick",
        exp::Budget::Paper => "paper",
    };
    let start = Instant::now();
    let grid =
        exp::grid::Grid::compute_with(spb_trace::profile::AppProfile::spec2017(), budget, &opts);
    let wall = start.elapsed().as_secs_f64();
    let report = grid.to_report(format!("sweep-grid-{label}"));
    match report.save(std::path::Path::new("results")) {
        Ok(path) => println!("wrote {} ({} runs)", path.display(), report.records.len()),
        Err(e) => {
            eprintln!("could not write sweep report: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "grid sweep ({label}): {} cells in {wall:.2}s with {} jobs",
        report.records.len(),
        opts.jobs
    );
}

//! Debug: per-app normalized perf and stall ratios.
use spb_experiments::Budget;
use spb_sim::config::PolicyKind;
use spb_sim::Simulation;
use spb_trace::profile::AppProfile;

fn main() {
    let budget = Budget::from_args();
    let base = budget.sim_config();
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app", "ideal", "ac56", "ac14", "spb14", "sbst56", "sbst14"
    );
    for app in AppProfile::spec2017() {
        let ideal = Simulation::with_config(&app, &base.clone().with_policy(PolicyKind::IdealSb))
            .run_or_panic();
        let ac56 = Simulation::with_config(&app, &base.clone().with_sb(56)).run_or_panic();
        let ac14 = Simulation::with_config(&app, &base.clone().with_sb(14)).run_or_panic();
        let spb14 = Simulation::with_config(
            &app,
            &base
                .clone()
                .with_sb(14)
                .with_policy(PolicyKind::spb_default()),
        )
        .run_or_panic();
        println!(
            "{:<12} {:>7} {:>7.3} {:>7.3} {:>7.3} {:>6.1}% {:>6.1}%",
            app.name(),
            ideal.cycles,
            ideal.cycles as f64 / ac56.cycles as f64,
            ideal.cycles as f64 / ac14.cycles as f64,
            ideal.cycles as f64 / spb14.cycles as f64,
            ac56.sb_stall_ratio() * 100.0,
            ac14.sb_stall_ratio() * 100.0,
        );
    }
}

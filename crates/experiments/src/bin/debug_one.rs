//! Debug one app's stall anatomy.
use spb_experiments::Budget;
use spb_sim::config::PolicyKind;
use spb_sim::Simulation;
use spb_stats::StallCause;
use spb_trace::profile::AppProfile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("exchange2");
    let sb: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(14);
    let app = AppProfile::by_name(name).unwrap();
    let base = Budget::Paper.sim_config();
    for (label, cfg) in [
        ("at-commit", base.clone().with_sb(sb)),
        (
            "spb",
            base.clone()
                .with_sb(sb)
                .with_policy(PolicyKind::spb_default()),
        ),
        ("ideal", base.clone().with_policy(PolicyKind::IdealSb)),
    ] {
        let r = Simulation::with_config(&app, &cfg).run_or_panic();
        println!("{name} {label}: cycles={} ipc={:.3}", r.cycles, r.ipc());
        for c in StallCause::ALL {
            println!(
                "   {c}: {} ({:.1}%)",
                r.topdown.stall_cycles(c),
                100.0 * r.topdown.stall_cycles(c) as f64 / r.topdown.cycles() as f64
            );
        }
        println!(
            "   l1d-miss-pending: {}",
            r.topdown.l1d_miss_pending_stalls()
        );
        println!(
            "   stores={} loads={} st_misses={} st_retries={} wrongpath={}",
            r.cpu.committed_stores,
            r.cpu.committed_loads,
            r.mem.demand_store_misses,
            r.mem.store_retries,
            r.cpu.wrong_path_uops
        );
        println!(
            "   pf_req={:?} succ={:?} late={:?}",
            r.mem.prefetch_requests, r.mem.prefetch_successful, r.mem.prefetch_late
        );
    }
}

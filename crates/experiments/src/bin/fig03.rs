//! Regenerates fig03 (pass --quick for a smoke run).
fn main() {
    let budget = spb_experiments::Budget::from_args();
    spb_experiments::print_tables(&spb_experiments::fig03::run(budget));
}

//! Debug: run the SPB detector over an app's committed-store stream.
use spb_core::detector::{SpbConfig, SpbDetector};
use spb_trace::{profile::AppProfile, OpKind, TraceSource};

fn main() {
    let name = std::env::args().nth(1).unwrap_or("roms".into());
    let app = AppProfile::by_name(&name).unwrap();
    let mut src = app.build(42);
    let mut det = SpbDetector::new(SpbConfig::default());
    let mut stores = 0u64;
    for _ in 0..2_000_000 {
        if let Some(op) = src.next_op() {
            if let OpKind::Store { addr, .. } = op.kind() {
                stores += 1;
                let _ = det.observe_store(addr);
            }
        }
    }
    println!(
        "{name}: stores={stores} checks={} triggers={}",
        det.checks(),
        det.triggers()
    );
}

//! Regenerates the coalescing-SB comparison (pass --quick for a smoke run).
fn main() {
    let budget = spb_experiments::Budget::from_args();
    spb_experiments::print_tables(&spb_experiments::coalescing::run(budget));
}

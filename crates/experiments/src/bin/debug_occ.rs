//! Debug: sample SB occupancy over time.
use spb_cpu::{config::CoreConfig, core::Core};
use spb_mem::{MemoryConfig, MemorySystem};
use spb_trace::profile::AppProfile;

fn main() {
    let name = std::env::args().nth(1).unwrap_or("exchange2".into());
    let app = AppProfile::by_name(&name).unwrap();
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let cfg = CoreConfig::skylake().with_sb_entries(14);
    let mut core = Core::new(
        0,
        cfg,
        Box::new(app.build(42)),
        Box::new(spb_cpu::policy::AtCommitPolicy::new()),
    );
    let mut max_occ = 0usize;
    for now in 0..200_000u64 {
        mem.tick(now);
        core.cycle(&mut mem, now);
        max_occ = max_occ.max(core.sb_occupancy());
        if now % 20_000 == 0 {
            println!(
                "cycle {now}: occ={} max={} committed={}",
                core.sb_occupancy(),
                max_occ,
                core.committed_uops()
            );
        }
    }
}

//! Fault-injection smoke: sweeps seeded fault rates over SPEC and
//! PARSEC cells and verifies every run survives with a clean coherence
//! checker.
//!
//! This is the robustness gate CI runs: deterministic faults (delayed
//! prefetch acks, DRAM latency spikes, forced MSHR exhaustion, dropped
//! SPB bursts) stress exactly the paths the invariant checker guards.
//! Any invariant violation, watchdog trip, or panic exits non-zero with
//! the cell's diagnostic. The table also shows the expected performance
//! story: as the fault rate grows, SPB's advantage decays toward the
//! at-commit baseline (prefetches help less when the memory system
//! misbehaves), but correctness never does.
//!
//! Pass --quick for the smoke budget; SPB_JOBS controls the pool.
use spb_experiments as exp;
use spb_mem::FaultConfig;
use spb_sim::config::PolicyKind;
use spb_sim::sweep::{run_cells_checked, SweepOptions};
use spb_trace::profile::AppProfile;

fn main() {
    let budget = exp::Budget::from_args();
    let rates = [0.0, 0.005, 0.02];
    let policies = [PolicyKind::AtCommit, PolicyKind::spb_default()];

    let mut cells = Vec::new();
    let mut meta = Vec::new();
    for name in ["x264", "dedup"] {
        let app = AppProfile::by_name(name).expect("suite app");
        let base = if app.threads() > 1 {
            budget.parsec_sim_config()
        } else {
            budget.sim_config()
        };
        for &rate in &rates {
            for &policy in &policies {
                let mut cfg = base.clone().with_sb(14).with_policy(policy);
                if rate > 0.0 {
                    cfg.mem.fault = FaultConfig::uniform(rate, 0xFA17);
                }
                meta.push(rate);
                cells.push((app.clone(), cfg));
            }
        }
    }
    let cell_refs: Vec<_> = cells.iter().map(|(a, c)| (a, c.clone())).collect();
    let results = run_cells_checked(&cell_refs, &SweepOptions::from_env().progress(true));

    let mut violations = 0;
    println!(
        "{:<8} {:<10} {:>6} {:>12} {:>7} {:>8} {:>8} {:>7} {:>7} {:>8}",
        "app",
        "policy",
        "rate",
        "cycles",
        "ipc",
        "ack-del",
        "spikes",
        "denied",
        "dropped",
        "repairs"
    );
    for (r, rate) in results.iter().zip(&meta) {
        match r {
            Ok(run) => println!(
                "{:<8} {:<10} {:>6} {:>12} {:>7.3} {:>8} {:>8} {:>7} {:>7} {:>8}",
                run.app,
                run.policy,
                rate,
                run.cycles,
                run.ipc(),
                run.mem.faults_ack_delayed,
                run.mem.faults_dram_spiked,
                run.mem.faults_mshr_denied,
                run.mem.faults_bursts_dropped,
                run.mem.coherence_repairs,
            ),
            Err(f) => {
                violations += 1;
                eprintln!("FAILED {f}");
            }
        }
    }
    if violations > 0 {
        eprintln!("fault smoke: {violations} cell(s) failed");
        std::process::exit(1);
    }
    println!(
        "fault smoke: all {} cells clean under injected faults",
        results.len()
    );
}

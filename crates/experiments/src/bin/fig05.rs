//! Regenerates Figure 5.
fn main() {
    let budget = spb_experiments::Budget::from_args();
    spb_experiments::print_tables(&spb_experiments::fig05::run(budget));
}

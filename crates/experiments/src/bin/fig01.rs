//! Regenerates fig01 (pass --quick for a smoke run).
fn main() {
    let budget = spb_experiments::Budget::from_args();
    spb_experiments::print_tables(&spb_experiments::fig01::run(budget));
}

//! Regenerates the entire evaluation: every table and figure, in paper
//! order, then the machine-readable grid sweep report under `results/`.
//! Pass --quick for a smoke run; SPB_JOBS controls the worker pool.
use spb_experiments as exp;
use spb_sim::sweep::SweepOptions;
use std::time::Instant;

type Section = (&'static str, fn(exp::Budget) -> Vec<spb_stats::Table>);

fn main() {
    let budget = exp::Budget::from_args();
    let opts = SweepOptions::from_env();
    let total_start = Instant::now();
    let sections: Vec<Section> = vec![
        ("Table I", exp::tab1::run),
        ("Figure 1", exp::fig01::run),
        ("Figure 3", exp::fig03::run),
        ("Figure 5", exp::fig05::run),
        ("Figure 6", exp::fig06::run),
        ("Figure 7", exp::fig07::run),
        ("Figure 8", exp::fig08::run),
        ("Figure 9", exp::fig09::run),
        ("Figure 10", exp::fig10::run),
        ("Figure 11", exp::fig11::run),
        ("Figure 12", exp::fig12::run),
        ("Figure 13", exp::fig13::run),
        ("Figure 14", exp::fig14::run),
        ("Figure 15", exp::fig15::run),
        ("Figure 16", exp::fig16::run),
        ("Figure 17", exp::fig17::run),
        ("Figure 18", exp::fig18::run),
        ("Sensitivity to N", exp::sens_n::run),
        ("SB-shrink claim", exp::sb20::run),
        ("Ablations", exp::ablations::run),
        ("SMT validation", exp::smt_validation::run),
        ("Spatial prefetching (SectionVII-A)", exp::spatial::run),
        ("Store coalescing (SectionVII-B)", exp::coalescing::run),
        ("Seed robustness", exp::variance::run),
    ];
    for (name, f) in sections {
        eprintln!("[all] running {name}… ({} jobs)", opts.jobs);
        let start = Instant::now();
        println!("############ {name} ############");
        exp::print_tables(&f(budget));
        eprintln!("[all] {name} done in {:.1}s", start.elapsed().as_secs_f64());
    }

    // One flattened pass over the main grid for the JSON sweep report.
    let label = match budget {
        exp::Budget::Quick => "quick",
        exp::Budget::Paper => "paper",
    };
    eprintln!("[all] running grid sweep report…");
    let grid = exp::grid::Grid::compute_with(
        spb_trace::profile::AppProfile::spec2017(),
        budget,
        &opts.progress(true),
    );
    let report = grid.to_report(format!("sweep-grid-{label}"));
    match report.save(std::path::Path::new("results")) {
        Ok(path) => eprintln!("[all] wrote {}", path.display()),
        Err(e) => eprintln!("[all] could not write sweep report: {e}"),
    }
    eprintln!(
        "[all] total wall time {:.1}s with {} jobs",
        total_start.elapsed().as_secs_f64(),
        opts.jobs
    );
}

//! Regenerates the entire evaluation: every table and figure from the
//! [`spb_experiments::registry`], in paper order, then the
//! machine-readable grid sweep report under `results/`. Figures that
//! are pure projections of the main SPEC grid reuse one shared sweep
//! instead of re-simulating it. Pass --quick for a smoke run; SPB_JOBS
//! controls the worker pool.
use spb_experiments as exp;
use spb_sim::sweep::SweepOptions;
use std::time::Instant;

fn main() {
    let budget = exp::Budget::from_args();
    let opts = SweepOptions::from_env();
    let total_start = Instant::now();

    // The SPEC grid backs every `from_grid` figure; compute it once.
    eprintln!("[all] computing the shared SPEC grid… ({} jobs)", opts.jobs);
    let grid_start = Instant::now();
    let grid = exp::grid::Grid::compute_with(
        spb_trace::profile::AppProfile::spec2017(),
        budget,
        &opts.progress(true),
    );
    eprintln!(
        "[all] grid done in {:.1}s",
        grid_start.elapsed().as_secs_f64()
    );

    for def in exp::registry::REGISTRY {
        eprintln!("[all] running {}… ({} jobs)", def.title, opts.jobs);
        let start = Instant::now();
        println!("############ {} ############", def.title);
        let tables = match def.from_grid {
            Some(project) => project(&grid),
            None => (def.run)(budget),
        };
        exp::print_tables(&tables);
        eprintln!(
            "[all] {} done in {:.1}s",
            def.title,
            start.elapsed().as_secs_f64()
        );
    }

    // The machine-readable JSON sweep report from the same grid.
    let label = match budget {
        exp::Budget::Quick => "quick",
        exp::Budget::Paper => "paper",
    };
    let report = grid.to_report(format!("sweep-grid-{label}"));
    match report.save(std::path::Path::new("results")) {
        Ok(path) => eprintln!("[all] wrote {}", path.display()),
        Err(e) => eprintln!("[all] could not write sweep report: {e}"),
    }
    eprintln!(
        "[all] total wall time {:.1}s with {} jobs",
        total_start.elapsed().as_secs_f64(),
        opts.jobs
    );
}

//! Debug: generic prefetcher activity per kind.
use spb_experiments::Budget;
use spb_mem::prefetch::PrefetcherKind;
use spb_mem::RfoOrigin;
use spb_sim::Simulation;
use spb_trace::profile::AppProfile;

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or("bwaves".into());
    let app = AppProfile::by_name(&app_name).unwrap();
    for pk in [
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::Aggressive,
        PrefetcherKind::Adaptive,
    ] {
        let mut cfg = Budget::Quick.sim_config().with_sb(14);
        cfg.mem.prefetcher = pk;
        let r = Simulation::with_config(&app, &cfg).run_or_panic();
        let i = RfoOrigin::CachePrefetcher.index();
        println!(
            "{pk:?}: cycles={} pf_req={} pf_down={} succ={} late={} never={} load_l1_hits={} load_dram={}",
            r.cycles,
            r.mem.prefetch_requests[i],
            r.mem.prefetch_downstream[i],
            r.mem.prefetch_successful[i],
            r.mem.prefetch_late[i],
            r.mem.prefetch_never_used[i],
            r.mem.load_l1_hits,
            r.mem.load_dram
        );
    }
}

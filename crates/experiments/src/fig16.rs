//! Figure 16: SPB on top of aggressive cache prefetchers.
//!
//! Each configuration is normalized to the *ideal SB running the same
//! generic prefetcher*, so the table shows how much SB-induced headroom
//! remains per prefetcher. Paper headline: aggressive/adaptive cache
//! prefetchers do not close the SB gap (their window is still anchored
//! to the SB's demand stream); SPB is needed — and orthogonal — on top.

use crate::Budget;
use spb_mem::prefetch::PrefetcherKind;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

fn norm_perf(suite: &SuiteResult, ideal: &SuiteResult, sb_bound_only: bool) -> f64 {
    let vals: Vec<f64> = suite
        .runs
        .iter()
        .zip(&ideal.runs)
        .zip(&suite.sb_bound)
        .filter(|(_, b)| !sb_bound_only || **b)
        .map(|((r, i), _)| i.cycles as f64 / r.cycles as f64)
        .collect();
    geomean(&vals)
}

/// Runs the experiment at `budget` (SB56 and SB14).
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::spec2017();
    let prefetchers = [
        ("stream", PrefetcherKind::Stride),
        ("aggressive", PrefetcherKind::Aggressive),
        ("adaptive", PrefetcherKind::Adaptive),
    ];
    let mut tables = Vec::new();
    for (scope, bound_only) in [("ALL", false), ("SB-BOUND", true)] {
        let mut t = Table::new(
            format!("Fig. 16 — perf normalized to Ideal + same prefetcher ({scope})"),
            &["at-commit SB56", "spb SB56", "at-commit SB14", "spb SB14"],
        );
        for (name, pk) in prefetchers {
            let mut cfg = budget.sim_config();
            cfg.mem.prefetcher = pk;
            let ideal = SuiteResult::run(&apps, &cfg.clone().with_policy(PolicyKind::IdealSb));
            let ac56 = SuiteResult::run(&apps, &cfg.clone().with_sb(56));
            let spb56 = SuiteResult::run(
                &apps,
                &cfg.clone()
                    .with_sb(56)
                    .with_policy(PolicyKind::spb_default()),
            );
            let ac14 = SuiteResult::run(&apps, &cfg.clone().with_sb(14));
            let spb14 = SuiteResult::run(
                &apps,
                &cfg.clone()
                    .with_sb(14)
                    .with_policy(PolicyKind::spb_default()),
            );
            t.push_row(
                name,
                &[
                    norm_perf(&ac56, &ideal, bound_only),
                    norm_perf(&spb56, &ideal, bound_only),
                    norm_perf(&ac14, &ideal, bound_only),
                    norm_perf(&spb14, &ideal, bound_only),
                ],
            );
        }
        tables.push(t);
    }
    tables
}

//! §IV-C sensitivity analysis: the detector window N, the dynamic-S
//! variant, and the burst-dedupe ablation.
//!
//! Paper headline: N between 24 and 48 performs well (48 chosen); the
//! dynamic variant that adapts the threshold to store sizes performs
//! worse due to adaptation hysteresis and lost opportunity.

use crate::Budget;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

fn norm(suite: &SuiteResult, ideal: &SuiteResult) -> f64 {
    let vals: Vec<f64> = suite
        .runs
        .iter()
        .zip(&ideal.runs)
        .zip(&suite.sb_bound)
        .filter(|(_, b)| **b)
        .map(|((r, i), _)| i.cycles as f64 / r.cycles as f64)
        .collect();
    geomean(&vals)
}

/// Runs the experiment at `budget` over the SB-bound subset.
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::spec2017_sb_bound();
    let base = budget.sim_config();
    let sbs = [14usize, 28, 56];
    let mut t = Table::new(
        "§IV-C — SPB sensitivity to N (SB-bound geomean, normalized to Ideal)",
        &["SB14", "SB28", "SB56"],
    );
    let ideal = SuiteResult::run(&apps, &base.clone().with_policy(PolicyKind::IdealSb));
    for n in [8u32, 16, 24, 32, 48, 64] {
        let row: Vec<f64> = sbs
            .iter()
            .map(|&sb| {
                let cfg = base.clone().with_sb(sb).with_policy(PolicyKind::spb(n, true));
                norm(&SuiteResult::run(&apps, &cfg), &ideal)
            })
            .collect();
        t.push_row(format!("N={n}"), &row);
    }
    // Ablations: the dynamic-S variant and disabling burst dedupe.
    let dyn_row: Vec<f64> = sbs
        .iter()
        .map(|&sb| {
            let cfg = base
                .clone()
                .with_sb(sb)
                .with_policy(PolicyKind::SpbDynamic { n: 48 });
            norm(&SuiteResult::run(&apps, &cfg), &ideal)
        })
        .collect();
    t.push_row("dynamic-S (N=48)", &dyn_row);
    let nodedupe_row: Vec<f64> = sbs
        .iter()
        .map(|&sb| {
            let cfg = base
                .clone()
                .with_sb(sb)
                .with_policy(PolicyKind::parse("spb:dedupe=off").expect("grammar"));
            norm(&SuiteResult::run(&apps, &cfg), &ideal)
        })
        .collect();
    t.push_row("no-dedupe (N=48)", &nodedupe_row);
    vec![t]
}

//! Figure 1: ratio of stall cycles due to a full SB.
//!
//! The paper's motivation figure: with the at-commit baseline, the
//! fraction of cycles stalled on a full SB grows steeply as the SB
//! shrinks from 56 to 14 entries (the per-thread share under SMT-4).
//! "All" averages the whole suite; "SB-Bound" only the >2% subset.

use crate::grid::{Grid, SB_SIZES};
use crate::Budget;
use spb_stats::summary::mean;
use spb_stats::Table;

/// Builds the Figure 1 table from an existing grid (at-commit is policy
/// index 1).
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 1 — % of cycles stalled on a full SB (at-commit)",
        &["All", "SB-Bound"],
    );
    for (s, &sb) in SB_SIZES.iter().enumerate() {
        let suite = grid.at(1, s);
        let all: Vec<f64> = suite
            .runs
            .iter()
            .map(|r| r.sb_stall_ratio() * 100.0)
            .collect();
        let bound: Vec<f64> = suite
            .runs
            .iter()
            .zip(&suite.sb_bound)
            .filter(|(_, b)| **b)
            .map(|(r, _)| r.sb_stall_ratio() * 100.0)
            .collect();
        t.push_row(format!("SB{sb}"), &[mean(&all), mean(&bound)]);
    }
    t.set_precision(1);
    vec![t]
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_from_grid(&Grid::spec(budget))
}

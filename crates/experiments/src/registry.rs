//! One registry for every table and figure the workspace regenerates.
//!
//! Each paper artifact is a [`FigureDef`]: a canonical id, the section
//! title the `all` binary prints, a one-line claim, and two entry
//! points — [`FigureDef::run`] regenerates it from scratch, while
//! [`FigureDef::from_grid`] (when the figure is a pure projection of
//! the main SPEC sweep) re-renders it from an already-computed
//! [`Grid`] without re-simulating anything. The CLI's `experiment`
//! command and the `all` binary both iterate [`REGISTRY`] instead of
//! keeping their own hand-maintained match arms, so adding a figure is
//! one module plus one registry row.

use crate::grid::Grid;
use crate::Budget;
use spb_stats::Table;

/// A regenerable table or figure from the paper's evaluation.
#[derive(Clone, Copy)]
pub struct FigureDef {
    /// Canonical id used by `spbsim experiment <id>`.
    pub id: &'static str,
    /// Section heading printed by the `all` binary.
    pub title: &'static str,
    /// One-line statement of what the artifact shows.
    pub claim: &'static str,
    /// Alternative ids also accepted on the CLI.
    pub aliases: &'static [&'static str],
    /// Re-renders the figure from an existing SPEC grid when it is a
    /// pure projection of that sweep (no extra simulation).
    pub from_grid: Option<fn(&Grid) -> Vec<Table>>,
    /// Regenerates the figure from scratch at the given budget.
    pub run: fn(Budget) -> Vec<Table>,
}

impl std::fmt::Debug for FigureDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FigureDef")
            .field("id", &self.id)
            .field("title", &self.title)
            .field("aliases", &self.aliases)
            .field("from_grid", &self.from_grid.is_some())
            .finish()
    }
}

impl FigureDef {
    /// Whether `name` selects this figure (canonical id or alias).
    pub fn matches(&self, name: &str) -> bool {
        self.id == name || self.aliases.contains(&name)
    }
}

/// Every regenerable artifact, in paper order.
pub const REGISTRY: &[FigureDef] = &[
    FigureDef {
        id: "tab1",
        title: "Table I",
        claim: "the simulated configuration matches the paper's Table I",
        aliases: &["table1"],
        from_grid: None,
        run: crate::tab1::run,
    },
    FigureDef {
        id: "fig01",
        title: "Figure 1",
        claim: "ratio of stall cycles due to a full SB (motivation)",
        aliases: &["fig1"],
        from_grid: Some(crate::fig01::tables_from_grid),
        run: crate::fig01::run,
    },
    FigureDef {
        id: "fig03",
        title: "Figure 3",
        claim: "where the stores causing SB-induced stalls live",
        aliases: &["fig3"],
        from_grid: Some(crate::fig03::tables_from_grid),
        run: crate::fig03::run,
    },
    FigureDef {
        id: "fig05",
        title: "Figure 5",
        claim: "SPB at SB14 performs within ~5% of the ideal SB",
        aliases: &["fig5"],
        from_grid: Some(crate::fig05::tables_from_grid),
        run: crate::fig05::run,
    },
    FigureDef {
        id: "fig06",
        title: "Figure 6",
        claim: "per-app performance of SB-bound apps vs the ideal SB",
        aliases: &["fig6"],
        from_grid: Some(crate::fig06::tables_from_grid),
        run: crate::fig06::run,
    },
    FigureDef {
        id: "fig07",
        title: "Figure 7",
        claim: "energy normalized to at-commit (lower is better)",
        aliases: &["fig7"],
        from_grid: Some(crate::fig07::tables_from_grid),
        run: crate::fig07::run,
    },
    FigureDef {
        id: "fig08",
        title: "Figure 8",
        claim: "SB-induced stall cycles normalized to at-commit",
        aliases: &["fig8"],
        from_grid: Some(crate::fig08::tables_from_grid),
        run: crate::fig08::run,
    },
    FigureDef {
        id: "fig09",
        title: "Figure 9",
        claim: "per-app SB stalls of SB-bound apps vs at-commit",
        aliases: &["fig9"],
        from_grid: Some(crate::fig09::tables_from_grid),
        run: crate::fig09::run,
    },
    FigureDef {
        id: "fig10",
        title: "Figure 10",
        claim: "issue-stall cycles split into SB- and other-caused",
        aliases: &[],
        from_grid: Some(crate::fig10::tables_from_grid),
        run: crate::fig10::run,
    },
    FigureDef {
        id: "fig11",
        title: "Figure 11",
        claim: "breakdown of store-prefetch outcomes at the L1D",
        aliases: &[],
        from_grid: Some(crate::fig11::tables_from_grid),
        run: crate::fig11::run,
    },
    FigureDef {
        id: "fig12",
        title: "Figure 12",
        claim: "prefetch traffic of SPB normalized to at-commit",
        aliases: &[],
        from_grid: Some(crate::fig12::tables_from_grid),
        run: crate::fig12::run,
    },
    FigureDef {
        id: "fig13",
        title: "Figure 13",
        claim: "L1D tag-access overhead of SPB normalized to at-commit",
        aliases: &[],
        from_grid: Some(crate::fig13::tables_from_grid),
        run: crate::fig13::run,
    },
    FigureDef {
        id: "fig14",
        title: "Figure 14",
        claim: "execution stalls with an L1D miss pending",
        aliases: &[],
        from_grid: Some(crate::fig14::tables_from_grid),
        run: crate::fig14::run,
    },
    FigureDef {
        id: "fig15",
        title: "Figure 15",
        claim: "per-app L1D-miss-pending stalls of SB-bound apps",
        aliases: &[],
        from_grid: Some(crate::fig15::tables_from_grid),
        run: crate::fig15::run,
    },
    FigureDef {
        id: "fig16",
        title: "Figure 16",
        claim: "SPB on top of aggressive cache prefetchers",
        aliases: &[],
        from_grid: None,
        run: crate::fig16::run,
    },
    FigureDef {
        id: "fig17",
        title: "Figure 17",
        claim: "SPB across the five Table II core aggressiveness points",
        aliases: &[],
        from_grid: None,
        run: crate::fig17::run,
    },
    FigureDef {
        id: "fig18",
        title: "Figure 18",
        claim: "PARSEC with 8 threads keeps the single-thread gains",
        aliases: &[],
        from_grid: None,
        run: crate::fig18::run,
    },
    FigureDef {
        id: "sens_n",
        title: "Sensitivity to N",
        claim: "sensitivity to detector window N, dynamic-S, and dedupe",
        aliases: &["sensn"],
        from_grid: None,
        run: crate::sens_n::run,
    },
    FigureDef {
        id: "sb20",
        title: "SB-shrink claim",
        claim: "a 20-entry SB with SPB matches a much larger plain SB",
        aliases: &[],
        from_grid: None,
        run: crate::sb20::run,
    },
    FigureDef {
        id: "ablations",
        title: "Ablations",
        claim: "each detector design choice earns its keep",
        aliases: &[],
        from_grid: None,
        run: crate::ablations::run,
    },
    FigureDef {
        id: "smt_validation",
        title: "SMT validation",
        claim: "the paper's SMT approximation tracks real 2-core runs",
        aliases: &["smt"],
        from_grid: None,
        run: crate::smt_validation::run,
    },
    FigureDef {
        id: "spatial",
        title: "Spatial prefetching (SectionVII-A)",
        claim: "spatial page-footprint prefetchers cannot replace SPB",
        aliases: &[],
        from_grid: None,
        run: crate::spatial::run,
    },
    FigureDef {
        id: "coalescing",
        title: "Store coalescing (SectionVII-B)",
        claim: "SPB versus non-speculative store coalescing",
        aliases: &[],
        from_grid: None,
        run: crate::coalescing::run,
    },
    FigureDef {
        id: "variance",
        title: "Seed robustness",
        claim: "conclusions are stable across workload seeds",
        aliases: &["seeds"],
        from_grid: None,
        run: crate::variance::run,
    },
    FigureDef {
        id: "squash",
        title: "Squash storms",
        claim: "wasted RFOs and leaked M state under wrong-path bursts stay bounded",
        aliases: &["storms"],
        from_grid: None,
        run: crate::squash::run,
    },
];

/// Looks a figure up by canonical id or alias.
pub fn find(name: &str) -> Option<&'static FigureDef> {
    REGISTRY.iter().find(|d| d.matches(name))
}

/// Comma-separated canonical ids, for error messages and `--help`.
pub fn known_ids() -> String {
    REGISTRY.iter().map(|d| d.id).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_aliases_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for d in REGISTRY {
            assert!(seen.insert(d.id), "duplicate id {}", d.id);
            for a in d.aliases {
                assert!(seen.insert(a), "alias {} collides", a);
            }
        }
    }

    #[test]
    fn find_resolves_ids_and_aliases() {
        assert_eq!(find("fig05").unwrap().id, "fig05");
        assert_eq!(find("fig5").unwrap().id, "fig05");
        assert_eq!(find("smt").unwrap().id, "smt_validation");
        assert!(find("fig99").is_none());
    }

    #[test]
    fn registry_covers_every_experiment_module() {
        // Paper order: Table I first, then the post-paper scenario
        // studies (seed robustness, squash storms).
        assert_eq!(REGISTRY.first().unwrap().id, "tab1");
        assert_eq!(REGISTRY.last().unwrap().id, "squash");
        assert_eq!(REGISTRY.len(), 25);
    }

    #[test]
    fn titles_and_claims_are_unique_and_nonempty() {
        let mut titles = std::collections::HashSet::new();
        let mut claims = std::collections::HashSet::new();
        for d in REGISTRY {
            assert!(!d.title.is_empty() && !d.claim.is_empty(), "{}", d.id);
            assert!(titles.insert(d.title), "duplicate title {}", d.title);
            assert!(claims.insert(d.claim), "duplicate claim for {}", d.id);
        }
    }

    #[test]
    fn every_grid_projection_is_registered_for_a_grid_figure() {
        // The figures known to be pure projections of the main SPEC
        // grid must expose `from_grid`, so `all` never re-simulates
        // them. (Registry says 13 of 24 artifacts reuse the grid.)
        let with_grid: Vec<&str> = REGISTRY
            .iter()
            .filter(|d| d.from_grid.is_some())
            .map(|d| d.id)
            .collect();
        for id in [
            "fig01", "fig03", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15",
        ] {
            assert!(with_grid.contains(&id), "{id} should project from the grid");
        }
        assert_eq!(with_grid.len(), 13);
    }
}

//! Figure 8: SB-induced stall cycles normalized to at-commit.
//!
//! Paper headline: SPB removes 24% (SB56) to 37% (SB28) of the remaining
//! SB stalls; what is left is cold stalls, late bursts, and patterns the
//! detector cannot capture.

use crate::grid::{Grid, SB_SIZES};
use crate::Budget;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::{StallCause, Table};

/// Per-suite geomean of SB stalls normalized to a baseline suite. Apps
/// with (near-)zero baseline stalls are skipped — a ratio over ~nothing
/// is noise, and the paper's figure is over SB-bound apps anyway.
pub fn norm_sb_stalls(suite: &SuiteResult, baseline: &SuiteResult, sb_bound_only: bool) -> f64 {
    let vals: Vec<f64> = suite
        .runs
        .iter()
        .zip(&baseline.runs)
        .zip(&suite.sb_bound)
        .filter(|(_, b)| !sb_bound_only || **b)
        .filter_map(|((r, base), _)| {
            let b = base.topdown.stall_cycles(StallCause::StoreBuffer);
            (b > 100).then(|| r.topdown.stall_cycles(StallCause::StoreBuffer) as f64 / b as f64)
        })
        .collect();
    geomean(&vals)
}

/// Builds the Figure 8 tables from the main grid.
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    let mut out = Vec::new();
    for (title, bound_only) in [
        ("Fig. 8 — SB stalls normalized to at-commit (ALL)", false),
        (
            "Fig. 8 — SB stalls normalized to at-commit (SB-BOUND)",
            true,
        ),
    ] {
        let mut t = Table::new(title, &["at-execute", "spb", "ideal"]);
        for (s, &sb) in SB_SIZES.iter().enumerate() {
            let base = grid.at(1, s);
            t.push_row(
                format!("SB{sb}"),
                &[
                    norm_sb_stalls(grid.at(0, s), base, bound_only),
                    norm_sb_stalls(grid.at(2, s), base, bound_only),
                    norm_sb_stalls(&grid.ideal, base, bound_only),
                ],
            );
        }
        out.push(t);
    }
    out
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_from_grid(&Grid::spec(budget))
}

//! Figure 9: per-application SB stalls normalized to at-commit, for the
//! SB-bound applications at each SB size.

use crate::grid::{Grid, SB_SIZES};
use crate::Budget;
use spb_stats::{StallCause, Table};

/// Builds the three per-SB-size tables from a grid run over the
//  SB-bound subset.
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    SB_SIZES
        .iter()
        .enumerate()
        .map(|(s, &sb)| {
            let mut t = Table::new(
                format!("Fig. 9 — per-app SB stalls normalized to at-commit (SB{sb})"),
                &["at-execute", "spb", "ideal"],
            );
            let base = grid.at(1, s);
            for (a, app) in grid.apps.iter().enumerate() {
                let b = base.runs[a]
                    .topdown
                    .stall_cycles(StallCause::StoreBuffer)
                    .max(1) as f64;
                let row: Vec<f64> = [grid.at(0, s), grid.at(2, s), &grid.ideal]
                    .iter()
                    .map(|suite| {
                        suite.runs[a].topdown.stall_cycles(StallCause::StoreBuffer) as f64 / b
                    })
                    .collect();
                t.push_row(app.name(), &row);
            }
            t
        })
        .collect()
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_from_grid(&Grid::spec_sb_bound(budget))
}

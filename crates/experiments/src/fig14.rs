//! Figure 14: execution stalls with an L1D miss pending, normalized to
//! at-commit (Intel Top-Down's memory-boundness proxy).
//!
//! Paper headline: SPB *reduces* this metric despite its extra traffic
//! (−27.2% at SB14 overall, −52.8% for SB-bound apps), because bursts
//! convert long store-miss waits into hits.

use crate::grid::{Grid, SB_SIZES};
use crate::Budget;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;

/// Geomean of the L1D-miss-pending stall metric normalized to baseline.
pub fn norm_l1d_stalls(suite: &SuiteResult, baseline: &SuiteResult, sb_bound_only: bool) -> f64 {
    let vals: Vec<f64> = suite
        .runs
        .iter()
        .zip(&baseline.runs)
        .zip(&suite.sb_bound)
        .filter(|(_, b)| !sb_bound_only || **b)
        .filter_map(|((r, base), _)| {
            let b = base.topdown.l1d_miss_pending_stalls();
            (b > 100).then(|| r.topdown.l1d_miss_pending_stalls() as f64 / b as f64)
        })
        .collect();
    geomean(&vals)
}

/// Builds the tables from the main grid.
pub fn tables_from_grid(grid: &Grid) -> Vec<Table> {
    let mut out = Vec::new();
    for (title, bound_only) in [
        (
            "Fig. 14 — execution stalls with L1D miss pending, vs at-commit (ALL)",
            false,
        ),
        (
            "Fig. 14 — execution stalls with L1D miss pending, vs at-commit (SB-BOUND)",
            true,
        ),
    ] {
        let mut t = Table::new(title, &["at-execute", "spb", "ideal"]);
        for (s, &sb) in SB_SIZES.iter().enumerate() {
            let base = grid.at(1, s);
            t.push_row(
                format!("SB{sb}"),
                &[
                    norm_l1d_stalls(grid.at(0, s), base, bound_only),
                    norm_l1d_stalls(grid.at(2, s), base, bound_only),
                    norm_l1d_stalls(&grid.ideal, base, bound_only),
                ],
            );
        }
        out.push(t);
    }
    out
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    tables_from_grid(&Grid::spec(budget))
}

//! Figure 17 (+ Table II): SPB across core aggressiveness.
//!
//! Sweeps the five Table II cores (Silvermont → Sunny Cove), each at its
//! full SB size and at half (the per-thread SB under SMT-2), normalized
//! to that core's ideal SB. Paper headline: the at-commit gap widens on
//! energy-efficient cores, while SPB stays at or near ideal; with halved
//! SBs, SPB delivers ≥89% of ideal where at-commit manages ~67%.

use crate::Budget;
use spb_cpu::CoreConfig;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

fn norm(suite: &SuiteResult, ideal: &SuiteResult, sb_bound_only: bool) -> f64 {
    let vals: Vec<f64> = suite
        .runs
        .iter()
        .zip(&ideal.runs)
        .zip(&suite.sb_bound)
        .filter(|(_, b)| !sb_bound_only || **b)
        .map(|((r, i), _)| i.cycles as f64 / r.cycles as f64)
        .collect();
    geomean(&vals)
}

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::spec2017();
    let mut tables = Vec::new();
    for (scope, bound_only) in [("ALL", false), ("SB-BOUND", true)] {
        let mut t = Table::new(
            format!("Fig. 17 — perf normalized to Ideal per core configuration ({scope})"),
            &["at-commit full", "spb full", "at-commit half", "spb half"],
        );
        for (name, core) in CoreConfig::table2() {
            let mut cfg = budget.sim_config();
            cfg.core = core;
            let ideal = SuiteResult::run(&apps, &cfg.clone().with_policy(PolicyKind::IdealSb));
            let full = core.sb_entries;
            let half = (core.sb_entries / 2).max(1);
            let ac_full = SuiteResult::run(&apps, &cfg.clone().with_sb(full));
            let spb_full = SuiteResult::run(
                &apps,
                &cfg.clone()
                    .with_sb(full)
                    .with_policy(PolicyKind::spb_default()),
            );
            let ac_half = SuiteResult::run(&apps, &cfg.clone().with_sb(half));
            let spb_half = SuiteResult::run(
                &apps,
                &cfg.clone()
                    .with_sb(half)
                    .with_policy(PolicyKind::spb_default()),
            );
            t.push_row(
                name,
                &[
                    norm(&ac_full, &ideal, bound_only),
                    norm(&spb_full, &ideal, bound_only),
                    norm(&ac_half, &ideal, bound_only),
                    norm(&spb_half, &ideal, bound_only),
                ],
            );
        }
        tables.push(t);
    }
    tables
}

//! Seed robustness of the headline result.
//!
//! The workloads are synthetic and seeded; a reproduction that only
//! holds for seed 42 would be worthless. This experiment re-runs the
//! Figure 5 headline cell (SB14, at-commit vs SPB, SB-bound geomean
//! normalized to ideal) under several workload seeds and reports the
//! spread.

use crate::Budget;
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_stats::summary::geomean;
use spb_stats::Table;
use spb_trace::profile::AppProfile;

/// Runs the experiment at `budget`.
pub fn run(budget: Budget) -> Vec<Table> {
    let apps = AppProfile::spec2017_sb_bound();
    let mut t = Table::new(
        "Seed robustness — SB-bound geomean vs Ideal at SB14",
        &["at-commit", "spb", "spb gain %"],
    );
    let mut gains = Vec::new();
    for seed in [42u64, 7, 1234, 987654321] {
        let mut cfg = budget.sim_config().with_sb(14);
        cfg.seed = seed;
        let ideal = SuiteResult::run(&apps, &cfg.clone().with_policy(PolicyKind::IdealSb));
        let ac = SuiteResult::run(&apps, &cfg.clone());
        let spb = SuiteResult::run(&apps, &cfg.clone().with_policy(PolicyKind::spb_default()));
        let norm = |s: &SuiteResult| {
            geomean(
                &s.runs
                    .iter()
                    .zip(&ideal.runs)
                    .map(|(r, i)| i.cycles as f64 / r.cycles as f64)
                    .collect::<Vec<_>>(),
            )
        };
        let (a, b) = (norm(&ac), norm(&spb));
        let gain = (b / a - 1.0) * 100.0;
        gains.push(gain);
        t.push_row(format!("seed {seed}"), &[a, b, gain]);
    }
    let spread = gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - gains.iter().cloned().fold(f64::INFINITY, f64::min);
    t.push_row("max-min gain spread", &[0.0, 0.0, spread]);
    vec![t]
}

//! Golden-file regression for the quick grid.
//!
//! `results/sweep-grid-quick.json` is a committed artifact of the quick
//! SPEC grid (230 records: 23 apps × (ideal + 3 policies × 3 SB
//! sizes)). The simulator is deterministic, so every simulated field of
//! a fresh run must be **bit-identical** to the committed record —
//! observability on or off. Only `wall_ms` (host time) and the optional
//! report-level `"metrics"` section are allowed to differ.
//!
//! The fast test re-runs one SB-bound app's 10 cells on every `cargo
//! test`; the `#[ignore]`d test replays all 230 (run it with
//! `cargo test -p spb-experiments --test grid_golden -- --ignored`).

use spb_experiments::grid::Grid;
use spb_experiments::Budget;
use spb_sim::sweep::{SweepRecord, SweepReport};
use spb_trace::profile::AppProfile;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/sweep-grid-quick.json"
);

fn golden() -> SweepReport {
    let text = std::fs::read_to_string(GOLDEN_PATH).expect("committed golden report");
    SweepReport::parse(&text).expect("golden report parses")
}

/// Every simulated field must match; `wall_ms` is host time.
fn assert_same_cell(fresh: &SweepRecord, gold: &SweepRecord) {
    assert_eq!(fresh.app, gold.app);
    assert_eq!(fresh.policy, gold.policy);
    assert_eq!(fresh.sb, gold.sb);
    assert_eq!(
        fresh.cycles, gold.cycles,
        "{} {} sb={}: cycle count drifted from the golden file",
        fresh.app, fresh.policy, fresh.sb
    );
    assert_eq!(fresh.uops, gold.uops, "{}: µop count drifted", fresh.app);
    assert_eq!(
        fresh.ipc.to_bits(),
        gold.ipc.to_bits(),
        "{}: IPC is not bit-identical",
        fresh.app
    );
}

fn check_apps(apps: Vec<AppProfile>) {
    let gold = golden();
    let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
    let grid = Grid::compute(apps.clone(), Budget::Quick);
    let fresh = grid.to_report("fresh").records;
    let expected: Vec<&SweepRecord> = gold
        .records
        .iter()
        .filter(|r| names.contains(&r.app.as_str()))
        .collect();
    assert_eq!(fresh.len(), expected.len(), "cell count mismatch");
    // Both sides are policy-major over the same app subset, but guard
    // against ordering drift by matching on the full cell key.
    for f in &fresh {
        let g = expected
            .iter()
            .find(|g| g.app == f.app && g.policy == f.policy && g.sb == f.sb)
            .unwrap_or_else(|| panic!("{} {} sb={} missing from golden", f.app, f.policy, f.sb));
        assert_same_cell(f, g);
    }
}

#[test]
fn one_app_matches_the_committed_golden_records() {
    check_apps(vec![AppProfile::by_name("x264").expect("suite app")]);
}

#[test]
#[ignore = "replays all 230 quick-grid cells; run explicitly with -- --ignored"]
fn full_quick_grid_matches_the_committed_golden_records() {
    check_apps(AppProfile::spec2017());
}

#[test]
fn golden_report_parse_round_trips() {
    let gold = golden();
    assert_eq!(gold.records.len(), 230);
    let back = SweepReport::parse(&gold.to_json_string()).expect("round trip");
    assert_eq!(back, gold);
}

//! Grid-projection identity: a figure rendered from the shared sweep
//! grid must be bit-identical to one rendered from dedicated,
//! serially-computed simulator runs of the same cells.
//!
//! This is what licenses the `all` binary's central optimization —
//! computing the SPEC grid once and projecting 13 figures out of it
//! instead of re-simulating each. If sweep parallelism, cell ordering,
//! or config assembly ever perturbed a run, these tables would diverge.

use spb_experiments::grid::{policies, Grid, SB_SIZES};
use spb_experiments::{fig03, fig11, fig12, Budget};
use spb_sim::config::PolicyKind;
use spb_sim::suite::SuiteResult;
use spb_sim::Simulation;
use spb_trace::profile::AppProfile;

/// Hand-assembles a [`Grid`] whose at-commit/SB56 and SPB/SB56 cells
/// (the only ones fig03/fig11/fig12 project) come from direct serial
/// runs. Unused cells stay empty — a projection touching one would
/// panic, which is itself part of the check.
fn direct_grid(apps: &[AppProfile], budget: Budget) -> Grid {
    let base = budget.sim_config();
    let sb_bound: Vec<bool> = apps.iter().map(AppProfile::is_sb_bound).collect();
    let suite_for = |cfg: &spb_sim::SimConfig| SuiteResult {
        runs: apps
            .iter()
            .map(|a| Simulation::with_config(a, cfg).run_or_panic())
            .collect(),
        sb_bound: sb_bound.clone(),
    };
    let empty = SuiteResult {
        runs: Vec::new(),
        sb_bound: Vec::new(),
    };
    let mut results: Vec<Vec<SuiteResult>> = policies()
        .iter()
        .map(|_| SB_SIZES.iter().map(|_| empty.clone()).collect())
        .collect();
    // at(1, 2) = at-commit @ SB56; at(2, 2) = SPB @ SB56 — assembled
    // exactly the way Grid::compute_with assembles its configs.
    results[1][2] = suite_for(&base.clone().with_sb(56).with_policy(PolicyKind::AtCommit));
    results[2][2] = suite_for(
        &base
            .clone()
            .with_sb(56)
            .with_policy(PolicyKind::spb_default()),
    );
    Grid {
        apps: apps.to_vec(),
        ideal: empty,
        results,
    }
}

#[test]
fn fig03_fig11_fig12_from_grid_match_direct_recompute() {
    let apps: Vec<AppProfile> = ["x264", "povray"]
        .iter()
        .map(|n| AppProfile::by_name(n).unwrap())
        .collect();
    let swept = Grid::compute(apps.clone(), Budget::Quick);
    let direct = direct_grid(&apps, Budget::Quick);

    assert_eq!(
        fig03::tables_from_grid(&swept),
        fig03::tables_from_grid(&direct),
        "fig03 projection diverges from direct recompute"
    );
    assert_eq!(
        fig11::tables_from_grid(&swept),
        fig11::tables_from_grid(&direct),
        "fig11 projection diverges from direct recompute"
    );
    assert_eq!(
        fig12::tables_from_grid(&swept),
        fig12::tables_from_grid(&direct),
        "fig12 projection diverges from direct recompute"
    );

    // The projected tables have real content: one per-app row per
    // SB-bound app for fig03, per-app + 2 summary rows for fig11/12.
    let t3 = &fig03::tables_from_grid(&swept)[0];
    assert_eq!(t3.len(), 1, "one SB-bound app row in this mini-suite");
    let t11 = &fig11::tables_from_grid(&swept)[0];
    assert_eq!(t11.len(), 1 + 2, "SB-bound row + SB-BOUND + ALL");
}

//! Zero-cost-when-disabled observability for the simulator.
//!
//! The paper's whole argument rests on *attributing* cycles to
//! microarchitectural events — SB-full dispatch stalls, RFO latency,
//! burst issue at the L1 controller — but end-of-run aggregates cannot
//! say *why* a particular prefetch arrived late. This crate adds the
//! missing per-event timeline without costing the common case anything:
//!
//! - [`event::Event`] is the typed simulation-event stream: dispatch
//!   stall episodes with their Top-Down cause, SB enqueue/drain,
//!   SPB burst detection and issue, coherence messages, MSHR
//!   allocations, and DRAM queue occupancy.
//! - [`sink::Sink`] receives events; [`sink::Observer`] is the cloneable
//!   handle the instrumented components hold. A disabled observer is a
//!   single `Option` check and **never constructs the event payload**
//!   (the payload closure is not called), so simulated state and timing
//!   are bit-identical with observability off — and, because events are
//!   a pure read of simulator state, with it on as well.
//! - [`ring::EventLog`] is the bounded ring the coherence invariant
//!   checker uses for per-block histories; it consumes the same
//!   [`event::Event`] type as every other sink.
//! - [`metrics::MetricsRegistry`] holds named counters, gauges and
//!   histogram snapshots registered by component, serializable through
//!   [`spb_stats::json`] into sweep reports.
//! - [`service::SharedCounters`] is the live, thread-shared counterpart
//!   used by long-running services (queue depths, cache hits, retries),
//!   snapshotted into a [`metrics::MetricsRegistry`] on demand.
//! - [`export`] renders an event stream as Chrome `trace_event` JSON
//!   (open in `chrome://tracing` or Perfetto) or as a compact text
//!   summary.
//!
//! # Example
//!
//! ```
//! use spb_obs::event::{Event, EventKind};
//! use spb_obs::sink::{Collector, Observer};
//!
//! let collector = Collector::new();
//! let obs = collector.observer();
//! // Instrumented code emits through the observer; the closure only
//! // runs because a sink is attached.
//! obs.emit(|| Event { cycle: 7, core: 0, kind: EventKind::SbEnqueue { occupancy: 3 } });
//! assert_eq!(collector.len(), 1);
//!
//! let off = Observer::off();
//! off.emit(|| unreachable!("disabled observers never build events"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod ring;
pub mod service;
pub mod sink;

pub use event::{CoherenceKind, Event, EventKind, Phase};
pub use export::{chrome_trace, text_summary};
pub use metrics::MetricsRegistry;
pub use ring::EventLog;
pub use service::SharedCounters;
pub use sink::{Collector, Observer, Sink};

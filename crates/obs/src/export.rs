//! Exporters: Chrome `trace_event` JSON and a compact text summary.
//!
//! The Chrome exporter emits the [trace-event format] consumed by
//! `chrome://tracing` and Perfetto. Mapping:
//!
//! - `ts` is the **simulated cycle** (the viewer displays it as µs; read
//!   1 µs = 1 cycle), `tid` is the core, `pid` is 0.
//! - Stall episodes become complete (`"X"`) slices named
//!   `stall:<cause>` with `dur` = stalled cycles.
//! - SPB bursts become `spb-burst` slices spanning detection-to-last
//!   block at the configured issue rate is not modelled here; the slice
//!   marks the detection point with the block count in `args`, and each
//!   issued block is an instant `spb-burst-issue` event.
//! - Coherence messages become instant (`"i"`) events named
//!   `coh:<kind>` in category `coherence`.
//! - SB/MSHR/DRAM occupancies become counter (`"C"`) events, one
//!   counter series per core.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{Event, EventKind, StallCause};
use spb_stats::json::Json;

fn stall_name(cause: StallCause) -> &'static str {
    match cause {
        StallCause::StoreBuffer => "stall:store-buffer",
        StallCause::Rob => "stall:rob",
        StallCause::IssueQueue => "stall:issue-queue",
        StallCause::LoadQueue => "stall:load-queue",
        StallCause::Registers => "stall:registers",
        StallCause::FrontEnd => "stall:front-end",
    }
}

fn base(name: &str, ph: &str, cat: &str, ev: &Event) -> Vec<(String, Json)> {
    vec![
        ("name".to_string(), Json::str(name)),
        ("ph".to_string(), Json::str(ph)),
        ("cat".to_string(), Json::str(cat)),
        ("ts".to_string(), Json::from(ev.cycle)),
        ("pid".to_string(), Json::from(0u64)),
        ("tid".to_string(), Json::from(u64::from(ev.core))),
    ]
}

fn push_args(pairs: &mut Vec<(String, Json)>, args: Vec<(&str, Json)>) {
    pairs.push(("args".to_string(), Json::obj(args)));
}

fn counter(name: String, ev: &Event, series: &str, value: u64) -> Json {
    let mut pairs = vec![
        ("name".to_string(), Json::str(name)),
        ("ph".to_string(), Json::str("C")),
        ("ts".to_string(), Json::from(ev.cycle)),
        ("pid".to_string(), Json::from(0u64)),
    ];
    push_args(&mut pairs, vec![(series, Json::from(value))]);
    Json::Obj(pairs)
}

/// Renders one event as a Chrome trace-event object.
fn trace_event(ev: &Event) -> Json {
    match ev.kind {
        EventKind::PhaseBegin(phase) => {
            let mut p = base(&format!("phase:{phase}"), "i", "phase", ev);
            p.push(("s".to_string(), Json::str("g"))); // global instant
            Json::Obj(p)
        }
        EventKind::StallEpisode { cause, cycles } => {
            let mut p = base(stall_name(cause), "X", "stall", ev);
            p.push(("dur".to_string(), Json::from(u64::from(cycles))));
            Json::Obj(p)
        }
        EventKind::SbEnqueue { occupancy } => counter(
            format!("sb-occupancy/core{}", ev.core),
            ev,
            "entries",
            u64::from(occupancy),
        ),
        EventKind::SbDrain {
            occupancy,
            residency,
        } => {
            // The drain is both a residency sample and an occupancy step;
            // surface the residency as args on the counter update.
            let mut pairs = vec![
                (
                    "name".to_string(),
                    Json::str(format!("sb-occupancy/core{}", ev.core)),
                ),
                ("ph".to_string(), Json::str("C")),
                ("ts".to_string(), Json::from(ev.cycle)),
                ("pid".to_string(), Json::from(0u64)),
            ];
            push_args(
                &mut pairs,
                vec![
                    ("entries", Json::from(u64::from(occupancy))),
                    ("residency", Json::from(u64::from(residency))),
                ],
            );
            Json::Obj(pairs)
        }
        EventKind::BurstDetected { page, blocks } => {
            let mut p = base("spb-burst", "X", "spb", ev);
            // Render the burst as a slice as long as its block count so
            // bursts are visible at a glance; args carry the exact data.
            p.push(("dur".to_string(), Json::from(u64::from(blocks.max(1)))));
            push_args(
                &mut p,
                vec![
                    ("page", Json::str(format!("{page:#x}"))),
                    ("blocks", Json::from(u64::from(blocks))),
                ],
            );
            Json::Obj(p)
        }
        EventKind::BurstIssued { block } => {
            let mut p = base("spb-burst-issue", "i", "spb", ev);
            p.push(("s".to_string(), Json::str("t")));
            push_args(&mut p, vec![("block", Json::str(format!("{block:#x}")))]);
            Json::Obj(p)
        }
        EventKind::Coherence { block, kind } => {
            let mut p = base(&format!("coh:{kind}"), "i", "coherence", ev);
            p.push(("s".to_string(), Json::str("t"))); // thread-scoped instant
            push_args(&mut p, vec![("block", Json::str(format!("{block:#x}")))]);
            Json::Obj(p)
        }
        EventKind::MshrAlloc { block, occupancy } => {
            let mut p = base("mshr-alloc", "i", "mshr", ev);
            p.push(("s".to_string(), Json::str("t")));
            push_args(
                &mut p,
                vec![
                    ("block", Json::str(format!("{block:#x}"))),
                    ("occupancy", Json::from(u64::from(occupancy))),
                ],
            );
            Json::Obj(p)
        }
        EventKind::MshrOccupancy { occupancy } => counter(
            format!("mshr-occupancy/core{}", ev.core),
            ev,
            "entries",
            u64::from(occupancy),
        ),
        EventKind::DramQueue { busy } => counter(
            "dram-queue".to_string(),
            ev,
            "busy-channels",
            u64::from(busy),
        ),
        EventKind::SquashAttributed { blocks, rfos } => {
            let mut p = base("squash", "i", "squash", ev);
            p.push(("s".to_string(), Json::str("t")));
            push_args(
                &mut p,
                vec![
                    ("leaked-blocks", Json::from(u64::from(blocks))),
                    ("wasted-rfos", Json::from(u64::from(rfos))),
                ],
            );
            Json::Obj(p)
        }
    }
}

/// Renders an event stream as a Chrome trace-event JSON document.
///
/// The result is an object with a `traceEvents` array plus metadata, the
/// format both `chrome://tracing` and Perfetto load directly.
pub fn chrome_trace(events: &[Event]) -> Json {
    Json::obj([
        ("traceEvents", Json::arr(events.iter().map(trace_event))),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj([(
                "timeUnit",
                Json::str("1 trace microsecond = 1 simulated cycle"),
            )]),
        ),
    ])
}

/// A compact, human-readable summary of an event stream.
pub fn text_summary(events: &[Event]) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    let span = match (events.first(), events.last()) {
        (Some(a), Some(b)) => (a.cycle, b.cycle),
        _ => (0, 0),
    };
    out.push_str(&format!(
        "{} events over cycles {}..{}\n",
        events.len(),
        span.0,
        span.1
    ));

    let mut by_label: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut stall_cycles: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut bursts = 0u64;
    let mut burst_blocks = 0u64;
    let mut coh: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        *by_label.entry(ev.kind.label()).or_default() += 1;
        match ev.kind {
            EventKind::StallEpisode { cause, cycles } => {
                *stall_cycles.entry(stall_name(cause)).or_default() += u64::from(cycles);
            }
            EventKind::BurstDetected { blocks, .. } => {
                bursts += 1;
                burst_blocks += u64::from(blocks);
            }
            EventKind::Coherence { kind, .. } => {
                *coh.entry(kind.to_string()).or_default() += 1;
            }
            _ => {}
        }
    }
    out.push_str("event counts:\n");
    for (label, n) in &by_label {
        out.push_str(&format!("  {label:<16} {n}\n"));
    }
    if !stall_cycles.is_empty() {
        out.push_str("stalled cycles by cause:\n");
        for (name, n) in &stall_cycles {
            out.push_str(&format!("  {name:<20} {n}\n"));
        }
    }
    if bursts > 0 {
        out.push_str(&format!(
            "spb bursts: {bursts} ({burst_blocks} blocks, {:.1} blocks/burst)\n",
            burst_blocks as f64 / bursts as f64
        ));
    }
    if !coh.is_empty() {
        out.push_str("coherence messages:\n");
        for (name, n) in &coh {
            out.push_str(&format!("  {name:<18} {n}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CoherenceKind, Phase};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cycle: 0,
                core: 0,
                kind: EventKind::PhaseBegin(Phase::Measure),
            },
            Event {
                cycle: 10,
                core: 0,
                kind: EventKind::StallEpisode {
                    cause: StallCause::StoreBuffer,
                    cycles: 25,
                },
            },
            Event {
                cycle: 12,
                core: 1,
                kind: EventKind::BurstDetected {
                    page: 0x1000,
                    blocks: 48,
                },
            },
            Event {
                cycle: 13,
                core: 1,
                kind: EventKind::BurstIssued { block: 0x40 },
            },
            Event::coherence(14, 1, 0x40, CoherenceKind::FillOwned),
            Event {
                cycle: 15,
                core: 0,
                kind: EventKind::SbDrain {
                    occupancy: 3,
                    residency: 7,
                },
            },
        ]
    }

    #[test]
    fn chrome_trace_is_wellformed_and_parseable() {
        let doc = chrome_trace(&sample_events());
        let text = format!("{doc:#}");
        let parsed = Json::parse(&text).expect("exporter output must parse");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 6);
        for e in events {
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert!(e.get("ph").and_then(Json::as_str).is_some());
            assert!(e.get("ts").and_then(Json::as_u64).is_some());
            assert!(e.get("pid").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn stall_slices_carry_duration() {
        let doc = chrome_trace(&sample_events());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let stall = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("stall:store-buffer"))
            .expect("stall slice present");
        assert_eq!(stall.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(stall.get("dur").and_then(Json::as_u64), Some(25));
        assert_eq!(stall.get("ts").and_then(Json::as_u64), Some(10));
    }

    #[test]
    fn burst_and_coherence_events_are_present() {
        let doc = chrome_trace(&sample_events());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"spb-burst"));
        assert!(names.contains(&"spb-burst-issue"));
        assert!(names.contains(&"coh:fill(owned)"));
    }

    #[test]
    fn text_summary_aggregates() {
        let s = text_summary(&sample_events());
        assert!(s.contains("6 events"));
        assert!(s.contains("stall:store-buffer"));
        assert!(s.contains("25"));
        assert!(s.contains("spb bursts: 1 (48 blocks"));
        assert!(s.contains("fill(owned)"));
    }

    #[test]
    fn empty_stream_summarizes_cleanly() {
        let s = text_summary(&[]);
        assert!(s.contains("0 events"));
        let doc = chrome_trace(&[]);
        assert!(doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
    }
}

//! A registry of named metrics, grouped by component.
//!
//! Components register counters (monotonic `u64`), gauges (`f64`
//! readings, e.g. host-side phase wall times) and histogram snapshots.
//! The registry serializes through [`spb_stats::json`] into the
//! `"metrics"` section of sweep reports and into `spbsim trace` output.

use spb_stats::json::Json;
use spb_stats::Histogram;

/// A compact, serializable summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The histogram's name.
    pub name: String,
    /// Recorded samples.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Largest sample.
    pub max: u64,
    /// Median upper bound.
    pub p50: u64,
    /// 95th-percentile upper bound.
    pub p95: u64,
}

impl HistogramSnapshot {
    /// Snapshots `h`.
    pub fn of(h: &Histogram) -> Self {
        Self {
            name: h.name().to_string(),
            count: h.count(),
            mean: h.mean(),
            max: h.max(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean", Json::from(self.mean)),
            ("max", Json::from(self.max)),
            ("p50", Json::from(self.p50)),
            ("p95", Json::from(self.p95)),
        ])
    }
}

/// One component's metrics (e.g. `"cpu"`, `"mem"`, `"runner"`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Component {
    name: String,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<HistogramSnapshot>,
}

impl Component {
    /// The component's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers (or overwrites) a counter.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.counters.push((name.to_string(), value)),
        }
        self
    }

    /// Registers (or overwrites) a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name.to_string(), value)),
        }
        self
    }

    /// Registers a histogram snapshot under the histogram's own name.
    pub fn histogram(&mut self, h: &Histogram) -> &mut Self {
        let snap = HistogramSnapshot::of(h);
        match self.histograms.iter_mut().find(|s| s.name == snap.name) {
            Some(s) => *s = snap,
            None => self.histograms.push(snap),
        }
        self
    }

    /// Reads a counter back.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Reads a gauge back.
    pub fn get_gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    fn to_json(&self) -> Json {
        let mut pairs = Vec::new();
        if !self.counters.is_empty() {
            pairs.push((
                "counters".to_string(),
                Json::obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::from(*v))),
                ),
            ));
        }
        if !self.gauges.is_empty() {
            pairs.push((
                "gauges".to_string(),
                Json::obj(self.gauges.iter().map(|(n, v)| (n.clone(), Json::from(*v)))),
            ));
        }
        if !self.histograms.is_empty() {
            pairs.push((
                "histograms".to_string(),
                Json::obj(
                    self.histograms
                        .iter()
                        .map(|s| (s.name.clone(), s.to_json())),
                ),
            ));
        }
        Json::Obj(pairs)
    }
}

/// Named metrics registered by component, in registration order.
///
/// # Examples
///
/// ```
/// use spb_obs::metrics::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// reg.component("runner").counter("cycles", 1234).gauge("warmup_ms", 8.5);
/// let json = reg.to_json();
/// assert!(json.to_string().contains("\"cycles\""));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    components: Vec<Component>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component named `name`, created on first use.
    pub fn component(&mut self, name: &str) -> &mut Component {
        if let Some(i) = self.components.iter().position(|c| c.name == name) {
            return &mut self.components[i];
        }
        self.components.push(Component {
            name: name.to_string(),
            ..Component::default()
        });
        self.components.last_mut().expect("just pushed")
    }

    /// Read-only lookup.
    pub fn get(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Serializes as one JSON object keyed by component name.
    pub fn to_json(&self) -> Json {
        Json::obj(
            self.components
                .iter()
                .map(|c| (c.name.clone(), c.to_json())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_read_back() {
        let mut reg = MetricsRegistry::new();
        reg.component("cpu")
            .counter("committed_stores", 10)
            .gauge("sb_stall_ratio", 0.25);
        reg.component("cpu").counter("committed_stores", 11); // overwrite
        assert_eq!(
            reg.get("cpu").unwrap().get_counter("committed_stores"),
            Some(11)
        );
        assert_eq!(
            reg.get("cpu").unwrap().get_gauge("sb_stall_ratio"),
            Some(0.25)
        );
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn json_shape_is_component_keyed() {
        let mut reg = MetricsRegistry::new();
        let mut h = Histogram::new("sb_residency_cycles", 16, 64);
        h.record(5);
        h.record(40);
        reg.component("sb").histogram(&h);
        reg.component("runner")
            .counter("cycles", 99)
            .gauge("wall_ms", 1.5);
        let j = reg.to_json();
        let sb = j.get("sb").expect("sb component");
        let hist = sb
            .get("histograms")
            .and_then(|h| h.get("sb_residency_cycles"));
        assert!(hist.is_some());
        assert_eq!(hist.unwrap().get("count").and_then(Json::as_u64), Some(2));
        let runner = j.get("runner").expect("runner component");
        assert_eq!(
            runner
                .get("counters")
                .and_then(|c| c.get("cycles"))
                .and_then(Json::as_u64),
            Some(99)
        );
    }

    #[test]
    fn registry_round_trips_through_json_text() {
        let mut reg = MetricsRegistry::new();
        reg.component("mem").counter("loads", 7);
        let text = format!("{:#}", reg.to_json());
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(
            parsed
                .get("mem")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("loads"))
                .and_then(Json::as_u64),
            Some(7)
        );
    }

    #[test]
    fn empty_registry_is_empty() {
        let reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.to_json().to_string(), "{}");
    }
}

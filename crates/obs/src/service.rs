//! Shared live counters for long-running services.
//!
//! [`crate::metrics::MetricsRegistry`] is a point-in-time summary built
//! by one thread at the end of a run. A server has the opposite shape:
//! many threads (acceptor, runner, per-connection handlers) bump
//! counters concurrently, and a health endpoint snapshots them at any
//! moment. [`SharedCounters`] covers that: a cloneable handle over
//! named atomics — lock-free on the hot path, first-registration order
//! preserved so snapshots serialize deterministically — that can be
//! rendered into a [`MetricsRegistry`] component whenever a health or
//! stats response needs one.
//!
//! # Examples
//!
//! ```
//! use spb_obs::service::SharedCounters;
//!
//! let stats = SharedCounters::new();
//! let worker = stats.clone();
//! worker.add("cells_computed", 3);
//! worker.add("cache_hits", 1);
//! assert_eq!(stats.get("cells_computed"), 3);
//! let reg = stats.to_registry("serve");
//! assert!(reg.to_json().get("serve").is_some());
//! ```

use crate::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The registration table: names to live atomics, in first-registration
/// order.
type CounterTable = Vec<(String, Arc<AtomicU64>)>;

/// A set of named monotonic counters shared across threads.
///
/// Cloning is cheap (an [`Arc`] bump); all clones observe the same
/// counters. Registration takes a short lock; increments on an
/// already-registered counter are a single atomic add.
#[derive(Debug, Clone, Default)]
pub struct SharedCounters {
    inner: Arc<Mutex<CounterTable>>,
}

impl SharedCounters {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The handle for `name`, registering it (at the current end of the
    /// snapshot order) on first use.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().expect("counter registry poisoned");
        if let Some((_, c)) = inner.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(AtomicU64::new(0));
        inner.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Adds `delta` to `name` (registering it if new).
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// The current value of `name` (0 if never registered).
    pub fn get(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, c)| c.load(Ordering::Relaxed))
    }

    /// All counters in first-registration order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Renders the current values as a one-component
    /// [`MetricsRegistry`] (ready for a health response or a report's
    /// `"metrics"` section).
    pub fn to_registry(&self, component: &str) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let comp = reg.component(component);
        for (name, value) in self.snapshot() {
            comp.counter(&name, value);
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state_and_preserve_order() {
        let stats = SharedCounters::new();
        stats.add("b_second", 0);
        let clone = stats.clone();
        clone.inc("a_first_registered_second");
        stats.add("b_second", 5);
        assert_eq!(stats.get("a_first_registered_second"), 1);
        assert_eq!(clone.get("b_second"), 5);
        assert_eq!(stats.get("never_touched"), 0);
        let names: Vec<_> = stats.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["b_second", "a_first_registered_second"]);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let stats = SharedCounters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let stats = stats.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        stats.inc("hits");
                    }
                });
            }
        });
        assert_eq!(stats.get("hits"), 8000);
    }

    #[test]
    fn renders_into_a_metrics_registry() {
        let stats = SharedCounters::new();
        stats.add("jobs_accepted", 2);
        stats.add("jobs_shed", 1);
        let json = stats.to_registry("serve").to_json();
        let shed = json
            .get("serve")
            .and_then(|c| c.get("counters"))
            .and_then(|c| c.get("jobs_shed"))
            .and_then(spb_stats::json::Json::as_u64);
        assert_eq!(shed, Some(1));
    }
}

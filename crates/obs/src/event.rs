//! The typed simulation-event taxonomy.
//!
//! Events are small `Copy` structs: recording one is a struct write, and
//! all formatting is deferred to export time. Every event carries the
//! simulated cycle it happened at and the core it belongs to, so
//! exporters can lay events out on per-core timelines.

use std::fmt;

pub use spb_stats::StallCause;

/// A run phase, marked in the event stream by the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Warm-up: caches and predictors filling, stats not yet counted.
    Warmup,
    /// The measured region of interest.
    Measure,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Warmup => "warmup",
            Phase::Measure => "measure",
        })
    }
}

/// The coherence-protocol actions worth remembering. These used to be a
/// private enum inside `spb-mem`'s checker; the invariant checker's ring
/// and the trace exporters now share one definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceKind {
    /// A read fill was requested below L1.
    FillShared,
    /// An ownership fill (RFO) was requested below L1.
    FillOwned,
    /// A store performed into L1.
    StorePerformed,
    /// The line was invalidated by a remote exclusive request.
    Invalidated,
    /// The line was downgraded to shared by a remote read.
    Downgraded,
    /// The line was evicted from L1.
    EvictedL1,
    /// A store prefetch was queued at the L1 controller (MSHRs busy).
    PrefetchQueued,
    /// A store prefetch was dropped by fault injection.
    PrefetchDropped,
    /// An evicted-in-flight line was reinstated from its MSHR entry.
    Reinstated,
}

impl fmt::Display for CoherenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoherenceKind::FillShared => "fill(shared)",
            CoherenceKind::FillOwned => "fill(owned)",
            CoherenceKind::StorePerformed => "store-performed",
            CoherenceKind::Invalidated => "invalidated",
            CoherenceKind::Downgraded => "downgraded",
            CoherenceKind::EvictedL1 => "evicted-l1",
            CoherenceKind::PrefetchQueued => "prefetch-queued",
            CoherenceKind::PrefetchDropped => "prefetch-dropped",
            CoherenceKind::Reinstated => "reinstated",
        };
        f.write_str(s)
    }
}

/// One observed simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated cycle (episode start, for duration events).
    pub cycle: u64,
    /// The core the event belongs to.
    pub core: u8,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// A coherence-protocol event (the kind the checker's ring keeps).
    pub fn coherence(cycle: u64, core: u8, block: u64, kind: CoherenceKind) -> Event {
        Event {
            cycle,
            core,
            kind: EventKind::Coherence { block, kind },
        }
    }

    /// The block this event acts on, when it is block-scoped.
    pub fn block(&self) -> Option<u64> {
        match self.kind {
            EventKind::Coherence { block, .. }
            | EventKind::BurstIssued { block }
            | EventKind::MshrAlloc { block, .. } => Some(block),
            _ => None,
        }
    }
}

/// Everything the instrumented components can report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The runner entered a new phase (warm-up, measurement).
    PhaseBegin(Phase),
    /// A dispatch-stall episode ended: dispatch issued nothing for
    /// `cycles` consecutive cycles, all attributed to `cause`
    /// (Top-Down style). `Event::cycle` is the episode's first cycle.
    StallEpisode {
        /// The resource that blocked dispatch.
        cause: StallCause,
        /// Consecutive stalled cycles in the episode.
        cycles: u32,
    },
    /// A committed store entered the post-commit store buffer.
    SbEnqueue {
        /// Post-commit SB entries after the enqueue.
        occupancy: u32,
    },
    /// The SB head drained (store performed into L1).
    SbDrain {
        /// Post-commit SB entries after the drain.
        occupancy: u32,
        /// Cycles the store spent in the SB after commit.
        residency: u32,
    },
    /// The SPB detector closed over a page and handed a burst of RFO
    /// prefetches to the L1 controller.
    BurstDetected {
        /// Byte address of the 4 KiB page the burst covers.
        page: u64,
        /// Blocks enqueued for this burst.
        blocks: u32,
    },
    /// The L1 controller issued one queued burst block downstream.
    BurstIssued {
        /// The block issued.
        block: u64,
    },
    /// A coherence-protocol action.
    Coherence {
        /// Block acted on.
        block: u64,
        /// What happened.
        kind: CoherenceKind,
    },
    /// An MSHR entry was allocated.
    MshrAlloc {
        /// The missing block.
        block: u64,
        /// Outstanding entries after the allocation.
        occupancy: u32,
    },
    /// Periodic sample of a core's MSHR occupancy.
    MshrOccupancy {
        /// Outstanding entries at the sample point.
        occupancy: u32,
    },
    /// Periodic sample of DRAM channel-queue pressure.
    DramQueue {
        /// Channels still busy at the sample point.
        busy: u32,
    },
    /// A pipeline squash resolved and the memory system attributed the
    /// wrong-path speculation it left behind: blocks still tagged as
    /// speculatively owned were charged as waste.
    SquashAttributed {
        /// Blocks whose M-state transition was never architecturally used.
        blocks: u32,
        /// Wrong-path RFOs attributed to those blocks.
        rfos: u32,
    },
}

impl EventKind {
    /// A short stable label for summaries and trace names.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::PhaseBegin(_) => "phase",
            EventKind::StallEpisode { .. } => "stall",
            EventKind::SbEnqueue { .. } => "sb-enqueue",
            EventKind::SbDrain { .. } => "sb-drain",
            EventKind::BurstDetected { .. } => "spb-burst",
            EventKind::BurstIssued { .. } => "spb-burst-issue",
            EventKind::Coherence { .. } => "coherence",
            EventKind::MshrAlloc { .. } => "mshr-alloc",
            EventKind::MshrOccupancy { .. } => "mshr-occupancy",
            EventKind::DramQueue { .. } => "dram-queue",
            EventKind::SquashAttributed { .. } => "squash",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherence_constructor_round_trips() {
        let ev = Event::coherence(9, 2, 0x40, CoherenceKind::FillOwned);
        assert_eq!(ev.cycle, 9);
        assert_eq!(ev.core, 2);
        assert_eq!(ev.block(), Some(0x40));
        assert_eq!(ev.kind.label(), "coherence");
    }

    #[test]
    fn block_is_none_for_core_events() {
        let ev = Event {
            cycle: 1,
            core: 0,
            kind: EventKind::SbEnqueue { occupancy: 4 },
        };
        assert_eq!(ev.block(), None);
    }

    #[test]
    fn labels_are_stable() {
        let ev = Event {
            cycle: 0,
            core: 0,
            kind: EventKind::StallEpisode {
                cause: StallCause::StoreBuffer,
                cycles: 12,
            },
        };
        assert_eq!(ev.kind.label(), "stall");
        assert_eq!(CoherenceKind::StorePerformed.to_string(), "store-performed");
        assert_eq!(Phase::Warmup.to_string(), "warmup");
    }
}

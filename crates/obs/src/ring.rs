//! A fixed-capacity ring of recent [`Event`]s.
//!
//! This is the bounded diagnostic buffer the coherence invariant checker
//! keeps: always on (when the checker is), O(1) to record, and filtered
//! per block only when a violation needs its history. It consumes the
//! same [`Event`] type as every other [`Sink`](crate::sink::Sink), so
//! the checker's ring is just one more consumer of the event stream.

use crate::event::{Event, EventKind};
use crate::sink::Sink;

/// A ring keeping the most recent `capacity` events.
///
/// # Examples
///
/// ```
/// use spb_obs::event::{CoherenceKind, Event};
/// use spb_obs::ring::EventLog;
///
/// let mut log = EventLog::new(4);
/// for cycle in 0..6 {
///     log.record(Event::coherence(cycle, 0, 7, CoherenceKind::FillOwned));
/// }
/// let h = log.history_for(7);
/// assert_eq!(h.len(), 4, "only the newest four survive");
/// assert!(h[0].trim_start_matches("cycle").trim_start().starts_with('2'));
/// ```
#[derive(Debug, Clone)]
pub struct EventLog {
    ring: Vec<Event>,
    capacity: usize,
    head: usize,
}

impl EventLog {
    /// A log keeping the most recent `capacity` events (0 disables
    /// recording entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
        }
    }

    /// Whether events are being kept.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (O(1), drops the oldest when full).
    pub fn record(&mut self, ev: Event) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Events in recording order, oldest first.
    fn iter_ordered(&self) -> impl Iterator<Item = &Event> {
        self.ring[self.head..]
            .iter()
            .chain(self.ring[..self.head].iter())
    }

    /// Formatted coherence history of `block`, oldest first.
    pub fn history_for(&self, block: u64) -> Vec<String> {
        self.iter_ordered()
            .filter_map(|e| match e.kind {
                EventKind::Coherence { block: b, kind } if b == block => {
                    Some(format!("cycle {:>10}  core {}  {}", e.cycle, e.core, kind))
                }
                _ => None,
            })
            .collect()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
    }
}

impl Sink for EventLog {
    fn event(&mut self, ev: &Event) {
        self.record(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CoherenceKind;

    fn ev(cycle: u64, block: u64) -> Event {
        Event::coherence(cycle, 1, block, CoherenceKind::FillOwned)
    }

    #[test]
    fn ring_keeps_newest_events() {
        let mut log = EventLog::new(3);
        for c in 0..10 {
            log.record(ev(c, 5));
        }
        let h = log.history_for(5);
        assert_eq!(h.len(), 3);
        assert!(
            h[0].contains("cycle          7"),
            "oldest surviving is 7: {h:?}"
        );
        assert!(h[2].contains("cycle          9"));
    }

    #[test]
    fn history_filters_by_block_and_kind() {
        let mut log = EventLog::new(8);
        log.record(ev(1, 5));
        log.record(ev(2, 6));
        log.record(ev(3, 5));
        log.record(Event {
            cycle: 4,
            core: 0,
            kind: EventKind::SbEnqueue { occupancy: 1 },
        });
        assert_eq!(log.history_for(5).len(), 2);
        assert_eq!(log.history_for(6).len(), 1);
        assert!(log.history_for(7).is_empty());
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut log = EventLog::new(0);
        log.record(ev(1, 5));
        assert!(!log.enabled());
        assert!(log.history_for(5).is_empty());
    }

    #[test]
    fn clear_empties_the_ring() {
        let mut log = EventLog::new(4);
        log.record(ev(1, 5));
        log.clear();
        assert!(log.history_for(5).is_empty());
    }

    #[test]
    fn event_log_is_a_sink() {
        let mut log = EventLog::new(4);
        Sink::event(&mut log, &ev(3, 9));
        assert_eq!(log.history_for(9).len(), 1);
    }
}

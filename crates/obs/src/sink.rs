//! Sinks and the zero-cost [`Observer`] handle.

use crate::event::Event;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Receives observed events. Implementations must not feed anything back
/// into the simulation: the zero-perturbation guarantee (traced runs are
/// cycle-identical to untraced runs) holds because sinks are pure
/// consumers.
pub trait Sink: Send {
    /// Called once per emitted event, in emission order.
    fn event(&mut self, ev: &Event);
}

/// The cloneable handle instrumented components hold.
///
/// Disabled (the default), [`Observer::emit`] is one `Option` check and
/// the event-building closure is **never called** — no payload is
/// constructed, no lock is touched. Enabled, all clones of the observer
/// feed the same sink.
#[derive(Clone, Default)]
pub struct Observer {
    sink: Option<Arc<Mutex<dyn Sink>>>,
}

impl Observer {
    /// The disabled observer (same as `Observer::default()`).
    pub fn off() -> Observer {
        Observer { sink: None }
    }

    /// An observer feeding `sink`.
    pub fn new(sink: impl Sink + 'static) -> Observer {
        Observer {
            sink: Some(Arc::new(Mutex::new(sink))),
        }
    }

    /// Whether a sink is attached. Instrumentation that must keep extra
    /// state (e.g. stall-episode tracking) gates on this so the disabled
    /// path stays free.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `f` — if and only if a sink is attached.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            let ev = f();
            let mut guard = sink.lock().unwrap_or_else(|p| p.into_inner());
            guard.event(&ev);
        }
    }
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// A sink that appends every event to a shared vector, for tests, the
/// `spbsim trace` exporter and ad-hoc debugging.
///
/// Cloning is shallow: clones share the buffer, so keep one clone and
/// hand [`Collector::observer`] to the simulation.
#[derive(Clone, Default)]
pub struct Collector {
    events: Arc<Mutex<Vec<Event>>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// An observer feeding this collector.
    pub fn observer(&self) -> Observer {
        Observer::new(self.clone())
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the collected events, leaving the collector empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// A copy of the events collected so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

impl Sink for Collector {
    fn event(&mut self, ev: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64) -> Event {
        Event {
            cycle,
            core: 0,
            kind: EventKind::SbEnqueue { occupancy: 1 },
        }
    }

    #[test]
    fn disabled_observer_never_calls_the_closure() {
        let obs = Observer::off();
        assert!(!obs.enabled());
        obs.emit(|| unreachable!("must not build the payload"));
    }

    #[test]
    fn enabled_observer_delivers_in_order() {
        let c = Collector::new();
        let obs = c.observer();
        assert!(obs.enabled());
        obs.emit(|| ev(1));
        obs.emit(|| ev(2));
        let got = c.take();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].cycle, 1);
        assert_eq!(got[1].cycle, 2);
        assert!(c.is_empty(), "take drains the buffer");
    }

    #[test]
    fn clones_share_the_sink() {
        let c = Collector::new();
        let a = c.observer();
        let b = a.clone();
        a.emit(|| ev(1));
        b.emit(|| ev(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn debug_shows_enabled_state() {
        assert!(format!("{:?}", Observer::off()).contains("enabled: false"));
        let c = Collector::new();
        assert!(format!("{:?}", c.observer()).contains("enabled: true"));
    }
}
